//! Selection of the head-SRAM organisation used by a buffer front end.

use serde::{Deserialize, Serialize};
use sram_buf::{GlobalCamBuffer, SharedBuffer, UnifiedLinkedListBuffer};

/// Which functional head-SRAM organisation a buffer instantiates.
///
/// Both uphold the same [`SharedBuffer`] contract; they differ in how they
/// locate cells internally (and, physically, in area and access time — see the
/// `cacti-lite` crate and the Figure 8/10 experiments).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum HeadSramKind {
    /// Fully associative (queue, order)-tagged store. Robust to arbitrary
    /// out-of-order block arrival, which CFDS with renaming requires.
    #[default]
    GlobalCam,
    /// Direct-mapped linked lists with one lane per bank of a group. Assumes
    /// same-lane blocks arrive in order (true for RADS and for CFDS without
    /// renaming).
    UnifiedLinkedList,
}

impl HeadSramKind {
    /// Builds the functional buffer: `lanes` is `B/b` (1 for RADS) and
    /// `cells_per_block` is the DRAM transfer granularity.
    pub fn build(
        self,
        num_queues: usize,
        capacity_cells: usize,
        lanes: usize,
        cells_per_block: usize,
    ) -> Box<dyn SharedBuffer + Send> {
        match self.build_enum(num_queues, capacity_cells, lanes, cells_per_block) {
            HeadSram::Cam(buffer) => Box::new(buffer),
            HeadSram::LinkedList(buffer) => Box::new(buffer),
        }
    }

    /// Builds the enum-dispatched form used inside the buffer front ends.
    pub(crate) fn build_enum(
        self,
        num_queues: usize,
        capacity_cells: usize,
        lanes: usize,
        cells_per_block: usize,
    ) -> HeadSram {
        match self {
            HeadSramKind::GlobalCam => HeadSram::Cam(GlobalCamBuffer::with_block_size(
                num_queues,
                capacity_cells,
                cells_per_block,
            )),
            HeadSramKind::UnifiedLinkedList => {
                HeadSram::LinkedList(UnifiedLinkedListBuffer::with_lanes(
                    num_queues,
                    // The linked list is a direct-mapped array and must be
                    // allocated up front; cap the functional capacity at 2^20
                    // cells (far above any analytical bound used in practice).
                    capacity_cells.min(1 << 20),
                    lanes,
                    cells_per_block,
                ))
            }
        }
    }
}

/// The head SRAM of a buffer front end, dispatched by enum instead of through
/// a `Box<dyn SharedBuffer>`: `pop_front` sits on the per-grant hot path and
/// `insert_block_cells` on the per-delivery path, and a two-variant match is
/// a perfectly predicted branch where a vtable call is an optimization
/// barrier inside the fused batch loops.
#[derive(Debug)]
pub(crate) enum HeadSram {
    /// Fully associative (queue, order)-tagged store.
    Cam(sram_buf::GlobalCamBuffer),
    /// Direct-mapped linked lists, one lane per bank of a group.
    LinkedList(sram_buf::UnifiedLinkedListBuffer),
}

macro_rules! dispatch {
    ($self:expr, $buffer:ident => $body:expr) => {
        match $self {
            HeadSram::Cam($buffer) => $body,
            HeadSram::LinkedList($buffer) => $body,
        }
    };
}

impl SharedBuffer for HeadSram {
    fn insert_block(
        &mut self,
        queue: pktbuf_model::LogicalQueueId,
        ordinal: u64,
        cells: Vec<pktbuf_model::Cell>,
    ) -> Result<(), sram_buf::BufferError> {
        dispatch!(self, b => b.insert_block(queue, ordinal, cells))
    }

    fn insert_block_cells(
        &mut self,
        queue: pktbuf_model::LogicalQueueId,
        ordinal: u64,
        cells: &[pktbuf_model::Cell],
    ) -> Result<(), sram_buf::BufferError> {
        dispatch!(self, b => b.insert_block_cells(queue, ordinal, cells))
    }

    fn push_cell(
        &mut self,
        queue: pktbuf_model::LogicalQueueId,
        cell: pktbuf_model::Cell,
    ) -> Result<(), sram_buf::BufferError> {
        dispatch!(self, b => b.push_cell(queue, cell))
    }

    #[inline]
    fn pop_front(&mut self, queue: pktbuf_model::LogicalQueueId) -> Option<pktbuf_model::Cell> {
        dispatch!(self, b => b.pop_front(queue))
    }

    #[inline]
    fn available(&self, queue: pktbuf_model::LogicalQueueId) -> usize {
        dispatch!(self, b => b.available(queue))
    }

    fn occupancy(&self) -> usize {
        dispatch!(self, b => b.occupancy())
    }

    fn capacity(&self) -> usize {
        dispatch!(self, b => b.capacity())
    }

    fn peak_occupancy(&self) -> usize {
        dispatch!(self, b => b.peak_occupancy())
    }

    fn num_queues(&self) -> usize {
        dispatch!(self, b => b.num_queues())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pktbuf_model::{Cell, LogicalQueueId};

    #[test]
    fn both_kinds_build_working_buffers() {
        for kind in [HeadSramKind::GlobalCam, HeadSramKind::UnifiedLinkedList] {
            let mut b = kind.build(2, 64, 2, 4);
            let q = LogicalQueueId::new(1);
            b.insert_block(q, 0, (0..4).map(|i| Cell::new(q, i, 0)).collect())
                .unwrap();
            assert_eq!(b.pop_front(q).unwrap().seq(), 0);
            assert_eq!(b.capacity(), 64);
        }
        assert_eq!(HeadSramKind::default(), HeadSramKind::GlobalCam);
    }
}
