//! Delivery verification: FIFO order and request/grant matching.

use pktbuf_model::{Cell, LogicalQueueId};

/// Checks that every granted cell belongs to the requested queue and that the
/// cells of each queue are delivered in arrival (FIFO) order.
///
/// The verifier is part of the library (rather than only of the tests) so that
/// examples and long-running experiments can assert the worst-case guarantees
/// continuously at negligible cost.
#[derive(Debug, Clone)]
pub struct DeliveryVerifier {
    next_seq: Vec<u64>,
    violations: u64,
    checked: u64,
}

impl DeliveryVerifier {
    /// Creates a verifier for `num_queues` queues, expecting each queue's
    /// sequence numbers to start at zero.
    pub fn new(num_queues: usize) -> Self {
        DeliveryVerifier {
            next_seq: vec![0; num_queues],
            violations: 0,
            checked: 0,
        }
    }

    /// Verifies one grant. Returns `true` if the grant is consistent.
    pub fn check(&mut self, requested: LogicalQueueId, cell: &Cell) -> bool {
        self.checked += 1;
        let qi = requested.as_usize();
        let ok = cell.queue() == requested
            && qi < self.next_seq.len()
            && cell.seq() == self.next_seq[qi];
        if ok {
            self.next_seq[qi] += 1;
        } else {
            self.violations += 1;
        }
        ok
    }

    /// Number of grants checked.
    pub fn checked(&self) -> u64 {
        self.checked
    }

    /// Number of inconsistent grants observed.
    pub fn violations(&self) -> u64 {
        self.violations
    }

    /// Next expected sequence number for `queue`.
    pub fn expected_seq(&self, queue: LogicalQueueId) -> u64 {
        self.next_seq[queue.as_usize()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q(i: u32) -> LogicalQueueId {
        LogicalQueueId::new(i)
    }

    #[test]
    fn in_order_grants_pass() {
        let mut v = DeliveryVerifier::new(2);
        assert!(v.check(q(0), &Cell::new(q(0), 0, 0)));
        assert!(v.check(q(0), &Cell::new(q(0), 1, 0)));
        assert!(v.check(q(1), &Cell::new(q(1), 0, 0)));
        assert_eq!(v.violations(), 0);
        assert_eq!(v.checked(), 3);
        assert_eq!(v.expected_seq(q(0)), 2);
    }

    #[test]
    fn out_of_order_and_wrong_queue_are_violations() {
        let mut v = DeliveryVerifier::new(2);
        assert!(!v.check(q(0), &Cell::new(q(0), 1, 0)), "skipped seq 0");
        assert!(!v.check(q(1), &Cell::new(q(0), 0, 0)), "wrong queue");
        assert_eq!(v.violations(), 2);
    }

    #[test]
    fn out_of_range_queue_is_a_violation() {
        let mut v = DeliveryVerifier::new(1);
        assert!(!v.check(q(5), &Cell::new(q(5), 0, 0)));
        assert_eq!(v.violations(), 1);
    }
}
