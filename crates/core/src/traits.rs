//! The common interface of all packet-buffer memory systems.

use crate::stats::BufferStats;
use pktbuf_model::{Cell, LogicalQueueId};

/// What happened during one slot of buffer operation.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct SlotOutcome {
    /// Cell granted to the arbiter this slot, if any.
    pub granted: Option<Cell>,
    /// A request became due this slot but its cell was not in the head SRAM —
    /// the *miss* that worst-case designs must make impossible.
    pub miss: Option<LogicalQueueId>,
    /// An arriving cell was dropped because the tail SRAM was full.
    pub dropped_arrival: Option<Cell>,
}

impl SlotOutcome {
    /// Whether this slot completed without a miss or a drop.
    pub fn is_clean(&self) -> bool {
        self.miss.is_none() && self.dropped_arrival.is_none()
    }
}

/// A closed-loop source of arbiter requests driven by the buffer's own
/// availability, consumed by [`PacketBuffer::step_batch`].
///
/// This mirrors the request-generator interface of the `traffic` crate with a
/// *generic* oracle: inside a fused batch loop the oracle is the buffer's own
/// availability array, so the whole probe sequence monomorphizes to direct
/// array reads. (`sim` adapts `traffic::RequestGenerator` to this trait; the
/// indirection keeps `pktbuf` independent of the workload crate.)
pub trait RequestSource {
    /// Returns the queue requested at `slot`, if any. `requestable` reports
    /// how many further cells of a queue the arbiter may request; sources
    /// must not request a queue whose count is zero.
    fn next_request<F>(&mut self, slot: u64, requestable: &F) -> Option<LogicalQueueId>
    where
        F: Fn(LogicalQueueId) -> u64 + ?Sized;

    /// Whether a call that returns `None` because no queue is requestable
    /// leaves the source bit-identical (see
    /// `traffic::RequestGenerator::idle_skippable`).
    fn idle_skippable(&self) -> bool {
        false
    }
}

/// Collects the grants of a batch of slots (the queue index of every granted
/// cell, in grant order) for [`PacketBuffer::step_batch`].
///
/// Recording is optional: a disabled sink makes `push` a no-op so the fused
/// batch loops pay a single predictable branch per grant.
#[derive(Debug, Default)]
pub struct GrantSink {
    log: Option<Vec<u32>>,
}

impl GrantSink {
    /// Creates a sink; `record` enables grant logging.
    pub fn new(record: bool) -> Self {
        GrantSink {
            log: record.then(Vec::new),
        }
    }

    /// Records one granted cell's queue index (no-op when not recording).
    #[inline]
    pub fn push(&mut self, queue_index: u32) {
        if let Some(log) = &mut self.log {
            log.push(queue_index);
        }
    }

    /// Number of grants recorded so far (0 when not recording).
    pub fn recorded(&self) -> usize {
        self.log.as_ref().map_or(0, Vec::len)
    }

    /// Whether this sink records grants.
    pub fn is_recording(&self) -> bool {
        self.log.is_some()
    }

    /// Consumes the sink, returning the recorded log (`None` when recording
    /// was disabled).
    pub fn into_log(self) -> Option<Vec<u32>> {
        self.log
    }
}

/// What a batch of slots observed, as far as the *request* stream is
/// concerned. The chunked engine uses this to reproduce the per-slot drain
/// termination rule ("stop after `flush + 1` consecutive request-less slots")
/// without observing each slot individually.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BatchReport {
    /// Slots in the batch whose request source produced a request.
    pub requests: u64,
    /// Consecutive request-less slots at the *end* of the batch (equals the
    /// batch length when `requests == 0`).
    pub trailing_requestless: u64,
}

impl BatchReport {
    /// Accounts one slot's request outcome.
    #[inline]
    pub fn note(&mut self, requested: bool) {
        if requested {
            self.requests += 1;
            self.trailing_requestless = 0;
        } else {
            self.trailing_requestless += 1;
        }
    }
}

/// A slot-synchronous packet-buffer memory system.
///
/// One call to [`PacketBuffer::step`] advances the buffer by one time slot: at
/// most one cell arrives from the transmission line and at most one cell
/// request arrives from the switch-fabric arbiter, and at most one cell is
/// granted back to the arbiter.
///
/// The request stream is subject to one rule inherited from the paper's
/// system model: the arbiter only requests cells that are actually in the
/// buffer's head path (i.e. have been written to DRAM or preloaded).
/// [`PacketBuffer::requestable_cells`] reports how many further requests a
/// queue can absorb; well-behaved workloads consult it.
pub trait PacketBuffer {
    /// Advances the buffer by one slot.
    fn step(&mut self, arrival: Option<Cell>, request: Option<LogicalQueueId>) -> SlotOutcome;

    /// The current slot (number of `step` calls performed).
    fn current_slot(&self) -> u64;

    /// Number of logical queues.
    fn num_queues(&self) -> usize;

    /// Number of cells of `queue` that the arbiter may still request
    /// (cells committed to the head path minus requests already accepted).
    fn requestable_cells(&self, queue: LogicalQueueId) -> u64;

    /// Fixed pipeline delay of the head path in slots (lookahead plus, for
    /// CFDS, the latency register). After the last request is injected, this
    /// many further slots are needed to drain all grants.
    fn pipeline_delay_slots(&self) -> usize;

    /// Aggregate statistics.
    fn stats(&self) -> &BufferStats;

    /// Human-readable name of the design ("RADS", "CFDS", …).
    fn design_name(&self) -> &'static str;

    /// Advances the buffer by a whole batch of slots in one call.
    ///
    /// Entry `i` of `arrivals` is the arrival of the `i`-th slot (taken out of
    /// the slice, so the caller's ring can be refilled); `requests` is probed
    /// once per slot exactly as the per-slot engine would; every granted
    /// cell's queue is pushed into `grants`.
    ///
    /// The default implementation is the per-slot reference: it loops over
    /// [`PacketBuffer::step`]. The buffer designs override it with fused
    /// loops that hoist per-slot invariant loads (configuration, ring bases,
    /// the availability array backing the request oracle) out of the loop —
    /// with **identical observable behaviour**, which the differential suite
    /// in `sim` pins down.
    fn step_batch<R: RequestSource>(
        &mut self,
        arrivals: &mut [Option<Cell>],
        requests: &mut R,
        grants: &mut GrantSink,
    ) -> BatchReport
    where
        Self: Sized,
    {
        let mut report = BatchReport::default();
        for arrival in arrivals.iter_mut() {
            let slot = self.current_slot();
            let request =
                requests.next_request(slot, &|q: LogicalQueueId| self.requestable_cells(q));
            report.note(request.is_some());
            let outcome = self.step(arrival.take(), request);
            if let Some(cell) = &outcome.granted {
                grants.push(cell.queue().index());
            }
        }
        report
    }

    /// Advances the buffer by `slots` slots in which neither an arrival nor a
    /// request occurs: exactly equivalent to `slots` calls of
    /// [`PacketBuffer::step`]`(None, None)`.
    ///
    /// The default implementation is that loop. Designs override it with an
    /// O(1) arithmetic fast-forward that is taken when the buffer
    /// [`PacketBuffer::is_quiescent`] — the chunked engine uses this to
    /// collapse drain tails and idle stretches.
    fn advance_idle(&mut self, slots: u64) {
        for _ in 0..slots {
            self.step(None, None);
        }
    }

    /// Whether an idle slot (`step(None, None)`) provably changes nothing
    /// except the slot counters: no block in flight to the head SRAM, no
    /// writeback-eligible tail batch, no request pending anywhere in the
    /// head pipeline, no DRAM access outstanding. In this state the set of
    /// requestable cells is frozen, so a contract-abiding request generator
    /// returns `None` forever until the next arrival.
    ///
    /// `false` is always a safe answer; the default returns `false`.
    fn is_quiescent(&self) -> bool {
        false
    }

    /// Total requestable cells over all queues
    /// (Σ [`PacketBuffer::requestable_cells`]).
    fn requestable_total(&self) -> u64 {
        (0..self.num_queues() as u32)
            .map(|q| self.requestable_cells(LogicalQueueId::new(q)))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slot_outcome_is_clean() {
        assert!(SlotOutcome::default().is_clean());
        let with_miss = SlotOutcome {
            miss: Some(LogicalQueueId::new(1)),
            ..SlotOutcome::default()
        };
        assert!(!with_miss.is_clean());
        let q = LogicalQueueId::new(0);
        let with_drop = SlotOutcome {
            dropped_arrival: Some(Cell::new(q, 0, 0)),
            ..SlotOutcome::default()
        };
        assert!(!with_drop.is_clean());
    }
}
