//! The common interface of all packet-buffer memory systems.

use crate::stats::BufferStats;
use pktbuf_model::{Cell, LogicalQueueId};

/// What happened during one slot of buffer operation.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct SlotOutcome {
    /// Cell granted to the arbiter this slot, if any.
    pub granted: Option<Cell>,
    /// A request became due this slot but its cell was not in the head SRAM —
    /// the *miss* that worst-case designs must make impossible.
    pub miss: Option<LogicalQueueId>,
    /// An arriving cell was dropped because the tail SRAM was full.
    pub dropped_arrival: Option<Cell>,
}

impl SlotOutcome {
    /// Whether this slot completed without a miss or a drop.
    pub fn is_clean(&self) -> bool {
        self.miss.is_none() && self.dropped_arrival.is_none()
    }
}

/// A slot-synchronous packet-buffer memory system.
///
/// One call to [`PacketBuffer::step`] advances the buffer by one time slot: at
/// most one cell arrives from the transmission line and at most one cell
/// request arrives from the switch-fabric arbiter, and at most one cell is
/// granted back to the arbiter.
///
/// The request stream is subject to one rule inherited from the paper's
/// system model: the arbiter only requests cells that are actually in the
/// buffer's head path (i.e. have been written to DRAM or preloaded).
/// [`PacketBuffer::requestable_cells`] reports how many further requests a
/// queue can absorb; well-behaved workloads consult it.
pub trait PacketBuffer {
    /// Advances the buffer by one slot.
    fn step(&mut self, arrival: Option<Cell>, request: Option<LogicalQueueId>) -> SlotOutcome;

    /// The current slot (number of `step` calls performed).
    fn current_slot(&self) -> u64;

    /// Number of logical queues.
    fn num_queues(&self) -> usize;

    /// Number of cells of `queue` that the arbiter may still request
    /// (cells committed to the head path minus requests already accepted).
    fn requestable_cells(&self, queue: LogicalQueueId) -> u64;

    /// Fixed pipeline delay of the head path in slots (lookahead plus, for
    /// CFDS, the latency register). After the last request is injected, this
    /// many further slots are needed to drain all grants.
    fn pipeline_delay_slots(&self) -> usize;

    /// Aggregate statistics.
    fn stats(&self) -> &BufferStats;

    /// Human-readable name of the design ("RADS", "CFDS", …).
    fn design_name(&self) -> &'static str;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slot_outcome_is_clean() {
        assert!(SlotOutcome::default().is_clean());
        let with_miss = SlotOutcome {
            miss: Some(LogicalQueueId::new(1)),
            ..SlotOutcome::default()
        };
        assert!(!with_miss.is_clean());
        let q = LogicalQueueId::new(0);
        let with_drop = SlotOutcome {
            dropped_arrival: Some(Cell::new(q, 0, 0)),
            ..SlotOutcome::default()
        };
        assert!(!with_drop.is_clean());
    }
}
