//! The DRAM-only baseline buffer (§1).
//!
//! A buffer built from DRAM alone cannot give worst-case guarantees at high
//! line rates: in the worst case every access pays the full random access
//! time, so the buffer can move at most one cell per `B` slots in each
//! direction. This front end models exactly that and is used by the E1
//! experiment to reproduce the introduction's motivation numbers.

use crate::stats::BufferStats;
use crate::traits::{BatchReport, GrantSink, PacketBuffer, RequestSource, SlotOutcome};
use crate::verify::DeliveryVerifier;
use pktbuf_model::{Cell, LogicalQueueId, RadsConfig};
use std::collections::VecDeque;

/// A packet buffer whose only storage is the DRAM itself.
#[derive(Debug)]
pub struct DramOnlyBuffer {
    cfg: RadsConfig,
    queues: Vec<VecDeque<Cell>>,
    /// Slot at which the DRAM read port is free again.
    read_busy_until: u64,
    /// Slot at which the DRAM write port is free again.
    write_busy_until: u64,
    /// Arrivals waiting for the write port.
    write_backlog: VecDeque<Cell>,
    slot: u64,
    available: Vec<u64>,
    /// Σ `available` — O(1) emptiness probe for the batch loop and the
    /// chunked engine's fast-forward check.
    available_total: u64,
    stats: BufferStats,
    verifier: DeliveryVerifier,
}

impl DramOnlyBuffer {
    /// Creates a DRAM-only buffer for the given configuration (only the number
    /// of queues and the granularity — i.e. the random access time in slots —
    /// are used).
    pub fn new(cfg: RadsConfig) -> Self {
        DramOnlyBuffer {
            queues: vec![VecDeque::new(); cfg.num_queues],
            read_busy_until: 0,
            write_busy_until: 0,
            write_backlog: VecDeque::new(),
            slot: 0,
            available: vec![0; cfg.num_queues],
            available_total: 0,
            stats: BufferStats::default(),
            verifier: DeliveryVerifier::new(cfg.num_queues),
            cfg,
        }
    }

    /// Worst-case sustainable throughput of this buffer, as a fraction of the
    /// line rate: one cell per random access time per direction.
    pub fn worst_case_throughput_fraction(&self) -> f64 {
        1.0 / self.cfg.granularity as f64
    }

    /// Preloads `cells` into `queue` (they count as already written to DRAM).
    pub fn preload(&mut self, queue: LogicalQueueId, cells: Vec<Cell>) {
        self.available[queue.as_usize()] += cells.len() as u64;
        self.available_total += cells.len() as u64;
        self.queues[queue.as_usize()].extend(cells);
    }
}

impl PacketBuffer for DramOnlyBuffer {
    fn step(&mut self, arrival: Option<Cell>, request: Option<LogicalQueueId>) -> SlotOutcome {
        let t = self.slot;
        self.slot += 1;
        self.stats.slots += 1;
        let mut outcome = SlotOutcome::default();

        // Arrivals queue for the write port; each write occupies the DRAM for
        // a full random access time (worst case: no row locality).
        if let Some(cell) = arrival {
            self.stats.arrivals += 1;
            self.write_backlog.push_back(cell);
        }
        if self.write_busy_until <= t {
            if let Some(cell) = self.write_backlog.pop_front() {
                let q = cell.queue().as_usize();
                self.available[q] += 1;
                self.available_total += 1;
                self.queues[q].push_back(cell);
                self.write_busy_until = t + self.cfg.granularity as u64;
                self.stats.dram_writes += 1;
            }
        }

        // A request can only be served if the read port is free; otherwise it
        // is a miss (the cell was not produced in time).
        if let Some(queue) = request {
            self.stats.requests += 1;
            let qi = queue.as_usize();
            if self.available[qi] > 0 {
                self.available[qi] -= 1;
                self.available_total -= 1;
            }
            if self.read_busy_until <= t {
                if let Some(cell) = self.queues[qi].pop_front() {
                    self.read_busy_until = t + self.cfg.granularity as u64;
                    self.stats.dram_reads += 1;
                    self.stats.grants += 1;
                    if !self.verifier.check(queue, &cell) {
                        self.stats.order_violations += 1;
                    }
                    outcome.granted = Some(cell);
                } else {
                    self.stats.misses += 1;
                    outcome.miss = Some(queue);
                }
            } else {
                self.stats.misses += 1;
                outcome.miss = Some(queue);
            }
        }
        outcome
    }

    fn current_slot(&self) -> u64 {
        self.slot
    }

    fn num_queues(&self) -> usize {
        self.cfg.num_queues
    }

    fn requestable_cells(&self, queue: LogicalQueueId) -> u64 {
        self.available[queue.as_usize()]
    }

    fn pipeline_delay_slots(&self) -> usize {
        0
    }

    fn stats(&self) -> &BufferStats {
        &self.stats
    }

    fn design_name(&self) -> &'static str {
        "DRAM-only"
    }

    /// Fused batch loop: same slot sequence as [`DramOnlyBuffer::step`], with
    /// the granularity and the availability slice backing the request oracle
    /// hoisted out of the loop and no `SlotOutcome` materialised per slot.
    fn step_batch<R: RequestSource>(
        &mut self,
        arrivals: &mut [Option<Cell>],
        requests: &mut R,
        grants: &mut GrantSink,
    ) -> BatchReport {
        let access_time = self.cfg.granularity as u64;
        let skippable = requests.idle_skippable();
        let mut report = BatchReport::default();
        // The clock, the port horizons and the slot-grained counters live in
        // locals for the whole batch and are flushed once after the loop.
        let mut t = self.slot;
        let mut write_busy_until = self.write_busy_until;
        let mut read_busy_until = self.read_busy_until;
        let mut delta = BufferStats::default();
        for arrival in arrivals.iter_mut() {
            // The request probe comes first, exactly as in the per-slot
            // engine: the oracle observes the availability as of the end of
            // the previous slot, before this slot's write port completes.
            // When nothing is requestable anywhere, a skippable generator's
            // Q-probe scan is provably fruitless and side-effect-free — skip
            // it on the O(1) total instead.
            let request = if skippable && self.available_total == 0 {
                None
            } else {
                let available = &self.available;
                requests.next_request(t, &|q: LogicalQueueId| available[q.as_usize()])
            };
            report.note(request.is_some());

            if let Some(cell) = arrival.take() {
                delta.arrivals += 1;
                self.write_backlog.push_back(cell);
            }
            if write_busy_until <= t {
                if let Some(cell) = self.write_backlog.pop_front() {
                    let q = cell.queue().as_usize();
                    self.available[q] += 1;
                    self.available_total += 1;
                    self.queues[q].push_back(cell);
                    write_busy_until = t + access_time;
                    delta.dram_writes += 1;
                }
            }
            if let Some(queue) = request {
                delta.requests += 1;
                let qi = queue.as_usize();
                if self.available[qi] > 0 {
                    self.available[qi] -= 1;
                    self.available_total -= 1;
                }
                if read_busy_until <= t {
                    if let Some(cell) = self.queues[qi].pop_front() {
                        read_busy_until = t + access_time;
                        delta.dram_reads += 1;
                        delta.grants += 1;
                        if !self.verifier.check(queue, &cell) {
                            delta.order_violations += 1;
                        }
                        grants.push(queue.index());
                    } else {
                        delta.misses += 1;
                    }
                } else {
                    delta.misses += 1;
                }
            }
            t += 1;
        }
        self.slot = t;
        self.write_busy_until = write_busy_until;
        self.read_busy_until = read_busy_until;
        self.stats.slots += arrivals.len() as u64;
        self.stats.arrivals += delta.arrivals;
        self.stats.dram_writes += delta.dram_writes;
        self.stats.dram_reads += delta.dram_reads;
        self.stats.requests += delta.requests;
        self.stats.grants += delta.grants;
        self.stats.misses += delta.misses;
        self.stats.order_violations += delta.order_violations;
        report
    }

    fn advance_idle(&mut self, slots: u64) {
        if !self.is_quiescent() {
            // A non-empty write backlog still drains one cell per access
            // time; replay it slot by slot.
            for _ in 0..slots {
                self.step(None, None);
            }
            return;
        }
        // With no arrival, no request and an empty write backlog, a slot
        // only advances the clock (the busy-until horizons are absolute
        // slot numbers and age out by comparison).
        self.slot += slots;
        self.stats.slots += slots;
    }

    fn is_quiescent(&self) -> bool {
        self.write_backlog.is_empty()
    }

    fn requestable_total(&self) -> u64 {
        self.available_total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pktbuf_model::LineRate;

    fn cfg() -> RadsConfig {
        RadsConfig {
            line_rate: LineRate::Oc3072,
            num_queues: 4,
            granularity: 8,
            lookahead: None,
            dram: Default::default(),
        }
    }

    fn q(i: u32) -> LogicalQueueId {
        LogicalQueueId::new(i)
    }

    #[test]
    fn back_to_back_requests_miss_at_line_rate() {
        let mut b = DramOnlyBuffer::new(cfg());
        b.preload(q(0), (0..32).map(|i| Cell::new(q(0), i, 0)).collect());
        let mut grants = 0;
        for _ in 0..32 {
            let out = b.step(None, Some(q(0)));
            if out.granted.is_some() {
                grants += 1;
            }
        }
        // One grant per random access time of 8 slots: only ~1/8 of requests
        // can be honoured.
        assert_eq!(grants, 4);
        assert_eq!(b.stats().misses, 28);
        assert!(b.stats().miss_rate() > 0.8);
        assert!((b.worst_case_throughput_fraction() - 0.125).abs() < 1e-12);
    }

    #[test]
    fn paced_requests_are_all_served() {
        let mut b = DramOnlyBuffer::new(cfg());
        b.preload(q(1), (0..8).map(|i| Cell::new(q(1), i, 0)).collect());
        for i in 0..64 {
            let req = if i % 8 == 0 { Some(q(1)) } else { None };
            let out = b.step(None, req);
            assert!(out.miss.is_none());
        }
        assert_eq!(b.stats().grants, 8);
        assert_eq!(b.stats().order_violations, 0);
        assert_eq!(b.design_name(), "DRAM-only");
        assert_eq!(b.pipeline_delay_slots(), 0);
        assert_eq!(b.num_queues(), 4);
        assert_eq!(b.current_slot(), 64);
    }

    #[test]
    fn arrivals_share_nothing_with_reads_but_pace_writes() {
        let mut b = DramOnlyBuffer::new(cfg());
        for i in 0..16 {
            b.step(Some(Cell::new(q(2), i, 0)), None);
        }
        // Only one write per 8 slots completed: 2 of 16 cells are in DRAM.
        assert_eq!(b.stats().dram_writes, 2);
        assert_eq!(b.requestable_cells(q(2)), 2);
        assert_eq!(b.stats().arrivals, 16);
    }
}
