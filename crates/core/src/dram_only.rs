//! The DRAM-only baseline buffer (§1).
//!
//! A buffer built from DRAM alone cannot give worst-case guarantees at high
//! line rates: in the worst case every access pays the full random access
//! time, so the buffer can move at most one cell per `B` slots in each
//! direction. This front end models exactly that and is used by the E1
//! experiment to reproduce the introduction's motivation numbers.

use crate::stats::BufferStats;
use crate::traits::{PacketBuffer, SlotOutcome};
use crate::verify::DeliveryVerifier;
use pktbuf_model::{Cell, LogicalQueueId, RadsConfig};
use std::collections::VecDeque;

/// A packet buffer whose only storage is the DRAM itself.
#[derive(Debug)]
pub struct DramOnlyBuffer {
    cfg: RadsConfig,
    queues: Vec<VecDeque<Cell>>,
    /// Slot at which the DRAM read port is free again.
    read_busy_until: u64,
    /// Slot at which the DRAM write port is free again.
    write_busy_until: u64,
    /// Arrivals waiting for the write port.
    write_backlog: VecDeque<Cell>,
    slot: u64,
    available: Vec<u64>,
    stats: BufferStats,
    verifier: DeliveryVerifier,
}

impl DramOnlyBuffer {
    /// Creates a DRAM-only buffer for the given configuration (only the number
    /// of queues and the granularity — i.e. the random access time in slots —
    /// are used).
    pub fn new(cfg: RadsConfig) -> Self {
        DramOnlyBuffer {
            queues: vec![VecDeque::new(); cfg.num_queues],
            read_busy_until: 0,
            write_busy_until: 0,
            write_backlog: VecDeque::new(),
            slot: 0,
            available: vec![0; cfg.num_queues],
            stats: BufferStats::default(),
            verifier: DeliveryVerifier::new(cfg.num_queues),
            cfg,
        }
    }

    /// Worst-case sustainable throughput of this buffer, as a fraction of the
    /// line rate: one cell per random access time per direction.
    pub fn worst_case_throughput_fraction(&self) -> f64 {
        1.0 / self.cfg.granularity as f64
    }

    /// Preloads `cells` into `queue` (they count as already written to DRAM).
    pub fn preload(&mut self, queue: LogicalQueueId, cells: Vec<Cell>) {
        self.available[queue.as_usize()] += cells.len() as u64;
        self.queues[queue.as_usize()].extend(cells);
    }
}

impl PacketBuffer for DramOnlyBuffer {
    fn step(&mut self, arrival: Option<Cell>, request: Option<LogicalQueueId>) -> SlotOutcome {
        let t = self.slot;
        self.slot += 1;
        self.stats.slots += 1;
        let mut outcome = SlotOutcome::default();

        // Arrivals queue for the write port; each write occupies the DRAM for
        // a full random access time (worst case: no row locality).
        if let Some(cell) = arrival {
            self.stats.arrivals += 1;
            self.write_backlog.push_back(cell);
        }
        if self.write_busy_until <= t {
            if let Some(cell) = self.write_backlog.pop_front() {
                let q = cell.queue().as_usize();
                self.available[q] += 1;
                self.queues[q].push_back(cell);
                self.write_busy_until = t + self.cfg.granularity as u64;
                self.stats.dram_writes += 1;
            }
        }

        // A request can only be served if the read port is free; otherwise it
        // is a miss (the cell was not produced in time).
        if let Some(queue) = request {
            self.stats.requests += 1;
            let qi = queue.as_usize();
            if self.available[qi] > 0 {
                self.available[qi] -= 1;
            }
            if self.read_busy_until <= t {
                if let Some(cell) = self.queues[qi].pop_front() {
                    self.read_busy_until = t + self.cfg.granularity as u64;
                    self.stats.dram_reads += 1;
                    self.stats.grants += 1;
                    if !self.verifier.check(queue, &cell) {
                        self.stats.order_violations += 1;
                    }
                    outcome.granted = Some(cell);
                } else {
                    self.stats.misses += 1;
                    outcome.miss = Some(queue);
                }
            } else {
                self.stats.misses += 1;
                outcome.miss = Some(queue);
            }
        }
        outcome
    }

    fn current_slot(&self) -> u64 {
        self.slot
    }

    fn num_queues(&self) -> usize {
        self.cfg.num_queues
    }

    fn requestable_cells(&self, queue: LogicalQueueId) -> u64 {
        self.available[queue.as_usize()]
    }

    fn pipeline_delay_slots(&self) -> usize {
        0
    }

    fn stats(&self) -> &BufferStats {
        &self.stats
    }

    fn design_name(&self) -> &'static str {
        "DRAM-only"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pktbuf_model::LineRate;

    fn cfg() -> RadsConfig {
        RadsConfig {
            line_rate: LineRate::Oc3072,
            num_queues: 4,
            granularity: 8,
            lookahead: None,
            dram: Default::default(),
        }
    }

    fn q(i: u32) -> LogicalQueueId {
        LogicalQueueId::new(i)
    }

    #[test]
    fn back_to_back_requests_miss_at_line_rate() {
        let mut b = DramOnlyBuffer::new(cfg());
        b.preload(q(0), (0..32).map(|i| Cell::new(q(0), i, 0)).collect());
        let mut grants = 0;
        for _ in 0..32 {
            let out = b.step(None, Some(q(0)));
            if out.granted.is_some() {
                grants += 1;
            }
        }
        // One grant per random access time of 8 slots: only ~1/8 of requests
        // can be honoured.
        assert_eq!(grants, 4);
        assert_eq!(b.stats().misses, 28);
        assert!(b.stats().miss_rate() > 0.8);
        assert!((b.worst_case_throughput_fraction() - 0.125).abs() < 1e-12);
    }

    #[test]
    fn paced_requests_are_all_served() {
        let mut b = DramOnlyBuffer::new(cfg());
        b.preload(q(1), (0..8).map(|i| Cell::new(q(1), i, 0)).collect());
        for i in 0..64 {
            let req = if i % 8 == 0 { Some(q(1)) } else { None };
            let out = b.step(None, req);
            assert!(out.miss.is_none());
        }
        assert_eq!(b.stats().grants, 8);
        assert_eq!(b.stats().order_violations, 0);
        assert_eq!(b.design_name(), "DRAM-only");
        assert_eq!(b.pipeline_delay_slots(), 0);
        assert_eq!(b.num_queues(), 4);
        assert_eq!(b.current_slot(), 64);
    }

    #[test]
    fn arrivals_share_nothing_with_reads_but_pace_writes() {
        let mut b = DramOnlyBuffer::new(cfg());
        for i in 0..16 {
            b.step(Some(Cell::new(q(2), i, 0)), None);
        }
        // Only one write per 8 slots completed: 2 of 16 cells are in DRAM.
        assert_eq!(b.stats().dram_writes, 2);
        assert_eq!(b.requestable_cells(q(2)), 2);
        assert_eq!(b.stats().arrivals, 16);
    }
}
