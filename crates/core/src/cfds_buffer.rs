//! The CFDS (Conflict-Free DRAM System) buffer front end — the paper's
//! contribution (§5, §6) assembled into a complete packet buffer.

use crate::hotpath::{countdown_after, periods_crossed, BlockPool, PendingTable, TailCellArena};
use crate::hsram::{HeadSram, HeadSramKind};
use crate::stats::BufferStats;
use crate::traits::{BatchReport, GrantSink, PacketBuffer, RequestSource, SlotOutcome};
use crate::verify::DeliveryVerifier;
use cfds::{
    sizing as cfds_sizing, DramSchedulerSubsystem, DsaPolicy, LatencyRegister, RenamingTable,
};
use dram_sim::{AccessKind, AddressMapper, BankArray, DramStore, GroupId, InterleavingConfig};
use mma::{EcqfMma, HeadMmaSubsystem, ThresholdTailMma};
use pktbuf_model::{Cell, CfdsConfig, LogicalQueueId, PhysicalQueueId};
use sram_buf::SharedBuffer;
use std::collections::VecDeque;

/// A block in flight from the DRAM to the head SRAM.
#[derive(Debug, Clone)]
struct PendingDelivery {
    deliver_slot: u64,
    queue: LogicalQueueId,
    block_index: u64,
    cells: Vec<Cell>,
}

/// Construction options for a [`CfdsBuffer`].
#[derive(Debug, Clone, Copy)]
pub struct CfdsBufferOptions {
    /// Head-SRAM organisation.
    pub head_sram: HeadSramKind,
    /// DSA policy (the paper's oldest-first by default; the others exist for
    /// the ablation benchmarks).
    pub dsa: DsaPolicy,
    /// Total DRAM capacity in cells, split evenly over the bank groups.
    /// `None` means effectively unbounded (the default for correctness
    /// experiments; the fragmentation experiment sets it explicitly).
    pub dram_capacity_cells: Option<usize>,
}

impl Default for CfdsBufferOptions {
    fn default() -> Self {
        CfdsBufferOptions {
            head_sram: HeadSramKind::GlobalCam,
            dsa: DsaPolicy::OldestFirst,
            dram_capacity_cells: None,
        }
    }
}

/// The CFDS packet buffer: tail SRAM + banked DRAM behind a conflict-free
/// scheduler + head SRAM, with DRAM transfers of `b` cells every `b` slots in
/// each direction.
pub struct CfdsBuffer {
    cfg: CfdsConfig,
    slot: u64,
    /// Slots until the next granularity period (avoids a division per slot;
    /// hits zero exactly when `slot % b == 0`).
    until_period: u64,
    // Tail side: an intrusive cell arena with per-queue FIFO chains and an
    // incrementally maintained occupancy array (see [`crate::hotpath`]).
    tail: TailCellArena,
    tail_capacity: usize,
    tail_mma: ThresholdTailMma,
    /// Recycles the block buffers that cycle tail → DRAM → head SRAM.
    pool: BlockPool,
    // DRAM and its scheduler.
    banks: BankArray,
    store: DramStore,
    dss: DramSchedulerSubsystem,
    renaming: RenamingTable,
    /// Blocks whose write request has been submitted but not issued yet,
    /// indexed by (physical queue, block ordinal).
    pending_writes: PendingTable<Vec<Cell>>,
    /// Pending (submitted, un-issued) write blocks per group, for capacity
    /// accounting.
    group_pending: Vec<usize>,
    /// (physical queue, ordinal) → (logical queue, logical block index) for
    /// submitted reads.
    read_tags: PendingTable<(LogicalQueueId, u64)>,
    /// Per-logical-queue count of read blocks submitted so far.
    read_blocks_submitted: Vec<u64>,
    // Head side. The MMA policy and the SRAM organisation are concrete types
    // (ECQF, a two-variant enum) so the per-slot notifications and the
    // per-grant pop never cross a vtable.
    head_mma: HeadMmaSubsystem<EcqfMma>,
    latency: LatencyRegister,
    head_sram: HeadSram,
    pending_deliveries: VecDeque<PendingDelivery>,
    /// Cells written to DRAM minus requests accepted, per logical queue.
    available: Vec<u64>,
    /// Σ `available` — O(1) emptiness probe for the batch loop and the
    /// chunked engine's fast-forward check.
    available_total: u64,
    verifier: DeliveryVerifier,
    stats: BufferStats,
}

impl std::fmt::Debug for CfdsBuffer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CfdsBuffer")
            .field("cfg", &self.cfg)
            .field("slot", &self.slot)
            .field("stats", &self.stats)
            .finish()
    }
}

impl CfdsBuffer {
    /// Creates a CFDS buffer with default options (global-CAM head SRAM,
    /// oldest-first DSA, unbounded DRAM).
    ///
    /// # Panics
    ///
    /// Panics if the configuration does not validate.
    pub fn new(cfg: CfdsConfig) -> Self {
        CfdsBuffer::with_options(cfg, CfdsBufferOptions::default())
    }

    /// Creates a CFDS buffer with explicit options.
    ///
    /// # Panics
    ///
    /// Panics if the configuration does not validate.
    pub fn with_options(cfg: CfdsConfig, options: CfdsBufferOptions) -> Self {
        cfg.validate().expect("invalid CFDS configuration");
        let q = cfg.num_queues;
        let b = cfg.granularity;
        let big_b = cfg.rads_granularity;
        let lookahead = cfg.effective_lookahead();
        let latency_slots = cfds_sizing::latency_slots(&cfg);
        // The functional head SRAM is not capacity-limited: dimensioning is
        // checked by comparing the measured peak occupancy against the
        // analytical bound (see `analytical_head_sram`), so that a sizing or
        // policy bug surfaces as a measurement, not as an artificial overflow
        // (the ablation DSA policies deliberately exceed the bound).
        let head_capacity = usize::MAX / 4;
        let tail_capacity = 2 * ThresholdTailMma::required_sram_cells(q, b);
        let interleaving = InterleavingConfig::from_cfds(&cfg);
        let mapper = AddressMapper::with_block_cells(interleaving, b);
        let store = match options.dram_capacity_cells {
            Some(cells) => DramStore::with_total_capacity(mapper, cells, b),
            None => DramStore::new(mapper, usize::MAX / 4),
        };
        // The DSS serves reads and writes through the same issue stream, two
        // opportunities per b-slot period, so a bank stays locked for
        // 2·(B/b) − 1 subsequent opportunities.
        let dss = DramSchedulerSubsystem::new(mapper, 2 * cfg.banks_per_group(), options.dsa);
        CfdsBuffer {
            slot: 0,
            until_period: 0,
            tail: TailCellArena::new(q, tail_capacity, b),
            tail_capacity,
            tail_mma: ThresholdTailMma::new(b),
            pool: BlockPool::new(),
            banks: BankArray::new(cfg.num_banks, big_b as u64),
            store,
            dss,
            renaming: RenamingTable::new(q, cfg.num_physical_queues(), cfg.num_groups()),
            pending_writes: PendingTable::new(cfg.num_physical_queues()),
            group_pending: vec![0; cfg.num_groups()],
            read_tags: PendingTable::new(cfg.num_physical_queues()),
            read_blocks_submitted: vec![0; q],
            head_mma: HeadMmaSubsystem::with_policy(EcqfMma::new(b), lookahead, q),
            latency: LatencyRegister::new(latency_slots),
            head_sram: options
                .head_sram
                .build_enum(q, head_capacity, cfg.banks_per_group(), b),
            pending_deliveries: VecDeque::new(),
            available: vec![0; q],
            available_total: 0,
            verifier: DeliveryVerifier::new(q),
            stats: BufferStats::default(),
            cfg,
        }
    }

    /// The configuration this buffer was built from.
    pub fn config(&self) -> &CfdsConfig {
        &self.cfg
    }

    /// Peak head-SRAM occupancy observed so far (cells).
    pub fn peak_head_sram(&self) -> usize {
        self.head_sram.peak_occupancy()
    }

    /// Analytical head-SRAM requirement (equation (4)), in cells.
    pub fn analytical_head_sram(&self) -> usize {
        cfds_sizing::sram_cells(&self.cfg, self.cfg.effective_lookahead())
    }

    /// Analytical Requests-Register size (equation (1)).
    pub fn analytical_rr_size(&self) -> usize {
        cfds_sizing::rr_size(&self.cfg)
    }

    /// Peak Requests-Register occupancy observed so far.
    pub fn peak_rr_occupancy(&self) -> usize {
        self.dss.peak_rr_occupancy()
    }

    /// Fraction of the DRAM block capacity currently in use.
    pub fn dram_utilisation(&self) -> f64 {
        self.store.utilisation()
    }

    /// Number of physical queues currently chained to `queue` by the renaming
    /// layer.
    pub fn renaming_chain_length(&self, queue: LogicalQueueId) -> usize {
        self.renaming.chain_length(queue)
    }

    /// Preloads `cells` of `queue` directly into the DRAM through the
    /// renaming layer, bypassing the tail path.
    ///
    /// # Panics
    ///
    /// Panics if the number of cells is not a multiple of the granularity or
    /// if the DRAM has no room for them.
    // By-value keeps the ~18 call sites moving their staging Vec straight in;
    // this is a setup-only path, so the extra copy inside is irrelevant.
    #[allow(clippy::needless_pass_by_value)]
    pub fn preload_dram(&mut self, queue: LogicalQueueId, cells: Vec<Cell>) {
        let b = self.cfg.granularity;
        assert!(
            cells.len().is_multiple_of(b),
            "preload length must be a multiple of the granularity"
        );
        self.available[queue.as_usize()] += cells.len() as u64;
        self.available_total += cells.len() as u64;
        for chunk in cells.chunks(b) {
            let preferred = self.store.groups_with_room();
            let store = &self.store;
            let group_pending = &self.group_pending;
            let physical = self
                .renaming
                .physical_for_write(
                    queue,
                    |g: GroupId| {
                        store.group_occupancy(g) + group_pending[g.index()]
                            < store.group_capacity_blocks()
                    },
                    &preferred,
                )
                .expect("preload found no DRAM room");
            self.renaming.note_block_written(queue);
            self.store
                .write_block(physical, chunk.to_vec())
                .expect("preload write fits the group");
            self.dss.set_ordinals(
                physical,
                self.store.head_ordinal(physical),
                self.store.next_write_ordinal(physical),
            );
        }
    }

    #[inline]
    fn deliver_due(&mut self, now: u64) {
        while self
            .pending_deliveries
            .front()
            .is_some_and(|front| front.deliver_slot <= now)
        {
            let Some(d) = self.pending_deliveries.pop_front() else {
                break;
            };
            self.head_sram
                .insert_block_cells(d.queue, d.block_index, &d.cells)
                .expect("head SRAM is functionally unbounded"); // analyze: allow(panic-freedom) — the head SRAM is configured functionally unbounded; occupancy is measured, not capped
            self.pool.put(d.cells);
            self.stats.peak_head_sram_cells = self
                .stats
                .peak_head_sram_cells
                .max(self.head_sram.occupancy() as u64);
        }
    }

    #[inline]
    fn submit_writeback(&mut self, now: u64) {
        let b = self.cfg.granularity;
        // The arena tracks threshold crossings: when no queue holds a full
        // batch the MMA cannot select anything — skip the scan outright.
        if !self.tail.any_eligible() {
            return;
        }
        let Some(queue) = self
            .tail_mma
            .select_masked(self.tail.occupancies(), self.tail.eligible_words())
        else {
            return;
        };
        // Keep the write stream of this queue out of the group its read
        // stream is draining: one group sustains only one access per b slots,
        // which a backlogged queue needs for each direction.
        let avoid = self
            .renaming
            .physical_for_read(queue)
            .map(|p| self.store.mapper().group_of_queue(p));
        let store = &self.store;
        let group_pending = &self.group_pending;
        let has_room = |g: GroupId| {
            store.group_occupancy(g) + group_pending[g.index()] < store.group_capacity_blocks()
        };
        // Fast path: the chain tail's group has room and is not avoided —
        // exactly the first check of `physical_for_write_avoiding` — so the
        // sorted preferred-group list is never needed.
        let fast = self.renaming.write_tail(queue).filter(|p| {
            let group = self.renaming.group_of(*p);
            has_room(group) && Some(group) != avoid
        });
        let physical = match fast {
            Some(p) => p,
            None => {
                // Slow path: pick the emptiest group with room and a free
                // name in one pass (equivalent to sorting the groups by
                // occupancy and trying them in order).
                match self.renaming.physical_for_write_ranked(
                    queue,
                    avoid,
                    has_room,
                    |g: GroupId| store.group_occupancy(g),
                ) {
                    Ok(p) => p,
                    Err(_) => {
                        self.stats.blocked_writebacks += 1;
                        return;
                    }
                }
            }
        };
        self.renaming.note_block_written(queue);
        let qi = queue.as_usize();
        let mut cells = self.pool.take(b);
        self.tail.pop_block_into(queue, b, &mut cells);
        let request = self.dss.submit_write(physical, now);
        let group = self.store.mapper().group_of_queue(physical);
        self.group_pending[group.index()] += 1;
        self.pending_writes
            .insert(physical.index(), request.block_ordinal, cells);
        self.available[qi] += b as u64;
        self.available_total += b as u64;
    }

    #[inline]
    fn submit_replenishment(&mut self, now: u64) {
        let b = self.cfg.granularity;
        let Some(queue) = self.head_mma.select_replenishment() else {
            return;
        };
        let Some(physical) = self.renaming.physical_for_read(queue) else {
            // Nothing in DRAM for this queue: roll the credit back.
            self.head_mma.preload(queue, -(b as i64));
            self.stats.unfulfilled_replenishments += 1;
            return;
        };
        self.renaming.note_block_read(queue);
        let request = self.dss.submit_read(physical, now);
        let qi = queue.as_usize();
        let block_index = self.read_blocks_submitted[qi];
        self.read_blocks_submitted[qi] += 1;
        self.read_tags.insert(
            physical.index(),
            request.block_ordinal,
            (queue, block_index),
        );
    }

    #[inline]
    fn issue_opportunities(&mut self, now: u64) {
        let big_b = self.cfg.rads_granularity as u64;
        for _ in 0..2 {
            let Some(issued) = self.dss.issue(now) else {
                continue;
            };
            let physical = PhysicalQueueId::new(issued.request.queue.index());
            let ordinal = issued.request.block_ordinal;
            if self.banks.start_access(issued.bank, now).is_err() {
                self.stats.bank_conflicts += 1;
            }
            self.stats.max_dss_delay_slots =
                self.stats.max_dss_delay_slots.max(issued.delay_slots());
            match issued.request.kind {
                AccessKind::Write => {
                    let group = self.store.mapper().group_of_queue(physical);
                    self.group_pending[group.index()] =
                        self.group_pending[group.index()].saturating_sub(1);
                    if let Some(cells) = self.pending_writes.remove(physical.index(), ordinal) {
                        match self.store.write_block_at(
                            physical,
                            issued.request.block_ordinal,
                            cells,
                        ) {
                            Ok(()) => self.stats.dram_writes += 1,
                            Err(_) => self.stats.blocked_writebacks += 1,
                        }
                    }
                    // A missing entry means the block was already forwarded to
                    // a read that overtook this write (only possible with the
                    // ablation DSA policies); nothing further to do.
                }
                AccessKind::Read => {
                    let (queue, block_index) = self
                        .read_tags
                        .remove(physical.index(), ordinal)
                        .expect("every issued read was tagged at submit time"); // analyze: allow(panic-freedom) — every issued read was tagged at submit time and untagged only here
                    let cells = match self.store.read_block_at(physical, ordinal) {
                        Ok(cells) => cells,
                        Err(_) => {
                            // Read overtook its producing write (ablation
                            // policies only): forward the data directly and
                            // tell the store the ordinal will never be
                            // resident, so its ring does not keep a
                            // permanently vacant hole at the front.
                            let group = self.store.mapper().group_of_queue(physical);
                            self.group_pending[group.index()] =
                                self.group_pending[group.index()].saturating_sub(1);
                            self.store
                                .note_forwarded(physical, ordinal)
                                .expect("issued reads target known queues"); // analyze: allow(panic-freedom) — the forwarded queue was registered with the store at write submit
                            self.pending_writes
                                .remove(physical.index(), ordinal)
                                // analyze: allow(panic-freedom) — a read that overtook its write finds that write still pending by construction
                                .expect("forwarded block exists among pending writes")
                        }
                    };
                    self.stats.dram_reads += 1;
                    self.pending_deliveries.push_back(PendingDelivery {
                        deliver_slot: now + big_b,
                        queue,
                        block_index,
                        cells,
                    });
                }
            }
        }
        self.stats.peak_rr_entries = self
            .stats
            .peak_rr_entries
            .max(self.dss.peak_rr_occupancy() as u64);
        self.stats.dss_stalls = self.dss.stats().stalls;
    }
}

impl PacketBuffer for CfdsBuffer {
    fn step(&mut self, arrival: Option<Cell>, request: Option<LogicalQueueId>) -> SlotOutcome {
        let now = self.slot;
        self.slot += 1;
        self.stats.slots += 1;
        let mut outcome = SlotOutcome::default();

        // 1. Blocks whose DRAM access completed reach the head SRAM.
        self.deliver_due(now);

        // 2. Arrival into the tail SRAM.
        if let Some(cell) = arrival {
            if self.tail.len() < self.tail_capacity {
                self.tail.push(cell);
                self.stats.peak_tail_sram_cells =
                    self.stats.peak_tail_sram_cells.max(self.tail.len() as u64);
                self.stats.arrivals += 1;
            } else {
                self.stats.drops += 1;
                outcome.dropped_arrival = Some(cell);
            }
        }

        // 3. Arbiter request: lookahead, then the latency register.
        let due = if let Some(queue) = request {
            self.stats.requests += 1;
            let qi = queue.as_usize();
            if self.available[qi] > 0 {
                self.available[qi] -= 1;
                self.available_total -= 1;
            }
            self.head_mma.on_request(Some(queue)).due
        } else {
            self.head_mma.on_request(None).due
        };
        let emerged = self.latency.push(due);

        // 4. Every b slots: MMA decisions and DSS issue opportunities.
        if self.until_period == 0 {
            self.until_period = self.cfg.granularity as u64;
            self.submit_writeback(now);
            self.submit_replenishment(now);
            self.issue_opportunities(now);
        }
        self.until_period -= 1;

        // 5. Serve the request that completed both the lookahead and the
        //    latency register.
        if let Some(queue) = emerged {
            match self.head_sram.pop_front(queue) {
                Some(cell) => {
                    if !self.verifier.check(queue, &cell) {
                        self.stats.order_violations += 1;
                    }
                    self.stats.grants += 1;
                    outcome.granted = Some(cell);
                }
                None => {
                    self.stats.misses += 1;
                    outcome.miss = Some(queue);
                }
            }
        }
        outcome
    }

    fn current_slot(&self) -> u64 {
        self.slot
    }

    fn num_queues(&self) -> usize {
        self.cfg.num_queues
    }

    fn requestable_cells(&self, queue: LogicalQueueId) -> u64 {
        self.available[queue.as_usize()]
    }

    fn pipeline_delay_slots(&self) -> usize {
        self.cfg.effective_lookahead() + self.latency.capacity()
    }

    fn stats(&self) -> &BufferStats {
        &self.stats
    }

    fn design_name(&self) -> &'static str {
        "CFDS"
    }

    /// Fused batch loop: same slot sequence as [`CfdsBuffer::step`], with the
    /// per-slot invariants (granularity, the availability slice backing the
    /// request oracle) hoisted out of the loop and no `SlotOutcome`
    /// materialised per slot.
    fn step_batch<R: RequestSource>(
        &mut self,
        arrivals: &mut [Option<Cell>],
        requests: &mut R,
        grants: &mut GrantSink,
    ) -> BatchReport {
        let b = self.cfg.granularity as u64;
        let skippable = requests.idle_skippable();
        let mut report = BatchReport::default();
        // Slot-grained counters live in locals for the whole batch: the calls
        // into the delivery/period machinery take `&mut self`, which would
        // otherwise force every per-slot counter through memory each
        // iteration. Flushed once after the loop.
        let mut now = self.slot;
        let mut until_period = self.until_period;
        let mut delta = BufferStats::default();
        let mut peak_tail = self.stats.peak_tail_sram_cells;
        for arrival in arrivals.iter_mut() {
            // The closed-loop request probe comes first, exactly as in the
            // per-slot engine (the oracle observes the availability as of the
            // end of the previous slot); it is the availability array itself,
            // so the generator's scan is direct loads.
            // When nothing is requestable anywhere, a skippable generator's
            // Q-probe scan is provably fruitless and side-effect-free — skip
            // it on the O(1) total instead.
            let request = if skippable && self.available_total == 0 {
                None
            } else {
                let available = &self.available;
                requests.next_request(now, &|q: LogicalQueueId| available[q.as_usize()])
            };
            report.note(request.is_some());

            // 1. Due deliveries reach the head SRAM.
            if !self.pending_deliveries.is_empty() {
                self.deliver_due(now);
            }

            // 2. Arrival into the tail SRAM.
            if let Some(cell) = arrival.take() {
                if self.tail.len() < self.tail_capacity {
                    self.tail.push(cell);
                    peak_tail = peak_tail.max(self.tail.len() as u64);
                    delta.arrivals += 1;
                } else {
                    delta.drops += 1;
                }
            }

            // 3. The request enters the head MMA.
            let due = if let Some(queue) = request {
                delta.requests += 1;
                let qi = queue.as_usize();
                if self.available[qi] > 0 {
                    self.available[qi] -= 1;
                    self.available_total -= 1;
                }
                self.head_mma.on_request(Some(queue)).due
            } else {
                self.head_mma.on_request(None).due
            };
            let emerged = self.latency.push(due);

            // 4. MMA decisions and DSS issue opportunities every b slots.
            if until_period == 0 {
                until_period = b;
                self.submit_writeback(now);
                self.submit_replenishment(now);
                self.issue_opportunities(now);
            }
            until_period -= 1;

            // 5. Serve the request that completed the whole delay pipeline.
            if let Some(queue) = emerged {
                match self.head_sram.pop_front(queue) {
                    Some(cell) => {
                        if !self.verifier.check(queue, &cell) {
                            delta.order_violations += 1;
                        }
                        delta.grants += 1;
                        grants.push(queue.index());
                    }
                    None => {
                        delta.misses += 1;
                    }
                }
            }
            now += 1;
        }
        self.slot = now;
        self.until_period = until_period;
        self.stats.slots += arrivals.len() as u64;
        self.stats.peak_tail_sram_cells = peak_tail;
        self.stats.arrivals += delta.arrivals;
        self.stats.drops += delta.drops;
        self.stats.requests += delta.requests;
        self.stats.grants += delta.grants;
        self.stats.misses += delta.misses;
        self.stats.order_violations += delta.order_violations;
        report
    }

    fn advance_idle(&mut self, slots: u64) {
        if slots == 0 {
            return;
        }
        if !self.is_quiescent() {
            for _ in 0..slots {
                self.step(None, None);
            }
            return;
        }
        // Quiescent: a skipped slot rotates the (all-idle) lookahead and
        // latency registers, counts down the period and — at boundaries —
        // finds nothing to write back (no eligible tail batch), nothing to
        // replenish (ECQF with an empty pending set selects `None`) and an
        // empty RR whose two issue opportunities only age the ORR lock
        // window. All pure counter/cursor motion, applied arithmetically.
        let b = self.cfg.granularity as u64;
        debug_assert!(self.pending_writes.is_empty() && self.read_tags.is_empty());
        self.slot += slots;
        self.stats.slots += slots;
        self.head_mma.advance_idle(slots);
        self.latency.advance_idle(slots);
        let periods = periods_crossed(self.until_period, slots, b);
        self.dss.advance_idle(2 * periods);
        self.until_period = countdown_after(self.until_period, slots, b);
    }

    fn is_quiescent(&self) -> bool {
        self.pending_deliveries.is_empty()
            && !self.tail.any_eligible()
            && self.head_mma.lookahead().pending_len() == 0
            && self.dss.pending() == 0
            && self.latency.in_flight() == 0
    }

    fn requestable_total(&self) -> u64 {
        self.available_total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pktbuf_model::LineRate;

    fn small_cfg(q: usize, b: usize, big_b: usize, m: usize) -> CfdsConfig {
        CfdsConfig::builder()
            .line_rate(LineRate::Oc3072)
            .num_queues(q)
            .granularity(b)
            .rads_granularity(big_b)
            .num_banks(m)
            .build()
            .unwrap()
    }

    fn lq(i: u32) -> LogicalQueueId {
        LogicalQueueId::new(i)
    }

    fn preload_all(buf: &mut CfdsBuffer, q: usize, cells_per_queue: u64) {
        for i in 0..q as u32 {
            let cells: Vec<Cell> = (0..cells_per_queue)
                .map(|s| Cell::new(lq(i), s, 0))
                .collect();
            buf.preload_dram(lq(i), cells);
        }
    }

    fn drain_round_robin(buf: &mut CfdsBuffer, q: usize, per_queue: u64) {
        let total = q as u64 * per_queue;
        let delay = buf.pipeline_delay_slots() as u64;
        let mut issued = 0u64;
        for t in 0..(total + delay + 64) {
            let req = if issued < total {
                let queue = lq((t % q as u64) as u32);
                if buf.requestable_cells(queue) > 0 {
                    issued += 1;
                    Some(queue)
                } else {
                    None
                }
            } else {
                None
            };
            let out = buf.step(None, req);
            assert!(out.miss.is_none(), "miss at slot {t}");
        }
    }

    #[test]
    fn round_robin_drain_is_conflict_and_miss_free() {
        let (q, b, big_b, m) = (8, 2, 8, 16);
        let mut buf = CfdsBuffer::new(small_cfg(q, b, big_b, m));
        preload_all(&mut buf, q, 32);
        drain_round_robin(&mut buf, q, 32);
        assert_eq!(buf.stats().grants, 8 * 32);
        assert!(buf.stats().is_loss_free(), "{:?}", buf.stats());
        assert_eq!(buf.stats().bank_conflicts, 0);
        assert_eq!(buf.stats().dss_stalls, 0);
        // Empirical RR occupancy respects the analytical bound.
        assert!(
            buf.peak_rr_occupancy() <= buf.analytical_rr_size().max(1),
            "peak RR {} vs bound {}",
            buf.peak_rr_occupancy(),
            buf.analytical_rr_size()
        );
    }

    #[test]
    fn single_queue_burst_is_served_in_order() {
        let (q, b, big_b, m) = (4, 2, 8, 16);
        let mut buf = CfdsBuffer::new(small_cfg(q, b, big_b, m));
        preload_all(&mut buf, q, 64);
        let delay = buf.pipeline_delay_slots() as u64;
        let mut issued = 0u64;
        for _ in 0..(64 + delay + 64) {
            let req = if issued < 64 && buf.requestable_cells(lq(1)) > 0 {
                issued += 1;
                Some(lq(1))
            } else {
                None
            };
            let out = buf.step(None, req);
            assert!(out.miss.is_none());
            if let Some(cell) = &out.granted {
                assert_eq!(cell.queue(), lq(1));
            }
        }
        assert_eq!(buf.stats().grants, 64);
        assert!(buf.stats().is_loss_free());
    }

    #[test]
    fn arrivals_flow_line_to_dram_to_arbiter() {
        let (q, b, big_b, m) = (4, 2, 8, 16);
        let mut buf = CfdsBuffer::new(small_cfg(q, b, big_b, m));
        // Interleave arrivals over two queues.
        let mut seqs = [0u64; 2];
        for t in 0..64u64 {
            let qi = (t % 2) as u32;
            let cell = Cell::new(lq(qi), seqs[qi as usize], t);
            seqs[qi as usize] += 1;
            buf.step(Some(cell), None);
        }
        // Let writebacks drain to DRAM.
        for _ in 0..256 {
            buf.step(None, None);
        }
        assert!(buf.requestable_cells(lq(0)) >= 16);
        assert!(buf.requestable_cells(lq(1)) >= 16);
        // Drain what reached DRAM; no misses allowed.
        let available: Vec<u64> = (0..2).map(|i| buf.requestable_cells(lq(i))).collect();
        let total: u64 = available.iter().sum();
        let delay = buf.pipeline_delay_slots() as u64;
        let mut remaining = available;
        let mut granted_target = 0u64;
        for t in 0..(total + delay + 128) {
            let qi = (t % 2) as usize;
            let req = if remaining[qi] > 0 {
                remaining[qi] -= 1;
                granted_target += 1;
                Some(lq(qi as u32))
            } else {
                None
            };
            let out = buf.step(None, req);
            assert!(out.miss.is_none(), "miss at slot {t}");
        }
        assert_eq!(buf.stats().grants, granted_target);
        assert!(buf.stats().is_loss_free());
        assert_eq!(buf.stats().drops, 0);
    }

    #[test]
    fn renaming_spreads_a_hot_queue_over_groups() {
        let (q, b, big_b, m) = (4, 2, 8, 16);
        let mut cfg = small_cfg(q, b, big_b, m);
        cfg.physical_queue_factor = 2;
        // Small DRAM: 16 blocks total over 4 groups → 4 blocks (8 cells) per
        // group.
        let options = CfdsBufferOptions {
            dram_capacity_cells: Some(32),
            ..CfdsBufferOptions::default()
        };
        let mut buf = CfdsBuffer::with_options(cfg, options);
        // Preload 24 cells (12 blocks) of one single logical queue: they
        // cannot fit in one group (4 blocks), so renaming must chain physical
        // queues across groups.
        let cells: Vec<Cell> = (0..24).map(|s| Cell::new(lq(0), s, 0)).collect();
        buf.preload_dram(lq(0), cells);
        assert!(buf.renaming_chain_length(lq(0)) >= 3);
        assert!(buf.dram_utilisation() > 0.7);
        // And the cells still come out in FIFO order.
        let delay = buf.pipeline_delay_slots() as u64;
        let mut issued = 0u64;
        for _ in 0..(24 + delay + 64) {
            let req = if issued < 24 {
                issued += 1;
                Some(lq(0))
            } else {
                None
            };
            let out = buf.step(None, req);
            assert!(out.miss.is_none());
        }
        assert_eq!(buf.stats().grants, 24);
        assert!(buf.stats().is_loss_free());
    }

    #[test]
    fn accessors_and_debug() {
        let buf = CfdsBuffer::new(small_cfg(4, 2, 8, 16));
        assert_eq!(buf.design_name(), "CFDS");
        assert_eq!(buf.num_queues(), 4);
        assert_eq!(buf.config().granularity, 2);
        assert!(buf.pipeline_delay_slots() > buf.config().effective_lookahead());
        assert!(format!("{buf:?}").contains("CfdsBuffer"));
        assert_eq!(buf.peak_head_sram(), 0);
        assert!(buf.analytical_head_sram() > 0);
    }

    #[test]
    #[should_panic(expected = "multiple of the granularity")]
    fn preload_must_be_block_aligned() {
        let mut buf = CfdsBuffer::new(small_cfg(4, 2, 8, 16));
        buf.preload_dram(lq(0), vec![Cell::new(lq(0), 0, 0)]);
    }
}
