//! The RADS (Random Access DRAM System) buffer front end — the baseline of
//! §3, i.e. the hybrid SRAM/DRAM design of Iyer, Kompella and McKeown.

use crate::hotpath::{countdown_after, BlockPool, TailCellArena};
use crate::hsram::{HeadSram, HeadSramKind};
use crate::stats::BufferStats;
use crate::traits::{BatchReport, GrantSink, PacketBuffer, RequestSource, SlotOutcome};
use crate::verify::DeliveryVerifier;
use dram_sim::{AddressMapper, DramStore, InterleavingConfig};
use mma::sizing::rads_sram_size_cells;
use mma::{EcqfMma, HeadMmaSubsystem, ThresholdTailMma};
use pktbuf_model::{Cell, LogicalQueueId, PhysicalQueueId, RadsConfig};
use sram_buf::SharedBuffer;
use std::collections::VecDeque;

/// A block in flight from the DRAM to the head SRAM.
#[derive(Debug, Clone)]
struct PendingDelivery {
    deliver_slot: u64,
    queue: LogicalQueueId,
    block_index: u64,
    cells: Vec<Cell>,
}

/// The RADS packet buffer: tail SRAM + single-resource DRAM + head SRAM, with
/// DRAM transfers of `B` cells every `B` slots in each direction.
pub struct RadsBuffer {
    cfg: RadsConfig,
    slot: u64,
    /// Slots until the next granularity period (avoids a division per slot;
    /// hits zero exactly when `slot % B == 0`).
    until_period: u64,
    // Tail side: an intrusive cell arena with per-queue FIFO chains and an
    // incrementally maintained occupancy array (see [`crate::hotpath`]).
    tail: TailCellArena,
    tail_capacity: usize,
    tail_mma: ThresholdTailMma,
    /// Recycles the block buffers that cycle tail → DRAM → head SRAM.
    pool: BlockPool,
    // DRAM.
    dram: DramStore,
    // Head side. The MMA policy and the SRAM organisation are concrete types
    // (ECQF, a two-variant enum) so the per-slot notifications and the
    // per-grant pop never cross a vtable.
    head_mma: HeadMmaSubsystem<EcqfMma>,
    head_sram: HeadSram,
    pending_deliveries: VecDeque<PendingDelivery>,
    /// Per-queue index of the next block read from DRAM toward the head SRAM.
    head_block_seq: Vec<u64>,
    /// Cells written to DRAM minus requests accepted, per queue.
    available: Vec<u64>,
    /// Σ `available` — O(1) emptiness probe for the batch loop and the
    /// chunked engine's fast-forward check.
    available_total: u64,
    verifier: DeliveryVerifier,
    stats: BufferStats,
}

impl std::fmt::Debug for RadsBuffer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RadsBuffer")
            .field("cfg", &self.cfg)
            .field("slot", &self.slot)
            .field("stats", &self.stats)
            .finish()
    }
}

impl RadsBuffer {
    /// Creates a RADS buffer with the default (global CAM) head SRAM.
    ///
    /// # Panics
    ///
    /// Panics if the configuration does not validate.
    pub fn new(cfg: RadsConfig) -> Self {
        RadsBuffer::with_head_sram(cfg, HeadSramKind::GlobalCam)
    }

    /// Creates a RADS buffer with an explicit head-SRAM organisation.
    ///
    /// # Panics
    ///
    /// Panics if the configuration does not validate.
    pub fn with_head_sram(cfg: RadsConfig, kind: HeadSramKind) -> Self {
        cfg.validate().expect("invalid RADS configuration");
        let q = cfg.num_queues;
        let b = cfg.granularity;
        let lookahead = cfg.effective_lookahead();
        // The functional head SRAM is not capacity-limited: dimensioning is
        // checked by comparing the measured peak occupancy against the
        // analytical bound rather than by an artificial overflow.
        let head_capacity = usize::MAX / 4;
        let tail_capacity = 2 * ThresholdTailMma::required_sram_cells(q, b);
        // RADS treats the DRAM as a single resource; a one-bank mapping with
        // effectively unlimited per-group capacity stores the queue contents.
        let mapper = AddressMapper::new(
            InterleavingConfig::new(1, 1, q).expect("one-bank interleaving is always valid"),
        );
        let dram = DramStore::new(mapper, usize::MAX / 4);
        RadsBuffer {
            slot: 0,
            until_period: 0,
            tail: TailCellArena::new(q, tail_capacity, b),
            tail_capacity,
            tail_mma: ThresholdTailMma::new(b),
            pool: BlockPool::new(),
            dram,
            head_mma: HeadMmaSubsystem::with_policy(EcqfMma::new(b), lookahead, q),
            head_sram: kind.build_enum(q, head_capacity, 1, b),
            pending_deliveries: VecDeque::new(),
            head_block_seq: vec![0; q],
            available: vec![0; q],
            available_total: 0,
            verifier: DeliveryVerifier::new(q),
            stats: BufferStats::default(),
            cfg,
        }
    }

    /// The configuration this buffer was built from.
    pub fn config(&self) -> &RadsConfig {
        &self.cfg
    }

    /// Preloads `cells` of `queue` directly into the DRAM, bypassing the tail
    /// path. Cells are stored in blocks of `B`; a trailing partial block is
    /// rejected to keep the block structure exact.
    ///
    /// # Panics
    ///
    /// Panics if the number of cells is not a multiple of the granularity.
    // By-value keeps the ~18 call sites moving their staging Vec straight in;
    // this is a setup-only path, so the extra copy inside is irrelevant.
    #[allow(clippy::needless_pass_by_value)]
    pub fn preload_dram(&mut self, queue: LogicalQueueId, cells: Vec<Cell>) {
        let b = self.cfg.granularity;
        assert!(
            cells.len().is_multiple_of(b),
            "preload length must be a multiple of the granularity"
        );
        self.available[queue.as_usize()] += cells.len() as u64;
        self.available_total += cells.len() as u64;
        let physical = PhysicalQueueId::new(queue.index());
        for chunk in cells.chunks(b) {
            self.dram
                .write_block(physical, chunk.to_vec())
                .expect("unbounded RADS DRAM accepts preload");
        }
    }

    /// Peak head-SRAM occupancy observed so far (cells).
    pub fn peak_head_sram(&self) -> usize {
        self.head_sram.peak_occupancy()
    }

    /// Analytical head-SRAM requirement for this configuration (cells).
    pub fn analytical_head_sram(&self) -> usize {
        rads_sram_size_cells(
            self.cfg.effective_lookahead(),
            self.cfg.num_queues,
            self.cfg.granularity,
        )
    }

    #[inline]
    fn deliver_due(&mut self, now: u64) {
        while self
            .pending_deliveries
            .front()
            .is_some_and(|front| front.deliver_slot <= now)
        {
            let Some(d) = self.pending_deliveries.pop_front() else {
                break;
            };
            self.head_sram
                .insert_block_cells(d.queue, d.block_index, &d.cells)
                .expect("head SRAM is functionally unbounded"); // analyze: allow(panic-freedom) — the head SRAM is configured functionally unbounded; occupancy is measured, not capped
            self.pool.put(d.cells);
            self.stats.peak_head_sram_cells = self
                .stats
                .peak_head_sram_cells
                .max(self.head_sram.occupancy() as u64);
        }
    }

    #[inline]
    fn dram_period_ops(&mut self, now: u64) {
        let b = self.cfg.granularity;
        // Writeback: tail SRAM → DRAM (occupancies are maintained by the
        // arena — nothing to collect). The arena tracks threshold crossings,
        // so the scan is skipped whenever no queue holds a full batch.
        let writeback = if self.tail.any_eligible() {
            self.tail_mma
                .select_masked(self.tail.occupancies(), self.tail.eligible_words())
        } else {
            None
        };
        if let Some(queue) = writeback {
            let qi = queue.as_usize();
            let mut cells = self.pool.take(b);
            self.tail.pop_block_into(queue, b, &mut cells);
            let physical = PhysicalQueueId::new(queue.index());
            self.dram
                .write_block(physical, cells)
                .expect("unbounded RADS DRAM accepts writebacks"); // analyze: allow(panic-freedom) — the RADS DRAM is configured unbounded and always accepts writebacks
            self.available[qi] += b as u64;
            self.available_total += b as u64;
            self.stats.dram_writes += 1;
        }
        // Replenishment: DRAM → head SRAM, delivered one random access time
        // later.
        if let Some(queue) = self.head_mma.select_replenishment() {
            let physical = PhysicalQueueId::new(queue.index());
            match self.dram.read_block(physical) {
                Ok((_, cells)) => {
                    let qi = queue.as_usize();
                    let block_index = self.head_block_seq[qi];
                    self.head_block_seq[qi] += 1;
                    self.pending_deliveries.push_back(PendingDelivery {
                        deliver_slot: now + b as u64,
                        queue,
                        block_index,
                        cells,
                    });
                    self.stats.dram_reads += 1;
                }
                Err(_) => {
                    // The selected queue has nothing in DRAM (its cells are
                    // still on the tail path): roll the credit back.
                    self.head_mma.preload(queue, -(b as i64));
                    self.stats.unfulfilled_replenishments += 1;
                }
            }
        }
    }
}

impl PacketBuffer for RadsBuffer {
    fn step(&mut self, arrival: Option<Cell>, request: Option<LogicalQueueId>) -> SlotOutcome {
        let now = self.slot;
        self.slot += 1;
        self.stats.slots += 1;
        let mut outcome = SlotOutcome::default();

        // 1. Blocks whose DRAM access completed this slot reach the head SRAM.
        self.deliver_due(now);

        // 2. One cell may arrive from the line into the tail SRAM.
        if let Some(cell) = arrival {
            if self.tail.len() < self.tail_capacity {
                self.tail.push(cell);
                self.stats.peak_tail_sram_cells =
                    self.stats.peak_tail_sram_cells.max(self.tail.len() as u64);
                self.stats.arrivals += 1;
            } else {
                self.stats.drops += 1;
                outcome.dropped_arrival = Some(cell);
            }
        }

        // 3. One request may arrive from the arbiter; it enters the lookahead
        //    and the request that leaves the lookahead (if any) is served at
        //    the end of the slot.
        let mut due = None;
        if let Some(queue) = request {
            self.stats.requests += 1;
            let qi = queue.as_usize();
            if self.available[qi] > 0 {
                self.available[qi] -= 1;
                self.available_total -= 1;
            }
            due = self.head_mma.on_request(Some(queue)).due;
        } else {
            due = self.head_mma.on_request(None).due.or(due);
        }

        // 4. Every B slots the DRAM performs one write and one read access.
        if self.until_period == 0 {
            self.until_period = self.cfg.granularity as u64;
            self.dram_period_ops(now);
        }
        self.until_period -= 1;

        // 5. Serve the due request from the head SRAM.
        if let Some(queue) = due {
            match self.head_sram.pop_front(queue) {
                Some(cell) => {
                    if !self.verifier.check(queue, &cell) {
                        self.stats.order_violations += 1;
                    }
                    self.stats.grants += 1;
                    outcome.granted = Some(cell);
                }
                None => {
                    self.stats.misses += 1;
                    outcome.miss = Some(queue);
                }
            }
        }
        outcome
    }

    fn current_slot(&self) -> u64 {
        self.slot
    }

    fn num_queues(&self) -> usize {
        self.cfg.num_queues
    }

    fn requestable_cells(&self, queue: LogicalQueueId) -> u64 {
        self.available[queue.as_usize()]
    }

    fn pipeline_delay_slots(&self) -> usize {
        self.cfg.effective_lookahead()
    }

    fn stats(&self) -> &BufferStats {
        &self.stats
    }

    fn design_name(&self) -> &'static str {
        "RADS"
    }

    /// Fused batch loop: same slot sequence as [`RadsBuffer::step`], with the
    /// per-slot invariants (granularity, the availability slice backing the
    /// request oracle) hoisted out of the loop and no `SlotOutcome`
    /// materialised per slot.
    fn step_batch<R: RequestSource>(
        &mut self,
        arrivals: &mut [Option<Cell>],
        requests: &mut R,
        grants: &mut GrantSink,
    ) -> BatchReport {
        let b = self.cfg.granularity as u64;
        let skippable = requests.idle_skippable();
        let mut report = BatchReport::default();
        // Slot-grained counters live in locals for the whole batch: the calls
        // into the delivery/period machinery take `&mut self`, which would
        // otherwise force every per-slot counter through memory each
        // iteration. Flushed once after the loop.
        let mut now = self.slot;
        let mut until_period = self.until_period;
        let mut delta = BufferStats::default();
        let mut peak_tail = self.stats.peak_tail_sram_cells;
        for arrival in arrivals.iter_mut() {
            // The closed-loop request probe comes first, exactly as in the
            // per-slot engine (the oracle observes the availability as of the
            // end of the previous slot); it is the availability array itself,
            // so the generator's scan is direct loads.
            // When nothing is requestable anywhere, a skippable generator's
            // Q-probe scan is provably fruitless and side-effect-free — skip
            // it on the O(1) total instead.
            let request = if skippable && self.available_total == 0 {
                None
            } else {
                let available = &self.available;
                requests.next_request(now, &|q: LogicalQueueId| available[q.as_usize()])
            };
            report.note(request.is_some());

            // 1. Due deliveries reach the head SRAM.
            if !self.pending_deliveries.is_empty() {
                self.deliver_due(now);
            }

            // 2. Arrival into the tail SRAM.
            if let Some(cell) = arrival.take() {
                if self.tail.len() < self.tail_capacity {
                    self.tail.push(cell);
                    peak_tail = peak_tail.max(self.tail.len() as u64);
                    delta.arrivals += 1;
                } else {
                    delta.drops += 1;
                }
            }

            // 3. The request enters the head MMA.
            let due = if let Some(queue) = request {
                delta.requests += 1;
                let qi = queue.as_usize();
                if self.available[qi] > 0 {
                    self.available[qi] -= 1;
                    self.available_total -= 1;
                }
                self.head_mma.on_request(Some(queue)).due
            } else {
                self.head_mma.on_request(None).due
            };

            // 4. DRAM period ops every B slots.
            if until_period == 0 {
                until_period = b;
                self.dram_period_ops(now);
            }
            until_period -= 1;

            // 5. Serve the due request.
            if let Some(queue) = due {
                match self.head_sram.pop_front(queue) {
                    Some(cell) => {
                        if !self.verifier.check(queue, &cell) {
                            delta.order_violations += 1;
                        }
                        delta.grants += 1;
                        grants.push(queue.index());
                    }
                    None => {
                        delta.misses += 1;
                    }
                }
            }
            now += 1;
        }
        self.slot = now;
        self.until_period = until_period;
        self.stats.slots += arrivals.len() as u64;
        self.stats.peak_tail_sram_cells = peak_tail;
        self.stats.arrivals += delta.arrivals;
        self.stats.drops += delta.drops;
        self.stats.requests += delta.requests;
        self.stats.grants += delta.grants;
        self.stats.misses += delta.misses;
        self.stats.order_violations += delta.order_violations;
        report
    }

    fn advance_idle(&mut self, slots: u64) {
        if slots == 0 {
            return;
        }
        if !self.is_quiescent() {
            for _ in 0..slots {
                self.step(None, None);
            }
            return;
        }
        // Quiescent: every skipped slot would only rotate the (all-idle)
        // lookahead, count down the period, and — at period boundaries — run
        // `dram_period_ops` with nothing eligible to write back and nothing
        // critical to replenish (ECQF selects `None` with an empty pending
        // set). All of that is pure counter/cursor motion, applied here
        // arithmetically.
        self.slot += slots;
        self.stats.slots += slots;
        self.head_mma.advance_idle(slots);
        self.until_period = countdown_after(self.until_period, slots, self.cfg.granularity as u64);
    }

    fn is_quiescent(&self) -> bool {
        self.pending_deliveries.is_empty()
            && !self.tail.any_eligible()
            && self.head_mma.lookahead().pending_len() == 0
    }

    fn requestable_total(&self) -> u64 {
        self.available_total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pktbuf_model::{DramTiming, LineRate};

    fn small_cfg(q: usize, b: usize) -> RadsConfig {
        RadsConfig {
            line_rate: LineRate::Oc3072,
            num_queues: q,
            granularity: b,
            lookahead: None,
            dram: DramTiming::paper_design_point(),
        }
    }

    fn lq(i: u32) -> LogicalQueueId {
        LogicalQueueId::new(i)
    }

    fn preload_all(buf: &mut RadsBuffer, q: usize, cells_per_queue: u64) {
        for i in 0..q as u32 {
            let cells: Vec<Cell> = (0..cells_per_queue)
                .map(|s| Cell::new(lq(i), s, 0))
                .collect();
            buf.preload_dram(lq(i), cells);
        }
    }

    /// The paper's worst case: round-robin requests over all (backlogged)
    /// queues must never miss with the ECQF lookahead.
    #[test]
    fn round_robin_drain_never_misses() {
        let q = 8;
        let b = 4;
        let mut buf = RadsBuffer::new(small_cfg(q, b));
        preload_all(&mut buf, q, 64);
        let total_requests = 8 * 64u64;
        let delay = buf.pipeline_delay_slots() as u64;
        let mut issued = 0u64;
        for t in 0..(total_requests + delay + 10) {
            let req = if issued < total_requests {
                let queue = lq((t % q as u64) as u32);
                if buf.requestable_cells(queue) > 0 {
                    issued += 1;
                    Some(queue)
                } else {
                    None
                }
            } else {
                None
            };
            let out = buf.step(None, req);
            assert!(out.miss.is_none(), "miss at slot {t}");
        }
        assert_eq!(buf.stats().misses, 0);
        assert_eq!(buf.stats().order_violations, 0);
        assert_eq!(buf.stats().grants, total_requests);
        // The measured SRAM peak respects the analytical bound (plus the
        // in-flight batch).
        assert!(
            buf.peak_head_sram() <= buf.analytical_head_sram() + b,
            "peak {} vs analytical {}",
            buf.peak_head_sram(),
            buf.analytical_head_sram()
        );
    }

    #[test]
    fn single_queue_burst_is_served_in_order() {
        let q = 4;
        let b = 4;
        let mut buf = RadsBuffer::new(small_cfg(q, b));
        preload_all(&mut buf, q, 32);
        let delay = buf.pipeline_delay_slots() as u64;
        let mut issued = 0u64;
        for _ in 0..(32 + delay + 10) {
            let req = if issued < 32 && buf.requestable_cells(lq(2)) > 0 {
                issued += 1;
                Some(lq(2))
            } else {
                None
            };
            let out = buf.step(None, req);
            assert!(out.miss.is_none());
            if let Some(cell) = &out.granted {
                assert_eq!(cell.queue(), lq(2));
            }
        }
        assert_eq!(buf.stats().grants, 32);
        assert!(buf.stats().is_loss_free());
    }

    #[test]
    fn arrivals_flow_line_to_dram_to_arbiter() {
        let q = 2;
        let b = 2;
        let mut buf = RadsBuffer::new(small_cfg(q, b));
        // Feed 16 cells to queue 0 through the tail path (seq follows the
        // arrival slot one-to-one here).
        for t in 0..16u64 {
            let cell = Cell::new(lq(0), t, t);
            buf.step(Some(cell), None);
        }
        // Let the tail MMA push everything to DRAM.
        for _ in 0..((16 / b as u64 + 2) * b as u64) {
            buf.step(None, None);
        }
        assert!(buf.requestable_cells(lq(0)) >= 8, "cells reached DRAM");
        // Now request them; none may miss.
        let delay = buf.pipeline_delay_slots() as u64;
        let requests = buf.requestable_cells(lq(0));
        let mut issued = 0;
        for _ in 0..(requests + delay + 5 * b as u64) {
            let req = if issued < requests {
                issued += 1;
                Some(lq(0))
            } else {
                None
            };
            let out = buf.step(None, req);
            assert!(out.miss.is_none());
        }
        assert_eq!(buf.stats().grants, requests);
        assert_eq!(buf.stats().drops, 0);
        assert_eq!(buf.stats().order_violations, 0);
    }

    #[test]
    fn linked_list_head_sram_behaves_identically() {
        let q = 4;
        let b = 4;
        let mut cam = RadsBuffer::with_head_sram(small_cfg(q, b), HeadSramKind::GlobalCam);
        let mut lll = RadsBuffer::with_head_sram(small_cfg(q, b), HeadSramKind::UnifiedLinkedList);
        for buf in [&mut cam, &mut lll] {
            preload_all(buf, q, 16);
        }
        let delay = cam.pipeline_delay_slots() as u64;
        for t in 0..(q as u64 * 16 + delay + 10) {
            let queue = lq((t % q as u64) as u32);
            let req_cam = if cam.requestable_cells(queue) > 0 {
                Some(queue)
            } else {
                None
            };
            let out_a = cam.step(None, req_cam);
            let out_b = lll.step(None, req_cam);
            assert_eq!(out_a.granted, out_b.granted, "slot {t}");
            assert!(out_a.miss.is_none() && out_b.miss.is_none());
        }
        assert_eq!(cam.stats().grants, lll.stats().grants);
    }

    #[test]
    fn config_accessors() {
        let buf = RadsBuffer::new(small_cfg(4, 4));
        assert_eq!(buf.config().num_queues, 4);
        assert_eq!(buf.design_name(), "RADS");
        assert_eq!(buf.num_queues(), 4);
        assert!(format!("{buf:?}").contains("RadsBuffer"));
    }

    #[test]
    #[should_panic(expected = "multiple of the granularity")]
    fn preload_must_be_block_aligned() {
        let mut buf = RadsBuffer::new(small_cfg(4, 4));
        buf.preload_dram(lq(0), vec![Cell::new(lq(0), 0, 0)]);
    }
}
