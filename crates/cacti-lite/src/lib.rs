//! `cacti-lite`: a self-contained analytical model of SRAM and CAM access time
//! and silicon area, in the spirit of CACTI 3.0.
//!
//! The paper evaluates its SRAM buffer designs (global CAM vs. unified linked
//! list) with CACTI 3.0 at a 0.13 µm process. CACTI itself is a large C tool
//! that we cannot ship, so this crate re-implements the *decomposition* CACTI
//! uses — decoder → wordline → bitline/sense-amplifier → output path, plus an
//! area model built from cell geometry and port count — with constants
//! calibrated to published 0.13 µm figures. Absolute numbers are therefore
//! model-dependent; what the reproduction relies on (and what the tests check)
//! is the *shape*: access time and area grow with capacity and port count, CAM
//! search is faster than a serialised linked-list walk but pays a large area
//! premium, and megabyte-class multi-ported SRAMs cannot meet a 3.2 ns access
//! target at 0.13 µm while ~100 kB ones can.
//!
//! # Example
//!
//! ```
//! use cacti_lite::{ProcessNode, SramOrganization, estimate_sram};
//!
//! let node = ProcessNode::node_130nm();
//! let small = SramOrganization::new(64 * 1024, 64).with_ports(1, 1);
//! let large = SramOrganization::new(4 * 1024 * 1024, 64).with_ports(1, 1);
//! let e_small = estimate_sram(&small, &node);
//! let e_large = estimate_sram(&large, &node);
//! assert!(e_small.access_time_ns < e_large.access_time_ns);
//! assert!(e_small.area_cm2 < e_large.area_cm2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod cam;
mod geometry;
mod process;
mod sram;

pub use cam::{estimate_cam, CamOrganization};
pub use geometry::{ArrayPartition, MemoryEstimate};
pub use process::ProcessNode;
pub use sram::{estimate_sram, SramOrganization};
