//! Content-addressable memory (CAM) estimation.
//!
//! The "global CAM" h-SRAM organisation of §7.1 stores every cell together
//! with a tag (queue identifier + relative order) and resolves a scheduler
//! request by searching all tags in parallel. Compared to a direct-mapped
//! SRAM, a CAM pays: (i) a much larger storage cell for the tag bits (storage
//! plus comparator), and (ii) a search phase — driving the search lines and
//! resolving the match lines and priority encoder — before the matched data
//! row can be read out. It avoids, however, the serialized pointer-chasing of
//! a linked-list organisation.

use crate::geometry::{ArrayPartition, MemoryEstimate};
use crate::process::ProcessNode;
use crate::sram::{estimate_sram, SramOrganization};
use serde::{Deserialize, Serialize};

/// Organisation of a CAM-tagged cell store.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CamOrganization {
    /// Number of entries (cells stored).
    pub entries: u64,
    /// Payload bits per entry (the 64-byte cell).
    pub data_bits: u32,
    /// Tag bits searched associatively (queue id + intra-queue order).
    pub tag_bits: u32,
    /// Read ports on the data array.
    pub read_ports: u32,
    /// Write ports on the data array.
    pub write_ports: u32,
}

impl CamOrganization {
    /// Creates a CAM with one read and one write port.
    pub fn new(entries: u64, data_bits: u32, tag_bits: u32) -> Self {
        CamOrganization {
            entries,
            data_bits,
            tag_bits,
            read_ports: 1,
            write_ports: 1,
        }
    }

    /// Sets the port counts.
    pub fn with_ports(mut self, read: u32, write: u32) -> Self {
        self.read_ports = read;
        self.write_ports = write;
        self
    }
}

/// Estimates the search+read access time and area of a global CAM.
pub fn estimate_cam(org: &CamOrganization, node: &ProcessNode) -> MemoryEstimate {
    let entries = org.entries.max(16);
    let ports = (org.read_ports + org.write_ports).max(1);
    let pitch = node.port_scale(ports);

    // --- Tag (search) array -------------------------------------------------
    // Match lines run across the tag bits of one entry; search lines run down
    // all entries. Entries are banked into sub-blocks of at most 1024 to keep
    // the search lines manageable (as real ternary CAM macros do).
    let block_entries = entries.min(1024) as f64;
    let num_blocks = (entries as f64 / block_entries).ceil();
    let cam_cell_side = node.cam_cell_um2.sqrt() * pitch;
    let matchline_len = cam_cell_side * org.tag_bits as f64;
    let searchline_len = cam_cell_side * block_entries;

    let t_search_drive = node.wire_delay_ns(searchline_len) + node.fo4_ns * 3.0;
    let t_matchline =
        node.wire_delay_ns(matchline_len) + 0.0015 * org.tag_bits as f64 + node.sense_amp_ns;
    // Priority encoder over all entries (hierarchical).
    let t_encoder = node.fo4_ns * (entries as f64).log2().ceil() * 0.8;
    // Routing across blocks: H-tree over the tag-array footprint.
    let tag_array_side = (num_blocks * matchline_len * searchline_len).sqrt();
    let t_block_route = node.wire_delay_ns(tag_array_side / 2.0);

    // --- Data array ----------------------------------------------------------
    // Once the matching row is known, the payload is read from an SRAM-like
    // data array of the same entry count.
    let data = estimate_sram(
        &SramOrganization::new(entries * org.data_bits as u64 / 8, org.data_bits / 8)
            .with_ports(org.read_ports, org.write_ports),
        node,
    );
    // The data read overlaps partially with the encoder; charge half of it.
    let t_data = 0.5 * data.access_time_ns;

    let access = t_search_drive + t_matchline + t_encoder + t_block_route + t_data + node.output_ns;

    // --- Area ----------------------------------------------------------------
    let tag_area_um2 = entries as f64
        * org.tag_bits as f64
        * node.cam_cell_um2
        * pitch
        * pitch
        * node.periphery_overhead;
    let area =
        tag_area_um2 * 1e-8 + data.area_cm2 * (node.cam_cell_um2 / node.sram_cell_um2).sqrt();

    MemoryEstimate {
        access_time_ns: access,
        cycle_time_ns: access * 1.25,
        area_cm2: area,
        partition: ArrayPartition {
            subarrays: num_blocks as u32,
            rows: block_entries as u32,
            cols: org.tag_bits + org.data_bits,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cam(entries: u64) -> MemoryEstimate {
        estimate_cam(
            &CamOrganization::new(entries, 512, 32).with_ports(1, 1),
            &ProcessNode::node_130nm(),
        )
    }

    fn sram_same_capacity(entries: u64) -> MemoryEstimate {
        estimate_sram(
            &SramOrganization::new(entries * 64, 64).with_ports(1, 1),
            &ProcessNode::node_130nm(),
        )
    }

    #[test]
    fn cam_access_time_grows_with_entries() {
        let mut last = 0.0;
        for e in [1u64 << 10, 1 << 12, 1 << 14, 1 << 16, 1 << 17] {
            let est = cam(e);
            assert!(est.access_time_ns > last);
            last = est.access_time_ns;
        }
    }

    #[test]
    fn cam_area_exceeds_plain_sram_of_same_payload() {
        for e in [1u64 << 12, 1 << 15] {
            assert!(cam(e).area_cm2 > sram_same_capacity(e).area_cm2);
        }
    }

    #[test]
    fn cam_single_access_is_faster_than_three_serialized_sram_accesses() {
        // The unified linked list needs up to three serialised accesses when
        // time-multiplexed onto one port; a CAM resolves a request in one
        // search+read. For the large OC-3072 buffers the CAM comes out faster.
        for e in [1u64 << 14, 1 << 16] {
            let c = cam(e);
            let s = sram_same_capacity(e);
            assert!(
                c.access_time_ns < 3.0 * s.access_time_ns,
                "cam {} vs 3x sram {}",
                c.access_time_ns,
                3.0 * s.access_time_ns
            );
        }
    }

    #[test]
    fn tag_width_increases_cost() {
        let node = ProcessNode::node_130nm();
        let narrow = estimate_cam(&CamOrganization::new(1 << 14, 512, 16), &node);
        let wide = estimate_cam(&CamOrganization::new(1 << 14, 512, 48), &node);
        assert!(wide.area_cm2 > narrow.area_cm2);
        assert!(wide.access_time_ns >= narrow.access_time_ns);
    }

    #[test]
    fn ports_increase_cam_cost() {
        let node = ProcessNode::node_130nm();
        let one = estimate_cam(
            &CamOrganization::new(1 << 14, 512, 32).with_ports(1, 1),
            &node,
        );
        let two = estimate_cam(
            &CamOrganization::new(1 << 14, 512, 32).with_ports(2, 2),
            &node,
        );
        assert!(two.area_cm2 > one.area_cm2);
        assert!(two.access_time_ns >= one.access_time_ns);
    }
}
