//! Technology/process parameters.

use serde::{Deserialize, Serialize};

/// Electrical and geometric parameters of a CMOS process node.
///
/// Only the quantities the delay/area model needs are captured. The 0.13 µm
/// values are calibrated against published CACTI 3.0 runs and datasheets of
/// contemporary (2003) embedded SRAM macros.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ProcessNode {
    /// Drawn feature size in micrometres.
    pub feature_um: f64,
    /// Fan-out-of-4 inverter delay in nanoseconds.
    pub fo4_ns: f64,
    /// Area of a single-port 6T SRAM cell in µm².
    pub sram_cell_um2: f64,
    /// Area of a ternary-capable CAM cell (storage + compare) in µm².
    pub cam_cell_um2: f64,
    /// Wire resistance in Ω per µm (intermediate metal layer).
    pub wire_r_ohm_per_um: f64,
    /// Wire capacitance in fF per µm (intermediate metal layer).
    pub wire_c_ff_per_um: f64,
    /// Delay of a sense amplifier in nanoseconds.
    pub sense_amp_ns: f64,
    /// Fixed output-driver / latch delay in nanoseconds.
    pub output_ns: f64,
    /// Relative pitch growth per additional port (wordline + bitline pair per
    /// extra port): effective cell side scales by `1 + port_pitch × (ports-1)`.
    pub port_pitch: f64,
    /// Area overhead factor for decoders, sense amplifiers, and routing.
    pub periphery_overhead: f64,
}

impl ProcessNode {
    /// The 0.13 µm node used throughout the paper's evaluation.
    pub fn node_130nm() -> Self {
        ProcessNode {
            feature_um: 0.13,
            fo4_ns: 0.065,
            sram_cell_um2: 2.45,
            cam_cell_um2: 5.90,
            wire_r_ohm_per_um: 0.42,
            wire_c_ff_per_um: 0.30,
            sense_amp_ns: 0.28,
            output_ns: 0.25,
            port_pitch: 0.45,
            periphery_overhead: 1.35,
        }
    }

    /// A hypothetical scaled node (feature size in µm); delays and areas scale
    /// with classical constant-field rules. Useful for "what would it take"
    /// sensitivity studies beyond the paper.
    pub fn scaled(feature_um: f64) -> Self {
        let base = ProcessNode::node_130nm();
        let s = feature_um / base.feature_um;
        ProcessNode {
            feature_um,
            fo4_ns: base.fo4_ns * s,
            sram_cell_um2: base.sram_cell_um2 * s * s,
            cam_cell_um2: base.cam_cell_um2 * s * s,
            wire_r_ohm_per_um: base.wire_r_ohm_per_um / s,
            wire_c_ff_per_um: base.wire_c_ff_per_um,
            sense_amp_ns: base.sense_amp_ns * s,
            output_ns: base.output_ns * s,
            ..base
        }
    }

    /// Effective side-length multiplier of a storage cell with `ports` ports.
    pub fn port_scale(&self, ports: u32) -> f64 {
        1.0 + self.port_pitch * (ports.saturating_sub(1)) as f64
    }

    /// Wire RC delay (ns) of a wire of `length_um` micrometres, using the
    /// distributed-RC 0.38 factor.
    pub fn wire_delay_ns(&self, length_um: f64) -> f64 {
        let r = self.wire_r_ohm_per_um * length_um;
        let c = self.wire_c_ff_per_um * length_um * 1e-15;
        0.38 * r * c * 1e9
    }
}

impl Default for ProcessNode {
    fn default() -> Self {
        ProcessNode::node_130nm()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_130nm_sanity() {
        let n = ProcessNode::node_130nm();
        assert!(n.fo4_ns > 0.03 && n.fo4_ns < 0.15);
        assert!(n.sram_cell_um2 > 1.0 && n.sram_cell_um2 < 5.0);
        assert!(n.cam_cell_um2 > n.sram_cell_um2);
        assert_eq!(ProcessNode::default(), n);
    }

    #[test]
    fn port_scale_grows_with_ports() {
        let n = ProcessNode::node_130nm();
        assert!((n.port_scale(1) - 1.0).abs() < 1e-12);
        assert!(n.port_scale(2) > n.port_scale(1));
        assert!(n.port_scale(3) > n.port_scale(2));
    }

    #[test]
    fn wire_delay_is_quadratic_in_length() {
        let n = ProcessNode::node_130nm();
        let d1 = n.wire_delay_ns(1000.0);
        let d2 = n.wire_delay_ns(2000.0);
        assert!(d2 / d1 > 3.9 && d2 / d1 < 4.1);
    }

    #[test]
    fn scaled_node_is_faster_and_denser() {
        let n90 = ProcessNode::scaled(0.09);
        let n130 = ProcessNode::node_130nm();
        assert!(n90.fo4_ns < n130.fo4_ns);
        assert!(n90.sram_cell_um2 < n130.sram_cell_um2);
        assert!(n90.wire_r_ohm_per_um > n130.wire_r_ohm_per_um);
    }
}
