//! Direct-mapped SRAM timing and area estimation.

use crate::geometry::{candidate_partitions, ArrayPartition, MemoryEstimate};
use crate::process::ProcessNode;
use serde::{Deserialize, Serialize};

/// Logical organisation of an SRAM macro to be estimated.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SramOrganization {
    /// Total capacity in bytes.
    pub capacity_bytes: u64,
    /// Word (access) width in bytes.
    pub word_bytes: u32,
    /// Number of read ports.
    pub read_ports: u32,
    /// Number of write ports.
    pub write_ports: u32,
}

impl SramOrganization {
    /// Creates a single-read/single-write-port organisation.
    pub fn new(capacity_bytes: u64, word_bytes: u32) -> Self {
        SramOrganization {
            capacity_bytes,
            word_bytes,
            read_ports: 1,
            write_ports: 1,
        }
    }

    /// Sets the port counts.
    pub fn with_ports(mut self, read: u32, write: u32) -> Self {
        self.read_ports = read;
        self.write_ports = write;
        self
    }

    /// Total number of ports.
    pub fn total_ports(&self) -> u32 {
        (self.read_ports + self.write_ports).max(1)
    }

    /// Total bits stored.
    pub fn total_bits(&self) -> u64 {
        self.capacity_bytes * 8
    }
}

fn delay_for_partition(org: &SramOrganization, node: &ProcessNode, p: &ArrayPartition) -> f64 {
    let ports = org.total_ports();
    let pitch = node.port_scale(ports);
    // Physical dimensions of one sub-array (µm). A 6T cell is roughly square.
    let cell_side = node.sram_cell_um2.sqrt() * pitch;
    let subarray_width = cell_side * p.cols as f64;
    let subarray_height = cell_side * p.rows as f64;

    // Decoder: a gate chain of depth log2(rows) plus predecode.
    let decode_levels = (p.rows as f64).log2().ceil().max(1.0);
    let t_decode = node.fo4_ns * (2.0 + 0.9 * decode_levels);

    // Wordline: distributed RC across the sub-array width plus driver.
    let t_wordline = node.wire_delay_ns(subarray_width) + node.fo4_ns * 2.0;

    // Bitline: discharge along the sub-array height (dominated by wire +
    // cell loading), then the sense amplifier.
    let t_bitline =
        node.wire_delay_ns(subarray_height) + 0.00045 * p.rows as f64 + node.sense_amp_ns;

    // Routing from the selected sub-array to the edge of the macro plus the
    // output multiplexer tree over the sub-arrays. The request travels down
    // the H-tree trunk and along a branch, which together span roughly the
    // full side of the macro footprint.
    let macro_side = (p.subarrays as f64 * subarray_width * subarray_height).sqrt();
    let t_route = node.wire_delay_ns(macro_side * 0.9)
        + node.fo4_ns * (p.subarrays as f64).log2().max(0.0) * 0.6;

    t_decode + t_wordline + t_bitline + t_route + node.output_ns
}

fn area_for_partition(org: &SramOrganization, node: &ProcessNode, p: &ArrayPartition) -> f64 {
    let ports = org.total_ports();
    let pitch = node.port_scale(ports);
    let cell_area = node.sram_cell_um2 * pitch * pitch;
    // Charge the requested capacity (not the padded partition) so that area is
    // a property of the organisation; sub-array division adds decoder/sense
    // periphery per sub-array.
    let bits = org.total_bits() as f64;
    let periphery = node.periphery_overhead * (1.0 + 0.01 * (p.subarrays as f64).sqrt());
    bits * cell_area * periphery * 1e-8 // µm² → cm²
}

/// Estimates the access time, cycle time and area of an SRAM macro, choosing
/// the sub-array partition that minimises access time (ties broken by area).
///
/// The estimation mirrors the CACTI decomposition: decoder, wordline, bitline +
/// sense amplifier, sub-array routing and output drive.
pub fn estimate_sram(org: &SramOrganization, node: &ProcessNode) -> MemoryEstimate {
    let bits = org.total_bits().max(1024);
    let word_bits = org.word_bytes * 8;
    let mut best: Option<MemoryEstimate> = None;
    for p in candidate_partitions(bits, word_bits) {
        let t = delay_for_partition(org, node, &p);
        let a = area_for_partition(org, node, &p);
        let cand = MemoryEstimate {
            access_time_ns: t,
            cycle_time_ns: t * 1.25,
            area_cm2: a,
            partition: p,
        };
        let better = match &best {
            None => true,
            Some(b) => {
                cand.access_time_ns < b.access_time_ns - 1e-9
                    || ((cand.access_time_ns - b.access_time_ns).abs() < 1e-9
                        && cand.area_cm2 < b.area_cm2)
            }
        };
        if better {
            best = Some(cand);
        }
    }
    best.expect("candidate_partitions is never empty")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn est(bytes: u64, ports: (u32, u32)) -> MemoryEstimate {
        estimate_sram(
            &SramOrganization::new(bytes, 64).with_ports(ports.0, ports.1),
            &ProcessNode::node_130nm(),
        )
    }

    #[test]
    fn access_time_grows_with_capacity() {
        let sizes = [64 << 10, 256 << 10, 1 << 20, 4 << 20, 16 << 20];
        let mut last = 0.0;
        for s in sizes {
            let e = est(s, (1, 1));
            assert!(
                e.access_time_ns > last,
                "capacity {s}: {} !> {last}",
                e.access_time_ns
            );
            last = e.access_time_ns;
        }
    }

    #[test]
    fn area_grows_roughly_linearly_with_capacity() {
        let a1 = est(1 << 20, (1, 1)).area_cm2;
        let a4 = est(4 << 20, (1, 1)).area_cm2;
        assert!(a4 / a1 > 3.0 && a4 / a1 < 5.5, "ratio = {}", a4 / a1);
    }

    #[test]
    fn ports_cost_area_and_time() {
        let single = est(1 << 20, (1, 1));
        let dual = est(1 << 20, (2, 1));
        assert!(dual.area_cm2 > single.area_cm2);
        assert!(dual.access_time_ns >= single.access_time_ns);
    }

    #[test]
    fn calibration_smallish_sram_meets_oc768_and_fails_oc3072_when_huge() {
        // ~64 kB dual-ported: comfortably below the 12.8 ns OC-768 slot.
        let small = est(64 << 10, (1, 1));
        assert!(small.access_time_ns < 12.8, "{}", small.access_time_ns);
        // A 6 MB dual-ported SRAM cannot be read in 3.2 ns at 0.13 µm.
        let huge = est(6 << 20, (1, 1));
        assert!(huge.access_time_ns > 3.2, "{}", huge.access_time_ns);
    }

    #[test]
    fn calibration_oc3072_crossover_lies_between_cfds_and_rads_sizes() {
        // CFDS-class head SRAMs (a few hundred kB) stay at or below the
        // 3.2 ns OC-3072 slot, while RADS-class megabyte SRAMs exceed it —
        // the crossover the paper's Figures 10 and 11 rely on.
        let cfds_class = est(192 << 10, (1, 1));
        assert!(
            cfds_class.access_time_ns < 3.2,
            "{}",
            cfds_class.access_time_ns
        );
        let rads_class = est(1 << 20, (1, 1));
        assert!(
            rads_class.access_time_ns > 3.2,
            "{}",
            rads_class.access_time_ns
        );
    }

    #[test]
    fn megabyte_class_area_is_fraction_of_cm2_range() {
        let e = est(1 << 20, (1, 1));
        assert!(e.area_cm2 > 0.05 && e.area_cm2 < 1.0, "{}", e.area_cm2);
        let e = est(16 << 20, (1, 1));
        assert!(e.area_cm2 > 1.0, "{}", e.area_cm2);
    }

    #[test]
    fn cycle_time_exceeds_access_time() {
        let e = est(1 << 20, (1, 1));
        assert!(e.cycle_time_ns > e.access_time_ns);
        assert!(e.meets_access_target(e.access_time_ns + 0.01));
    }

    #[test]
    fn partition_covers_capacity() {
        let org = SramOrganization::new(3 << 20, 64).with_ports(1, 1);
        let e = estimate_sram(&org, &ProcessNode::node_130nm());
        assert!(e.partition.total_bits() >= org.total_bits());
        assert_eq!(org.total_ports(), 2);
    }
}
