//! Array partitioning and the shared estimate type.

use serde::{Deserialize, Serialize};

/// How a memory array is split into sub-arrays.
///
/// Mirrors CACTI's `Ndwl`/`Ndbl` exploration in a simplified form: the array is
/// cut into `subarrays` equal pieces, each `rows × cols` bits, all accessed in
/// parallel through a final output multiplexer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ArrayPartition {
    /// Number of identical sub-arrays.
    pub subarrays: u32,
    /// Rows per sub-array.
    pub rows: u32,
    /// Columns (bits) per sub-array row.
    pub cols: u32,
}

impl ArrayPartition {
    /// Total bits covered by the partition.
    pub fn total_bits(&self) -> u64 {
        self.subarrays as u64 * self.rows as u64 * self.cols as u64
    }
}

/// Result of an area/timing estimation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MemoryEstimate {
    /// Access (read) time in nanoseconds.
    pub access_time_ns: f64,
    /// Random cycle time in nanoseconds (access plus precharge/recovery).
    pub cycle_time_ns: f64,
    /// Silicon area in cm².
    pub area_cm2: f64,
    /// The partition that achieved this estimate.
    pub partition: ArrayPartition,
}

impl MemoryEstimate {
    /// Whether this memory meets an access-time target.
    pub fn meets_access_target(&self, target_ns: f64) -> bool {
        self.access_time_ns <= target_ns
    }
}

/// Enumerates candidate partitions of `bits` total bits into sub-arrays whose
/// row count is a power of two between 32 and 4096.
pub(crate) fn candidate_partitions(bits: u64, word_bits: u32) -> Vec<ArrayPartition> {
    let mut out = Vec::new();
    let word_bits = word_bits.max(1);
    for subarrays_log2 in 0..=8u32 {
        let subarrays = 1u32 << subarrays_log2;
        let bits_per_sub = bits.div_ceil(subarrays as u64);
        for rows_log2 in 5..=12u32 {
            let rows = 1u32 << rows_log2;
            let cols = bits_per_sub.div_ceil(rows as u64);
            if cols == 0 {
                continue;
            }
            // Keep columns a multiple of the word width so a whole word can be
            // read from one sub-array row.
            let cols = (cols as u32).div_ceil(word_bits) * word_bits;
            // Avoid grotesquely skewed sub-arrays.
            if cols > 65536 || (cols as u64) < word_bits as u64 {
                continue;
            }
            out.push(ArrayPartition {
                subarrays,
                rows,
                cols,
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partitions_cover_requested_bits() {
        let bits = 1 << 20;
        for p in candidate_partitions(bits, 512) {
            assert!(p.total_bits() >= bits, "{p:?} does not cover {bits} bits");
        }
    }

    #[test]
    fn partitions_are_nonempty_for_small_and_large() {
        assert!(!candidate_partitions(1 << 12, 64).is_empty());
        assert!(!candidate_partitions(1 << 28, 512).is_empty());
    }

    #[test]
    fn meets_access_target() {
        let e = MemoryEstimate {
            access_time_ns: 3.0,
            cycle_time_ns: 4.0,
            area_cm2: 0.1,
            partition: ArrayPartition {
                subarrays: 1,
                rows: 32,
                cols: 64,
            },
        };
        assert!(e.meets_access_target(3.2));
        assert!(!e.meets_access_target(2.9));
    }
}
