//! The abstract interface of a shared SRAM cell buffer.

use pktbuf_model::{Cell, LogicalQueueId};
use std::error::Error;
use std::fmt;

/// Errors raised by a [`SharedBuffer`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BufferError {
    /// The shared buffer has no free entry left.
    Full {
        /// Configured capacity in cells.
        capacity: usize,
    },
    /// A block was inserted twice for the same (queue, block ordinal).
    DuplicateBlock {
        /// Queue of the duplicate block.
        queue: LogicalQueueId,
        /// Ordinal of the duplicate block.
        ordinal: u64,
    },
    /// The queue index is outside the configured range.
    QueueOutOfRange {
        /// The offending queue.
        queue: LogicalQueueId,
        /// Number of configured queues.
        num_queues: usize,
    },
}

impl fmt::Display for BufferError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BufferError::Full { capacity } => {
                write!(f, "shared SRAM buffer full ({capacity} cells)")
            }
            BufferError::DuplicateBlock { queue, ordinal } => {
                write!(f, "duplicate block {ordinal} for {queue}")
            }
            BufferError::QueueOutOfRange { queue, num_queues } => {
                write!(f, "{queue} out of range ({num_queues} queues)")
            }
        }
    }
}

impl Error for BufferError {}

/// A shared SRAM buffer holding cells of many queues.
///
/// Blocks are inserted with their per-queue *block ordinal* so the buffer can
/// restore FIFO order even when the DRAM delivers blocks out of order (CFDS).
/// Single cells arriving from the line (tail SRAM use) are inserted with
/// [`SharedBuffer::push_cell`], which is equivalent to a one-cell block with
/// the next ordinal.
pub trait SharedBuffer {
    /// Inserts a block of cells belonging to `queue` with per-queue block
    /// ordinal `ordinal`. Blocks may arrive out of ordinal order; cells inside
    /// a block are in FIFO order.
    ///
    /// # Errors
    ///
    /// Returns [`BufferError::Full`] when the buffer has insufficient space,
    /// [`BufferError::DuplicateBlock`] if the ordinal was already inserted and
    /// not yet consumed, or [`BufferError::QueueOutOfRange`].
    fn insert_block(
        &mut self,
        queue: LogicalQueueId,
        ordinal: u64,
        cells: Vec<Cell>,
    ) -> Result<(), BufferError>;

    /// Slice-borrowing variant of [`SharedBuffer::insert_block`] for the
    /// allocation-free hot path: the caller keeps ownership of its block
    /// buffer (typically a pooled `Vec<Cell>`) and the implementation copies
    /// the cells into its own storage.
    ///
    /// The default implementation clones the slice into a fresh `Vec` and
    /// delegates; hot-path implementations override it to avoid the
    /// allocation.
    ///
    /// # Errors
    ///
    /// Same conditions as [`SharedBuffer::insert_block`].
    fn insert_block_cells(
        &mut self,
        queue: LogicalQueueId,
        ordinal: u64,
        cells: &[Cell],
    ) -> Result<(), BufferError> {
        self.insert_block(queue, ordinal, cells.to_vec())
    }

    /// Appends one cell at the tail of `queue` (in-order path).
    ///
    /// # Errors
    ///
    /// Same conditions as [`SharedBuffer::insert_block`].
    fn push_cell(&mut self, queue: LogicalQueueId, cell: Cell) -> Result<(), BufferError>;

    /// Removes and returns the cell at the head of `queue`, or `None` if the
    /// next-in-FIFO-order cell is not resident (a *miss* in MMA terms).
    fn pop_front(&mut self, queue: LogicalQueueId) -> Option<Cell>;

    /// Number of cells of `queue` that are resident *and* contiguous from the
    /// head (i.e. immediately available to the arbiter).
    fn available(&self, queue: LogicalQueueId) -> usize;

    /// Total number of resident cells (including out-of-order ones).
    fn occupancy(&self) -> usize;

    /// Configured capacity in cells.
    fn capacity(&self) -> usize;

    /// Largest occupancy ever observed (for dimensioning experiments).
    fn peak_occupancy(&self) -> usize;

    /// Number of configured queues.
    fn num_queues(&self) -> usize;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display() {
        assert!(BufferError::Full { capacity: 7 }.to_string().contains('7'));
        assert!(BufferError::DuplicateBlock {
            queue: LogicalQueueId::new(2),
            ordinal: 9
        }
        .to_string()
        .contains('9'));
        assert!(BufferError::QueueOutOfRange {
            queue: LogicalQueueId::new(8),
            num_queues: 4
        }
        .to_string()
        .contains("Ql8"));
    }
}
