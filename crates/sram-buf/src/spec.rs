//! Physical-implementation descriptors used to feed the technology model.

use serde::{Deserialize, Serialize};

/// The SRAM buffer organisations evaluated by the paper (§7.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SramImplKind {
    /// Fully associative store searched by (queue, order) tag. Fastest access,
    /// largest area.
    GlobalCam,
    /// Direct-mapped entries with next pointers, three structures accessed in
    /// parallel (dedicated ports). Larger area than time-multiplexed.
    UnifiedLinkedList,
    /// The same linked list with the three accesses serialised onto a single
    /// port (the paper's minimum-area design). Access *time* per operation is
    /// the sum of the serialised accesses.
    UnifiedLinkedListTimeMux,
}

impl SramImplKind {
    /// All organisations, in the order the paper plots them.
    pub fn all() -> [SramImplKind; 3] {
        [
            SramImplKind::GlobalCam,
            SramImplKind::UnifiedLinkedList,
            SramImplKind::UnifiedLinkedListTimeMux,
        ]
    }

    /// Human-readable name matching the figure legends.
    pub fn label(&self) -> &'static str {
        match self {
            SramImplKind::GlobalCam => "global CAM",
            SramImplKind::UnifiedLinkedList => "unified linked list",
            SramImplKind::UnifiedLinkedListTimeMux => "unified linked list (time-mux)",
        }
    }
}

/// Parameters describing the physical structure to estimate for a given
/// organisation and capacity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SramImplSpec {
    /// Organisation.
    pub kind: SramImplKind,
    /// Bits of payload per entry (the 64-byte cell).
    pub data_bits: u32,
    /// Bits of tag or pointer per entry.
    pub overhead_bits: u32,
    /// Read ports of the main array.
    pub read_ports: u32,
    /// Write ports of the main array.
    pub write_ports: u32,
    /// Number of array accesses serialised per buffer operation.
    pub serialized_accesses: u32,
}

impl SramImplSpec {
    /// Builds the descriptor for `kind` given the number of queues (tag width)
    /// and the number of entries (pointer width).
    pub fn for_kind(kind: SramImplKind, num_queues: usize, entries: usize) -> Self {
        let queue_bits = (num_queues.max(2) as f64).log2().ceil() as u32;
        let order_bits = (entries.max(2) as f64).log2().ceil() as u32;
        match kind {
            SramImplKind::GlobalCam => SramImplSpec {
                kind,
                data_bits: 512,
                overhead_bits: queue_bits + order_bits,
                read_ports: 1,
                write_ports: 1,
                serialized_accesses: 1,
            },
            SramImplKind::UnifiedLinkedList => SramImplSpec {
                kind,
                data_bits: 512,
                overhead_bits: order_bits,
                read_ports: 1,
                write_ports: 2,
                serialized_accesses: 1,
            },
            SramImplKind::UnifiedLinkedListTimeMux => SramImplSpec {
                kind,
                data_bits: 512,
                overhead_bits: order_bits,
                read_ports: 1,
                write_ports: 1,
                serialized_accesses: 3,
            },
        }
    }

    /// Total bits per entry.
    pub fn entry_bits(&self) -> u32 {
        self.data_bits + self.overhead_bits
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_and_all() {
        assert_eq!(SramImplKind::all().len(), 3);
        assert_eq!(SramImplKind::GlobalCam.label(), "global CAM");
        assert!(SramImplKind::UnifiedLinkedListTimeMux
            .label()
            .contains("time-mux"));
    }

    #[test]
    fn cam_spec_has_tag_bits() {
        let s = SramImplSpec::for_kind(SramImplKind::GlobalCam, 512, 16384);
        assert_eq!(s.data_bits, 512);
        assert_eq!(s.overhead_bits, 9 + 14);
        assert_eq!(s.serialized_accesses, 1);
        assert_eq!(s.entry_bits(), 512 + 23);
    }

    #[test]
    fn time_mux_serialises_three_accesses_on_one_port() {
        let s = SramImplSpec::for_kind(SramImplKind::UnifiedLinkedListTimeMux, 512, 16384);
        assert_eq!(s.serialized_accesses, 3);
        assert_eq!(s.read_ports + s.write_ports, 2);
        let parallel = SramImplSpec::for_kind(SramImplKind::UnifiedLinkedList, 512, 16384);
        assert_eq!(parallel.serialized_accesses, 1);
        assert!(parallel.write_ports > s.write_ports);
    }
}
