//! Functional models of the shared SRAM buffer organisations studied in §7.1
//! and §8.2 of the paper.
//!
//! The head and tail SRAMs are *shared* by all queues (a unified buffer leads
//! to smaller memories than per-queue partitions), which raises the question of
//! how to locate "the i-th cell of queue q" inside the shared array. The paper
//! studies two organisations:
//!
//! * [`GlobalCamBuffer`] — every cell is stored alongside a tag
//!   `(queue, order)`; a request searches all tags associatively. Out-of-order
//!   insertion (needed by CFDS, whose DRAM returns blocks out of order) is
//!   trivial because the order is part of the tag.
//! * [`UnifiedLinkedListBuffer`] — a direct-mapped array where each entry
//!   holds a cell and a next pointer, plus a head/tail pointer table per list.
//!   Out-of-order insertion is supported by keeping `B/b` *lanes* (sub-lists)
//!   per queue — consecutive blocks of a queue rotate over the lanes exactly
//!   like they rotate over the banks of a group, and two blocks that map to the
//!   same lane (same bank) are always delivered in order.
//!
//! Both implement [`SharedBuffer`], so the packet-buffer front ends in the
//! `pktbuf` crate are generic over the organisation.
//!
//! # Example
//!
//! ```
//! use pktbuf_model::{Cell, LogicalQueueId};
//! use sram_buf::{GlobalCamBuffer, SharedBuffer};
//!
//! let q = LogicalQueueId::new(3);
//! let mut buf = GlobalCamBuffer::with_block_size(8, 1024, 2);
//! buf.insert_block(q, 1, vec![Cell::new(q, 2, 0), Cell::new(q, 3, 0)]).unwrap();
//! buf.insert_block(q, 0, vec![Cell::new(q, 0, 0), Cell::new(q, 1, 0)]).unwrap();
//! // Cells come out in FIFO order even though block 1 arrived first.
//! assert_eq!(buf.pop_front(q).unwrap().seq(), 0);
//! assert_eq!(buf.pop_front(q).unwrap().seq(), 1);
//! assert_eq!(buf.pop_front(q).unwrap().seq(), 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod cam_buffer;
mod linked_list_buffer;
mod pointer_table;
mod spec;
mod traits;

pub use cam_buffer::GlobalCamBuffer;
pub use linked_list_buffer::UnifiedLinkedListBuffer;
pub use pointer_table::PointerTable;
pub use spec::{SramImplKind, SramImplSpec};
pub use traits::{BufferError, SharedBuffer};
