//! The unified linked-list shared buffer.

use crate::pointer_table::PointerTable;
use crate::traits::{BufferError, SharedBuffer};
use pktbuf_model::{Cell, LogicalQueueId};

/// One entry of the direct-mapped array: a cell plus a next pointer.
#[derive(Debug, Clone)]
struct Entry {
    cell: Cell,
    next: Option<u32>,
}

/// Direct-mapped shared buffer organised as linked lists.
///
/// Each queue owns `lanes` linked lists (the CFDS variant uses
/// `lanes = B/b`, one per bank of the queue's group, because blocks from the
/// same bank always arrive in order; RADS uses a single lane). A head/tail
/// [`PointerTable`] locates each list; free entries are kept on a free list.
#[derive(Debug, Clone)]
pub struct UnifiedLinkedListBuffer {
    entries: Vec<Option<Entry>>,
    free_head: Option<u32>,
    free_count: usize,
    pointers: PointerTable,
    lanes: usize,
    cells_per_block: usize,
    num_queues: usize,
    /// Lane from which the next pop of each queue must come, plus how many
    /// cells of the current block remain to be taken from that lane.
    pop_lane: Vec<usize>,
    pop_remaining: Vec<usize>,
    /// Lane that the next inserted in-order cell (push_cell) belongs to, plus
    /// how many cells of the current block have been pushed.
    push_lane: Vec<usize>,
    push_filled: Vec<usize>,
    occupancy: usize,
    peak: usize,
}

impl UnifiedLinkedListBuffer {
    /// Creates a single-lane buffer (RADS-style in-order arrivals).
    pub fn new(num_queues: usize, capacity: usize) -> Self {
        UnifiedLinkedListBuffer::with_lanes(num_queues, capacity, 1, 1)
    }

    /// Creates a buffer with `lanes` lists per queue and blocks of
    /// `cells_per_block` cells.
    pub fn with_lanes(
        num_queues: usize,
        capacity: usize,
        lanes: usize,
        cells_per_block: usize,
    ) -> Self {
        let lanes = lanes.max(1);
        let mut entries = Vec::with_capacity(capacity);
        entries.resize_with(capacity, || None);
        // Build the free list 0 → 1 → 2 → …
        let mut buf = UnifiedLinkedListBuffer {
            entries,
            free_head: None,
            free_count: 0,
            pointers: PointerTable::new(num_queues * lanes),
            lanes,
            cells_per_block: cells_per_block.max(1),
            num_queues,
            pop_lane: vec![0; num_queues],
            pop_remaining: vec![0; num_queues],
            push_lane: vec![0; num_queues],
            push_filled: vec![0; num_queues],
            occupancy: 0,
            peak: 0,
        };
        for i in (0..capacity).rev() {
            buf.entries[i] = None;
            buf.push_free(i as u32);
        }
        buf
    }

    fn push_free(&mut self, idx: u32) {
        self.entries[idx as usize] = Some(Entry {
            // A placeholder cell is never observed: the entry is overwritten
            // before being linked into a queue list.
            cell: Cell::new(LogicalQueueId::new(0), u64::MAX, 0),
            next: self.free_head,
        });
        self.free_head = Some(idx);
        self.free_count += 1;
    }

    fn pop_free(&mut self) -> Option<u32> {
        let idx = self.free_head?;
        let next = self.entries[idx as usize].as_ref().and_then(|e| e.next);
        self.free_head = next;
        self.free_count -= 1;
        Some(idx)
    }

    fn list_index(&self, queue: usize, lane: usize) -> usize {
        queue * self.lanes + lane
    }

    fn check_queue(&self, queue: LogicalQueueId) -> Result<usize, BufferError> {
        let idx = queue.as_usize();
        if idx >= self.num_queues {
            return Err(BufferError::QueueOutOfRange {
                queue,
                num_queues: self.num_queues,
            });
        }
        Ok(idx)
    }

    fn append_to_list(&mut self, list: usize, cell: Cell) -> Result<(), BufferError> {
        let idx = self.pop_free().ok_or(BufferError::Full {
            capacity: self.entries.len(),
        })?;
        self.entries[idx as usize] = Some(Entry { cell, next: None });
        if let Some(prev_tail) = self.pointers.push_tail(list, idx) {
            if let Some(e) = self.entries[prev_tail as usize].as_mut() {
                e.next = Some(idx);
            }
        }
        self.occupancy += 1;
        self.peak = self.peak.max(self.occupancy);
        Ok(())
    }

    fn pop_from_list(&mut self, list: usize) -> Option<Cell> {
        if self.pointers.is_empty(list) {
            return None;
        }
        let head = self.pointers.head(list).expect("non-empty list has a head");
        let entry = self.entries[head as usize]
            .take()
            .expect("head entry is occupied");
        self.pointers.pop_head(list, entry.next);
        self.push_free(head);
        self.occupancy -= 1;
        Some(entry.cell)
    }

    /// Number of lanes per queue.
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// Free entries remaining.
    pub fn free_entries(&self) -> usize {
        self.free_count
    }
}

impl SharedBuffer for UnifiedLinkedListBuffer {
    fn insert_block(
        &mut self,
        queue: LogicalQueueId,
        ordinal: u64,
        cells: Vec<Cell>,
    ) -> Result<(), BufferError> {
        let qi = self.check_queue(queue)?;
        if cells.len() > self.free_count {
            return Err(BufferError::Full {
                capacity: self.entries.len(),
            });
        }
        let lane = (ordinal % self.lanes as u64) as usize;
        let list = self.list_index(qi, lane);
        for cell in cells {
            self.append_to_list(list, cell)?;
        }
        Ok(())
    }

    fn push_cell(&mut self, queue: LogicalQueueId, cell: Cell) -> Result<(), BufferError> {
        let qi = self.check_queue(queue)?;
        if self.free_count == 0 {
            return Err(BufferError::Full {
                capacity: self.entries.len(),
            });
        }
        let lane = self.push_lane[qi];
        let list = self.list_index(qi, lane);
        self.append_to_list(list, cell)?;
        self.push_filled[qi] += 1;
        if self.push_filled[qi] == self.cells_per_block {
            self.push_filled[qi] = 0;
            self.push_lane[qi] = (lane + 1) % self.lanes;
        }
        Ok(())
    }

    fn pop_front(&mut self, queue: LogicalQueueId) -> Option<Cell> {
        let qi = self.check_queue(queue).ok()?;
        let lane = self.pop_lane[qi];
        let list = self.list_index(qi, lane);
        let cell = self.pop_from_list(list)?;
        if self.pop_remaining[qi] == 0 {
            self.pop_remaining[qi] = self.cells_per_block;
        }
        self.pop_remaining[qi] -= 1;
        if self.pop_remaining[qi] == 0 {
            self.pop_lane[qi] = (lane + 1) % self.lanes;
        }
        Some(cell)
    }

    fn available(&self, queue: LogicalQueueId) -> usize {
        let Ok(qi) = self.check_queue(queue) else {
            return 0;
        };
        // Walk the lanes in pop order, counting cells until a lane runs dry
        // before a full block was available.
        let mut total = 0usize;
        let mut lane = self.pop_lane[qi];
        let mut needed = if self.pop_remaining[qi] == 0 {
            self.cells_per_block
        } else {
            self.pop_remaining[qi]
        };
        for _ in 0..(self.lanes * 2).max(2) {
            let len = self.pointers.len(self.list_index(qi, lane));
            if len >= needed {
                total += needed;
                let leftover = len - needed;
                // Continue only if the lane held exactly one block boundary;
                // deeper look-ahead of later blocks in the same lane is not
                // needed for correctness of `available`, so count leftovers
                // conservatively when this is the only lane.
                if self.lanes == 1 {
                    total += leftover;
                    break;
                }
                lane = (lane + 1) % self.lanes;
                needed = self.cells_per_block;
            } else {
                total += len;
                break;
            }
        }
        total
    }

    fn occupancy(&self) -> usize {
        self.occupancy
    }

    fn capacity(&self) -> usize {
        self.entries.len()
    }

    fn peak_occupancy(&self) -> usize {
        self.peak
    }

    fn num_queues(&self) -> usize {
        self.num_queues
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cells(q: u32, start: u64, n: usize) -> Vec<Cell> {
        (0..n)
            .map(|i| Cell::new(LogicalQueueId::new(q), start + i as u64, 0))
            .collect()
    }

    #[test]
    fn single_lane_fifo() {
        let q = LogicalQueueId::new(0);
        let mut b = UnifiedLinkedListBuffer::new(2, 32);
        for i in 0..10 {
            b.push_cell(q, Cell::new(q, i, 0)).unwrap();
        }
        assert_eq!(b.available(q), 10);
        for i in 0..10 {
            assert_eq!(b.pop_front(q).unwrap().seq(), i);
        }
        assert!(b.pop_front(q).is_none());
        assert_eq!(b.free_entries(), 32);
    }

    #[test]
    fn multi_lane_out_of_order_blocks_drain_in_order() {
        // 4 lanes (B/b = 4), blocks of 2 cells.
        let q = LogicalQueueId::new(1);
        let mut b = UnifiedLinkedListBuffer::with_lanes(2, 64, 4, 2);
        // Blocks arrive out of order: 1, 0, 3, 2 (same-lane blocks stay in
        // order, which the DRAM banking guarantees).
        b.insert_block(q, 1, cells(1, 2, 2)).unwrap();
        b.insert_block(q, 0, cells(1, 0, 2)).unwrap();
        b.insert_block(q, 3, cells(1, 6, 2)).unwrap();
        b.insert_block(q, 2, cells(1, 4, 2)).unwrap();
        for i in 0..8 {
            assert_eq!(b.pop_front(q).unwrap().seq(), i, "cell {i}");
        }
    }

    #[test]
    fn available_respects_missing_block() {
        let q = LogicalQueueId::new(0);
        let mut b = UnifiedLinkedListBuffer::with_lanes(1, 64, 4, 2);
        b.insert_block(q, 0, cells(0, 0, 2)).unwrap();
        b.insert_block(q, 2, cells(0, 4, 2)).unwrap();
        // Block 1 missing: only the first block is contiguously available.
        assert_eq!(b.available(q), 2);
        assert_eq!(b.pop_front(q).unwrap().seq(), 0);
        assert_eq!(b.pop_front(q).unwrap().seq(), 1);
        assert!(b.pop_front(q).is_none());
        b.insert_block(q, 1, cells(0, 2, 2)).unwrap();
        assert_eq!(b.available(q), 4);
        for i in 2..6 {
            assert_eq!(b.pop_front(q).unwrap().seq(), i);
        }
    }

    #[test]
    fn capacity_is_enforced() {
        let q = LogicalQueueId::new(0);
        let mut b = UnifiedLinkedListBuffer::new(1, 3);
        for i in 0..3 {
            b.push_cell(q, Cell::new(q, i, 0)).unwrap();
        }
        assert!(matches!(
            b.push_cell(q, Cell::new(q, 3, 0)),
            Err(BufferError::Full { .. })
        ));
        assert!(matches!(
            b.insert_block(q, 5, cells(0, 10, 2)),
            Err(BufferError::Full { .. })
        ));
        assert_eq!(b.peak_occupancy(), 3);
        assert_eq!(b.capacity(), 3);
    }

    #[test]
    fn queues_do_not_interfere() {
        let qa = LogicalQueueId::new(0);
        let qb = LogicalQueueId::new(1);
        let mut b = UnifiedLinkedListBuffer::with_lanes(2, 64, 2, 2);
        b.insert_block(qa, 0, cells(0, 0, 2)).unwrap();
        b.insert_block(qb, 0, cells(1, 0, 2)).unwrap();
        b.insert_block(qb, 1, cells(1, 2, 2)).unwrap();
        assert_eq!(b.pop_front(qa).unwrap().queue(), qa);
        assert_eq!(b.pop_front(qb).unwrap().queue(), qb);
        assert_eq!(b.occupancy(), 4);
        assert_eq!(b.num_queues(), 2);
        assert_eq!(b.lanes(), 2);
    }

    #[test]
    fn out_of_range_queue() {
        let mut b = UnifiedLinkedListBuffer::new(1, 8);
        let bad = LogicalQueueId::new(4);
        assert!(matches!(
            b.push_cell(bad, Cell::new(bad, 0, 0)),
            Err(BufferError::QueueOutOfRange { .. })
        ));
        assert!(b.pop_front(bad).is_none());
        assert_eq!(b.available(bad), 0);
    }

    #[test]
    fn push_cell_with_lanes_rotates_like_blocks() {
        // In-order arrivals through push_cell must be retrievable in order
        // even when the buffer is configured with several lanes.
        let q = LogicalQueueId::new(0);
        let mut b = UnifiedLinkedListBuffer::with_lanes(1, 64, 4, 2);
        for i in 0..16 {
            b.push_cell(q, Cell::new(q, i, 0)).unwrap();
        }
        for i in 0..16 {
            assert_eq!(b.pop_front(q).unwrap().seq(), i);
        }
    }

    #[test]
    fn interleaved_push_pop_reuses_entries() {
        let q = LogicalQueueId::new(0);
        let mut b = UnifiedLinkedListBuffer::new(1, 4);
        for round in 0..50u64 {
            b.push_cell(q, Cell::new(q, round, 0)).unwrap();
            assert_eq!(b.pop_front(q).unwrap().seq(), round);
        }
        assert_eq!(b.occupancy(), 0);
        assert_eq!(b.free_entries(), 4);
    }
}
