//! The global-CAM shared buffer: cells tagged with `(queue, order)`.

use crate::traits::{BufferError, SharedBuffer};
use pktbuf_model::{Cell, LogicalQueueId};
use std::collections::BTreeMap;

/// Fully associative shared buffer.
///
/// Every resident cell is indexed by its `(queue, cell order)` tag, so blocks
/// can be written in any order and the head of each queue is found with a
/// single associative search — the functional counterpart of the paper's
/// "global CAM" organisation.
#[derive(Debug, Clone)]
pub struct GlobalCamBuffer {
    /// Tag → cell store. A BTreeMap keyed by (queue, order) keeps per-queue
    /// cells sorted by order, mirroring what the priority encoder of a real
    /// CAM would resolve.
    store: BTreeMap<(u32, u64), Cell>,
    /// Next cell order expected at the head of each queue.
    head_order: Vec<u64>,
    /// Next cell order to assign at the tail of each queue (for `push_cell`
    /// and for mapping block ordinals to cell orders).
    tail_order: Vec<u64>,
    /// Cells per block, used to convert block ordinals into cell orders.
    cells_per_block: usize,
    capacity: usize,
    peak: usize,
}

impl GlobalCamBuffer {
    /// Creates a buffer for `num_queues` queues and `capacity` cells.
    /// `cells_per_block` is the DRAM transfer granularity (`B` for RADS, `b`
    /// for CFDS) used to translate block ordinals into cell orders.
    pub fn new(num_queues: usize, capacity: usize) -> Self {
        GlobalCamBuffer::with_block_size(num_queues, capacity, 1)
    }

    /// Creates a buffer whose blocks contain `cells_per_block` cells.
    pub fn with_block_size(num_queues: usize, capacity: usize, cells_per_block: usize) -> Self {
        GlobalCamBuffer {
            store: BTreeMap::new(),
            head_order: vec![0; num_queues],
            tail_order: vec![0; num_queues],
            cells_per_block: cells_per_block.max(1),
            capacity,
            peak: 0,
        }
    }

    fn check_queue(&self, queue: LogicalQueueId) -> Result<usize, BufferError> {
        let idx = queue.as_usize();
        if idx >= self.head_order.len() {
            return Err(BufferError::QueueOutOfRange {
                queue,
                num_queues: self.head_order.len(),
            });
        }
        Ok(idx)
    }

    fn note_peak(&mut self) {
        self.peak = self.peak.max(self.store.len());
    }
}

impl SharedBuffer for GlobalCamBuffer {
    fn insert_block(
        &mut self,
        queue: LogicalQueueId,
        ordinal: u64,
        cells: Vec<Cell>,
    ) -> Result<(), BufferError> {
        let idx = self.check_queue(queue)?;
        if self.store.len() + cells.len() > self.capacity {
            return Err(BufferError::Full {
                capacity: self.capacity,
            });
        }
        let base = ordinal * self.cells_per_block as u64;
        if self.store.contains_key(&(queue.index(), base)) {
            return Err(BufferError::DuplicateBlock { queue, ordinal });
        }
        for (i, cell) in cells.into_iter().enumerate() {
            self.store.insert((queue.index(), base + i as u64), cell);
        }
        // Keep the tail order monotone so push_cell after block inserts works.
        let end = base + self.cells_per_block as u64;
        if end > self.tail_order[idx] {
            self.tail_order[idx] = end;
        }
        self.note_peak();
        Ok(())
    }

    fn push_cell(&mut self, queue: LogicalQueueId, cell: Cell) -> Result<(), BufferError> {
        let idx = self.check_queue(queue)?;
        if self.store.len() + 1 > self.capacity {
            return Err(BufferError::Full {
                capacity: self.capacity,
            });
        }
        let order = self.tail_order[idx];
        self.tail_order[idx] += 1;
        self.store.insert((queue.index(), order), cell);
        self.note_peak();
        Ok(())
    }

    fn pop_front(&mut self, queue: LogicalQueueId) -> Option<Cell> {
        let idx = self.check_queue(queue).ok()?;
        let key = (queue.index(), self.head_order[idx]);
        let cell = self.store.remove(&key)?;
        self.head_order[idx] += 1;
        Some(cell)
    }

    fn available(&self, queue: LogicalQueueId) -> usize {
        let idx = match self.check_queue(queue) {
            Ok(i) => i,
            Err(_) => return 0,
        };
        let mut order = self.head_order[idx];
        let mut n = 0;
        while self.store.contains_key(&(queue.index(), order)) {
            n += 1;
            order += 1;
        }
        n
    }

    fn occupancy(&self) -> usize {
        self.store.len()
    }

    fn capacity(&self) -> usize {
        self.capacity
    }

    fn peak_occupancy(&self) -> usize {
        self.peak
    }

    fn num_queues(&self) -> usize {
        self.head_order.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cells(q: u32, start: u64, n: usize) -> Vec<Cell> {
        (0..n)
            .map(|i| Cell::new(LogicalQueueId::new(q), start + i as u64, 0))
            .collect()
    }

    #[test]
    fn in_order_blocks_drain_fifo() {
        let q = LogicalQueueId::new(0);
        let mut b = GlobalCamBuffer::with_block_size(2, 64, 4);
        b.insert_block(q, 0, cells(0, 0, 4)).unwrap();
        b.insert_block(q, 1, cells(0, 4, 4)).unwrap();
        for i in 0..8 {
            assert_eq!(b.pop_front(q).unwrap().seq(), i);
        }
        assert!(b.pop_front(q).is_none());
    }

    #[test]
    fn out_of_order_blocks_still_drain_fifo() {
        let q = LogicalQueueId::new(1);
        let mut b = GlobalCamBuffer::with_block_size(2, 64, 4);
        b.insert_block(q, 2, cells(1, 8, 4)).unwrap();
        b.insert_block(q, 0, cells(1, 0, 4)).unwrap();
        // Block 1 missing: only block 0's cells are available.
        assert_eq!(b.available(q), 4);
        for i in 0..4 {
            assert_eq!(b.pop_front(q).unwrap().seq(), i);
        }
        assert!(b.pop_front(q).is_none(), "cell 4 not yet resident");
        b.insert_block(q, 1, cells(1, 4, 4)).unwrap();
        assert_eq!(b.available(q), 8);
        for i in 4..12 {
            assert_eq!(b.pop_front(q).unwrap().seq(), i);
        }
    }

    #[test]
    fn capacity_and_duplicates_are_enforced() {
        let q = LogicalQueueId::new(0);
        let mut b = GlobalCamBuffer::with_block_size(1, 4, 4);
        b.insert_block(q, 0, cells(0, 0, 4)).unwrap();
        assert!(matches!(
            b.insert_block(q, 1, cells(0, 4, 4)),
            Err(BufferError::Full { .. })
        ));
        let mut b = GlobalCamBuffer::with_block_size(1, 64, 4);
        b.insert_block(q, 0, cells(0, 0, 4)).unwrap();
        assert!(matches!(
            b.insert_block(q, 0, cells(0, 0, 4)),
            Err(BufferError::DuplicateBlock { .. })
        ));
    }

    #[test]
    fn push_cell_appends_at_tail() {
        let q = LogicalQueueId::new(0);
        let mut b = GlobalCamBuffer::new(1, 16);
        for i in 0..5 {
            b.push_cell(q, Cell::new(q, i, 0)).unwrap();
        }
        assert_eq!(b.occupancy(), 5);
        assert_eq!(b.available(q), 5);
        for i in 0..5 {
            assert_eq!(b.pop_front(q).unwrap().seq(), i);
        }
    }

    #[test]
    fn queue_out_of_range() {
        let mut b = GlobalCamBuffer::new(2, 16);
        let bad = LogicalQueueId::new(9);
        assert!(matches!(
            b.push_cell(bad, Cell::new(bad, 0, 0)),
            Err(BufferError::QueueOutOfRange { .. })
        ));
        assert_eq!(b.available(bad), 0);
        assert!(b.pop_front(bad).is_none());
    }

    #[test]
    fn peak_occupancy_tracks_high_water_mark() {
        let q = LogicalQueueId::new(0);
        let mut b = GlobalCamBuffer::new(1, 16);
        for i in 0..6 {
            b.push_cell(q, Cell::new(q, i, 0)).unwrap();
        }
        for _ in 0..6 {
            b.pop_front(q);
        }
        assert_eq!(b.occupancy(), 0);
        assert_eq!(b.peak_occupancy(), 6);
        assert_eq!(b.capacity(), 16);
        assert_eq!(b.num_queues(), 1);
    }
}
