//! The global-CAM shared buffer: cells tagged with `(queue, order)`.

use crate::traits::{BufferError, SharedBuffer};
use pktbuf_model::{Cell, LogicalQueueId};
use std::collections::{BTreeMap, VecDeque};

/// Per-queue cell storage: a dense ring indexed by `order - head_order`.
///
/// The `(queue, order)` tag space of the CAM maps onto one ring per queue:
/// position 0 is the next cell the arbiter will be granted, holes are cells
/// whose block has not been delivered yet. The window between the head and
/// the youngest resident cell is bounded by the SRAM sizing, so after warm-up
/// the ring never reallocates — the slot path is heap-free, unlike the
/// tree-node churn of a `BTreeMap<(u32, u64), Cell>`.
#[derive(Debug, Clone, Default)]
struct QueueRing {
    /// Cell order of ring position 0 (== next order expected at the head).
    base: u64,
    ring: VecDeque<Option<Cell>>,
}

impl QueueRing {
    /// Inserts `cell` at `order`, mirroring `BTreeMap::insert` semantics
    /// (silent overwrite). Returns whether the slot was previously empty.
    fn put(&mut self, order: u64, cell: Cell) -> bool {
        debug_assert!(order >= self.base, "stale orders are routed to `stale`");
        let pos = (order - self.base) as usize;
        // Fast path: in-order delivery appends directly at the window's end.
        if pos == self.ring.len() {
            self.ring.push_back(Some(cell));
            return true;
        }
        while self.ring.len() <= pos {
            self.ring.push_back(None);
        }
        self.ring[pos].replace(cell).is_none()
    }

    fn get(&self, order: u64) -> Option<&Cell> {
        if order < self.base {
            return None;
        }
        self.ring.get((order - self.base) as usize)?.as_ref()
    }
}

/// Fully associative shared buffer.
///
/// Every resident cell is indexed by its `(queue, cell order)` tag, so blocks
/// can be written in any order and the head of each queue is found with a
/// single associative search — the functional counterpart of the paper's
/// "global CAM" organisation. Functionally the tag match is resolved through
/// per-queue order-indexed rings (`QueueRing`); the observable contract is
/// identical to the earlier tag-map implementation.
#[derive(Debug, Clone)]
pub struct GlobalCamBuffer {
    /// One order-indexed ring per queue.
    rings: Vec<QueueRing>,
    /// Cells inserted at an order below a queue's head. Such cells can never
    /// be granted (the head only moves forward) but still occupy SRAM space;
    /// keeping them in a side map preserves the occupancy accounting of the
    /// tag-map implementation. Empty in any well-formed run.
    stale: BTreeMap<(u32, u64), Cell>,
    /// Resident cells inside the rings (excluding `stale`).
    ring_cells: usize,
    /// Next cell order to assign at the tail of each queue (for `push_cell`
    /// and for mapping block ordinals to cell orders).
    tail_order: Vec<u64>,
    /// Cells per block, used to convert block ordinals into cell orders.
    cells_per_block: usize,
    capacity: usize,
    peak: usize,
}

impl GlobalCamBuffer {
    /// Creates a buffer for `num_queues` queues and `capacity` cells.
    /// `cells_per_block` is the DRAM transfer granularity (`B` for RADS, `b`
    /// for CFDS) used to translate block ordinals into cell orders.
    pub fn new(num_queues: usize, capacity: usize) -> Self {
        GlobalCamBuffer::with_block_size(num_queues, capacity, 1)
    }

    /// Creates a buffer whose blocks contain `cells_per_block` cells.
    pub fn with_block_size(num_queues: usize, capacity: usize, cells_per_block: usize) -> Self {
        GlobalCamBuffer {
            rings: vec![QueueRing::default(); num_queues],
            stale: BTreeMap::new(),
            ring_cells: 0,
            tail_order: vec![0; num_queues],
            cells_per_block: cells_per_block.max(1),
            capacity,
            peak: 0,
        }
    }

    fn check_queue(&self, queue: LogicalQueueId) -> Result<usize, BufferError> {
        let idx = queue.as_usize();
        if idx >= self.rings.len() {
            return Err(BufferError::QueueOutOfRange {
                queue,
                num_queues: self.rings.len(),
            });
        }
        Ok(idx)
    }

    /// Stores one tagged cell, routing orders below the head to `stale`.
    fn put(&mut self, idx: usize, queue: LogicalQueueId, order: u64, cell: Cell) {
        let ring = &mut self.rings[idx];
        if order < ring.base {
            self.stale.insert((queue.index(), order), cell);
        } else if ring.put(order, cell) {
            self.ring_cells += 1;
        }
    }

    fn contains(&self, idx: usize, queue: LogicalQueueId, order: u64) -> bool {
        self.rings[idx].get(order).is_some() || self.stale.contains_key(&(queue.index(), order))
    }

    fn note_peak(&mut self) {
        self.peak = self.peak.max(self.occupancy());
    }

    /// Shared implementation of block insertion over any cell source.
    fn insert_block_inner(
        &mut self,
        queue: LogicalQueueId,
        ordinal: u64,
        len: usize,
        cells: impl Iterator<Item = Cell>,
    ) -> Result<(), BufferError> {
        let idx = self.check_queue(queue)?;
        if self.occupancy() + len > self.capacity {
            return Err(BufferError::Full {
                capacity: self.capacity,
            });
        }
        let base = ordinal * self.cells_per_block as u64;
        if self.contains(idx, queue, base) {
            return Err(BufferError::DuplicateBlock { queue, ordinal });
        }
        let ring = &mut self.rings[idx];
        if base >= ring.base && (base - ring.base) as usize == ring.ring.len() {
            // In-order delivery (the overwhelmingly common case): the block
            // extends the window's end, so append the cells in one pass
            // without per-cell position bookkeeping.
            for cell in cells {
                ring.ring.push_back(Some(cell));
                self.ring_cells += 1;
            }
        } else {
            for (i, cell) in cells.enumerate() {
                self.put(idx, queue, base + i as u64, cell);
            }
        }
        // Keep the tail order monotone so push_cell after block inserts works.
        let end = base + self.cells_per_block as u64;
        if end > self.tail_order[idx] {
            self.tail_order[idx] = end;
        }
        self.note_peak();
        Ok(())
    }
}

impl SharedBuffer for GlobalCamBuffer {
    fn insert_block(
        &mut self,
        queue: LogicalQueueId,
        ordinal: u64,
        cells: Vec<Cell>,
    ) -> Result<(), BufferError> {
        let len = cells.len();
        self.insert_block_inner(queue, ordinal, len, cells.into_iter())
    }

    fn insert_block_cells(
        &mut self,
        queue: LogicalQueueId,
        ordinal: u64,
        cells: &[Cell],
    ) -> Result<(), BufferError> {
        self.insert_block_inner(queue, ordinal, cells.len(), cells.iter().cloned())
    }

    fn push_cell(&mut self, queue: LogicalQueueId, cell: Cell) -> Result<(), BufferError> {
        let idx = self.check_queue(queue)?;
        if self.occupancy() + 1 > self.capacity {
            return Err(BufferError::Full {
                capacity: self.capacity,
            });
        }
        let order = self.tail_order[idx];
        self.tail_order[idx] += 1;
        self.put(idx, queue, order, cell);
        self.note_peak();
        Ok(())
    }

    fn pop_front(&mut self, queue: LogicalQueueId) -> Option<Cell> {
        let idx = self.check_queue(queue).ok()?;
        let ring = &mut self.rings[idx];
        // The head cell is resident exactly when ring position 0 is occupied;
        // pop it in one move (no take-then-pop, which would write a dead
        // `None` into the slot being discarded).
        if !matches!(ring.ring.front(), Some(Some(_))) {
            return None;
        }
        let cell = ring.ring.pop_front().flatten().expect("front was resident");
        ring.base += 1;
        self.ring_cells -= 1;
        Some(cell)
    }

    fn available(&self, queue: LogicalQueueId) -> usize {
        let Ok(idx) = self.check_queue(queue) else {
            return 0;
        };
        self.rings[idx]
            .ring
            .iter()
            .take_while(|slot| slot.is_some())
            .count()
    }

    fn occupancy(&self) -> usize {
        self.ring_cells + self.stale.len()
    }

    fn capacity(&self) -> usize {
        self.capacity
    }

    fn peak_occupancy(&self) -> usize {
        self.peak
    }

    fn num_queues(&self) -> usize {
        self.rings.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cells(q: u32, start: u64, n: usize) -> Vec<Cell> {
        (0..n)
            .map(|i| Cell::new(LogicalQueueId::new(q), start + i as u64, 0))
            .collect()
    }

    #[test]
    fn in_order_blocks_drain_fifo() {
        let q = LogicalQueueId::new(0);
        let mut b = GlobalCamBuffer::with_block_size(2, 64, 4);
        b.insert_block(q, 0, cells(0, 0, 4)).unwrap();
        b.insert_block(q, 1, cells(0, 4, 4)).unwrap();
        for i in 0..8 {
            assert_eq!(b.pop_front(q).unwrap().seq(), i);
        }
        assert!(b.pop_front(q).is_none());
    }

    #[test]
    fn out_of_order_blocks_still_drain_fifo() {
        let q = LogicalQueueId::new(1);
        let mut b = GlobalCamBuffer::with_block_size(2, 64, 4);
        b.insert_block(q, 2, cells(1, 8, 4)).unwrap();
        b.insert_block(q, 0, cells(1, 0, 4)).unwrap();
        // Block 1 missing: only block 0's cells are available.
        assert_eq!(b.available(q), 4);
        for i in 0..4 {
            assert_eq!(b.pop_front(q).unwrap().seq(), i);
        }
        assert!(b.pop_front(q).is_none(), "cell 4 not yet resident");
        b.insert_block(q, 1, cells(1, 4, 4)).unwrap();
        assert_eq!(b.available(q), 8);
        for i in 4..12 {
            assert_eq!(b.pop_front(q).unwrap().seq(), i);
        }
    }

    #[test]
    fn capacity_and_duplicates_are_enforced() {
        let q = LogicalQueueId::new(0);
        let mut b = GlobalCamBuffer::with_block_size(1, 4, 4);
        b.insert_block(q, 0, cells(0, 0, 4)).unwrap();
        assert!(matches!(
            b.insert_block(q, 1, cells(0, 4, 4)),
            Err(BufferError::Full { .. })
        ));
        let mut b = GlobalCamBuffer::with_block_size(1, 64, 4);
        b.insert_block(q, 0, cells(0, 0, 4)).unwrap();
        assert!(matches!(
            b.insert_block(q, 0, cells(0, 0, 4)),
            Err(BufferError::DuplicateBlock { .. })
        ));
    }

    #[test]
    fn push_cell_appends_at_tail() {
        let q = LogicalQueueId::new(0);
        let mut b = GlobalCamBuffer::new(1, 16);
        for i in 0..5 {
            b.push_cell(q, Cell::new(q, i, 0)).unwrap();
        }
        assert_eq!(b.occupancy(), 5);
        assert_eq!(b.available(q), 5);
        for i in 0..5 {
            assert_eq!(b.pop_front(q).unwrap().seq(), i);
        }
    }

    #[test]
    fn queue_out_of_range() {
        let mut b = GlobalCamBuffer::new(2, 16);
        let bad = LogicalQueueId::new(9);
        assert!(matches!(
            b.push_cell(bad, Cell::new(bad, 0, 0)),
            Err(BufferError::QueueOutOfRange { .. })
        ));
        assert_eq!(b.available(bad), 0);
        assert!(b.pop_front(bad).is_none());
    }

    #[test]
    fn insert_block_cells_matches_insert_block() {
        let q = LogicalQueueId::new(0);
        let mut by_vec = GlobalCamBuffer::with_block_size(1, 64, 4);
        let mut by_slice = GlobalCamBuffer::with_block_size(1, 64, 4);
        for ordinal in [2u64, 0, 1] {
            let block = cells(0, ordinal * 4, 4);
            by_slice.insert_block_cells(q, ordinal, &block).unwrap();
            by_vec.insert_block(q, ordinal, block).unwrap();
        }
        assert_eq!(by_vec.occupancy(), by_slice.occupancy());
        assert_eq!(by_vec.available(q), by_slice.available(q));
        for _ in 0..12 {
            assert_eq!(by_vec.pop_front(q), by_slice.pop_front(q));
        }
        // Duplicate detection works through the slice path too.
        let block = cells(0, 0, 4);
        by_slice.insert_block_cells(q, 9, &block).unwrap();
        assert!(matches!(
            by_slice.insert_block_cells(q, 9, &block),
            Err(BufferError::DuplicateBlock { .. })
        ));
    }

    #[test]
    fn peak_occupancy_tracks_high_water_mark() {
        let q = LogicalQueueId::new(0);
        let mut b = GlobalCamBuffer::new(1, 16);
        for i in 0..6 {
            b.push_cell(q, Cell::new(q, i, 0)).unwrap();
        }
        for _ in 0..6 {
            b.pop_front(q);
        }
        assert_eq!(b.occupancy(), 0);
        assert_eq!(b.peak_occupancy(), 6);
        assert_eq!(b.capacity(), 16);
        assert_eq!(b.num_queues(), 1);
    }
}
