//! Head/tail pointer table used by the unified linked-list buffer.

use serde::{Deserialize, Serialize};

/// Head and tail pointers of one linked list, plus its length.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
struct ListPointers {
    head: Option<u32>,
    tail: Option<u32>,
    len: u32,
}

/// A table of head/tail pointers, one entry per linked list.
///
/// In hardware this is the small two-port direct-mapped structure described in
/// §7.1 ("another direct-mapped structure that stores the head and tail
/// pointers for each of the queues").
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PointerTable {
    lists: Vec<ListPointers>,
}

impl PointerTable {
    /// Creates a table for `num_lists` empty lists.
    pub fn new(num_lists: usize) -> Self {
        PointerTable {
            lists: vec![ListPointers::default(); num_lists],
        }
    }

    /// Number of lists tracked.
    pub fn num_lists(&self) -> usize {
        self.lists.len()
    }

    /// Head entry index of list `list`, if non-empty.
    pub fn head(&self, list: usize) -> Option<u32> {
        self.lists[list].head
    }

    /// Tail entry index of list `list`, if non-empty.
    pub fn tail(&self, list: usize) -> Option<u32> {
        self.lists[list].tail
    }

    /// Length of list `list`.
    pub fn len(&self, list: usize) -> usize {
        self.lists[list].len as usize
    }

    /// Whether list `list` is empty.
    pub fn is_empty(&self, list: usize) -> bool {
        self.lists[list].len == 0
    }

    /// Records that `entry` became the new tail of `list`; returns the
    /// previous tail (whose next pointer must be updated by the caller).
    pub fn push_tail(&mut self, list: usize, entry: u32) -> Option<u32> {
        let l = &mut self.lists[list];
        let prev = l.tail;
        l.tail = Some(entry);
        if l.head.is_none() {
            l.head = Some(entry);
        }
        l.len += 1;
        prev
    }

    /// Removes the head of `list`, making `new_head` (the old head's next
    /// pointer) the new head. Returns the removed entry index.
    ///
    /// # Panics
    ///
    /// Panics if the list is empty.
    pub fn pop_head(&mut self, list: usize, new_head: Option<u32>) -> u32 {
        let l = &mut self.lists[list];
        let old = l.head.expect("pop_head on empty list");
        l.head = new_head;
        l.len -= 1;
        if l.len == 0 {
            l.head = None;
            l.tail = None;
        }
        old
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_pop_maintain_pointers() {
        let mut t = PointerTable::new(2);
        assert!(t.is_empty(0));
        assert_eq!(t.push_tail(0, 10), None);
        assert_eq!(t.push_tail(0, 11), Some(10));
        assert_eq!(t.head(0), Some(10));
        assert_eq!(t.tail(0), Some(11));
        assert_eq!(t.len(0), 2);
        assert_eq!(t.pop_head(0, Some(11)), 10);
        assert_eq!(t.head(0), Some(11));
        assert_eq!(t.pop_head(0, None), 11);
        assert!(t.is_empty(0));
        assert_eq!(t.tail(0), None);
        assert_eq!(t.num_lists(), 2);
    }

    #[test]
    #[should_panic(expected = "empty list")]
    fn pop_empty_panics() {
        let mut t = PointerTable::new(1);
        t.pop_head(0, None);
    }

    #[test]
    fn lists_are_independent() {
        let mut t = PointerTable::new(3);
        t.push_tail(1, 5);
        assert!(t.is_empty(0));
        assert!(!t.is_empty(1));
        assert!(t.is_empty(2));
    }
}
