//! Acceptance tests for the declarative experiment layer: cross-design
//! equivalence, sweep-scale loss-freedom, and determinism of the runner.

use sim::lab::LabRunner;
use sim::scenario::{grants_per_queue, DesignKind, Scenario, Workload};
use sim::spec::{ExperimentSpec, Sweep};

/// RADS and CFDS must deliver the *same grant sequence per queue* under every
/// workload at a small design point: same per-queue cell counts, in FIFO
/// order (order violations are counted by the buffers themselves and must be
/// zero). The DRAM-only baseline is excluded — it misses by design.
#[test]
fn rads_and_cfds_grant_logs_are_equivalent_under_every_workload() {
    for workload in Workload::all() {
        let base = Scenario {
            workload,
            preload_cells_per_queue: 32,
            ..Scenario::small_cfds()
        };
        let run = |design: DesignKind| Scenario { design, ..base }.run_with_grant_log(true);
        let rads = run(DesignKind::Rads);
        let cfds = run(DesignKind::Cfds);
        assert!(rads.stats.is_loss_free(), "{workload}: {:?}", rads.stats);
        assert!(cfds.stats.is_loss_free(), "{workload}: {:?}", cfds.stats);
        assert_eq!(rads.stats.order_violations, 0);
        assert_eq!(cfds.stats.order_violations, 0);
        // Same cells per queue…
        let per_queue_rads = grants_per_queue(&rads, base.num_queues);
        let per_queue_cfds = grants_per_queue(&cfds, base.num_queues);
        assert_eq!(per_queue_rads, per_queue_cfds, "{workload}");
        // …and every preloaded cell was delivered.
        assert!(per_queue_rads.iter().all(|&c| c == 32), "{workload}");
        // With per-queue FIFO delivery (order_violations == 0), equal
        // per-queue counts mean the grant sequence each queue observes is
        // identical: cells 0..32 of that queue, in order.
    }
}

/// The acceptance sweep: ≥ 24 expanded runs across designs, workloads and
/// queue counts, all zero-miss / zero-drop / conflict-free where the paper
/// claims it, and byte-identical whether run on 1 thread or many.
#[test]
fn a_two_dozen_run_sweep_is_loss_free_and_thread_count_invariant() {
    let spec = ExperimentSpec::builder()
        .name("acceptance-sweep")
        .designs([DesignKind::Rads, DesignKind::Cfds])
        .workloads(Workload::all())
        .num_queues(Sweep::list([8, 16, 32]))
        .granularity(Sweep::fixed(2))
        .rads_granularity(Sweep::fixed(8))
        .num_banks(Sweep::fixed(32))
        .arrival_slots(1_200)
        .seeds([9])
        .build()
        .unwrap();
    let expansion = spec.expand().unwrap();
    assert!(
        expansion.runs.len() >= 24,
        "need a sweep of at least 24 runs, got {}",
        expansion.runs.len()
    );

    let single = LabRunner::new().with_threads(1).run(&spec).unwrap();
    let multi = LabRunner::new().with_threads(4).run(&spec).unwrap();

    assert!(
        single.aggregate.all_loss_free,
        "every run must be loss-free: {:?}",
        single
            .runs
            .iter()
            .filter(|r| !r.report.stats.is_loss_free())
            .map(|r| (r.scenario.design, r.scenario.workload, r.report.stats))
            .collect::<Vec<_>>()
    );
    assert_eq!(single.aggregate.total_misses, 0);
    assert_eq!(single.aggregate.total_drops, 0);
    assert_eq!(single.aggregate.total_bank_conflicts, 0);

    // Byte-identical artefacts regardless of worker count.
    assert_eq!(single, multi);
    assert_eq!(single.to_json(), multi.to_json());
    assert_eq!(single.to_csv(), multi.to_csv());
}

/// Identical seeds must reproduce bit-identical `SimulationReport`s through
/// the whole stack (generators → engine → runner → serialization), and the
/// spec must round-trip through JSON before running.
#[test]
fn reports_are_bit_identical_for_identical_seeds_even_via_json() {
    let spec = ExperimentSpec::builder()
        .name("determinism")
        .designs([DesignKind::Cfds])
        .workloads([Workload::UniformRandom, Workload::Bursty, Workload::Hotspot])
        .num_queues(Sweep::fixed(16))
        .granularity(Sweep::fixed(2))
        .rads_granularity(Sweep::fixed(8))
        .num_banks(Sweep::fixed(32))
        .arrival_slots(2_000)
        .seeds([21])
        .record_grants(true)
        .build()
        .unwrap();
    // Round-trip the spec through JSON first: the executed experiment is the
    // *serialized* description, not just the in-memory one.
    let reparsed = ExperimentSpec::from_json(&spec.to_json()).unwrap();
    assert_eq!(reparsed, spec);

    let a = LabRunner::new().run(&spec).unwrap();
    let b = LabRunner::new().run(&reparsed).unwrap();
    for (x, y) in a.runs.iter().zip(&b.runs) {
        assert_eq!(x.report, y.report, "{}", x.scenario.workload);
        assert!(x.report.grant_log.is_some());
    }
    assert_eq!(a.to_json(), b.to_json());
}
