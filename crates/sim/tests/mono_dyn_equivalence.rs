//! The monomorphized fast path (since PR 4: the *chunked* engine) must be
//! observationally identical to the type-erased per-slot reference path:
//! bit-identical `SimulationReport`s — including grant logs — for every
//! design × workload, with live arrivals and with preloaded drains.
//! (`chunked_equivalence` additionally pins chunked vs per-slot on the same
//! monomorphized buffer.)

use sim::scenario::{DesignKind, Scenario, Workload};
use sim::SimulationReport;

fn base() -> Scenario {
    Scenario {
        num_queues: 16,
        granularity: 2,
        rads_granularity: 8,
        num_banks: 16,
        seed: 11,
        ..Scenario::small_cfds()
    }
}

fn assert_identical(scenario: &Scenario) {
    let mono: SimulationReport = scenario.run_with_grant_log(true);
    let dyn_ref: SimulationReport = scenario.run_dyn_with_grant_log(true);
    assert_eq!(
        mono, dyn_ref,
        "mono vs dyn mismatch for {:?}/{:?}",
        scenario.design, scenario.workload
    );
    // Bit-identical serialized artifacts, not just PartialEq: the JSON is
    // what downstream tooling diffs.
    let mono_json = serde_json::to_string_pretty(&mono).unwrap();
    let dyn_json = serde_json::to_string_pretty(&dyn_ref).unwrap();
    assert_eq!(mono_json, dyn_json);
    assert!(mono.grant_log.is_some(), "grant log must be recorded");
}

#[test]
fn live_arrivals_reports_are_bit_identical() {
    for design in DesignKind::all() {
        for workload in Workload::all() {
            let scenario = Scenario {
                design,
                workload,
                preload_cells_per_queue: 0,
                arrival_slots: 2_000,
                ..base()
            };
            assert_identical(&scenario);
        }
    }
}

#[test]
fn preloaded_drain_reports_are_bit_identical() {
    for design in DesignKind::all() {
        for workload in Workload::all() {
            let scenario = Scenario {
                design,
                workload,
                preload_cells_per_queue: 32,
                arrival_slots: 0,
                ..base()
            };
            assert_identical(&scenario);
        }
    }
}

#[test]
fn engine_labels_match_generator_names() {
    // The mono path uses the precomputed `Workload::engine_label` table; the
    // dyn path formats the label from the actual generator `name()`s at run
    // time. Compare the table against the dyn-derived string so a stale
    // table entry fails here (and not only through full-report inequality).
    for workload in Workload::all() {
        for (live, slots, preload) in [(true, 500u64, 0u64), (false, 0, 16)] {
            let scenario = Scenario {
                design: DesignKind::Cfds,
                workload,
                preload_cells_per_queue: preload,
                arrival_slots: slots,
                ..base()
            };
            let dyn_report = scenario.run_dyn_with_grant_log(false);
            assert_eq!(
                workload.engine_label(live),
                dyn_report.workload,
                "label table out of sync for {workload:?} (live={live})"
            );
        }
    }
}
