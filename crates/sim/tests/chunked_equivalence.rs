//! The chunked engine (fused batch loops + idle fast-forward) must be
//! observationally identical to the per-slot reference engine: bit-identical
//! `SimulationReport`s — including grant logs — for every design × workload,
//! with live arrivals and with preloaded drains, and at chunk-boundary edge
//! cases (runs shorter than a chunk, runs one slot off a chunk multiple).
//!
//! Together with `mono_dyn_equivalence` (chunked vs the type-erased per-slot
//! path) this pins all three engine paths to each other.

use sim::scenario::{DesignKind, Scenario, Workload};
use sim::{SimulationReport, CHUNK_SLOTS};

fn base() -> Scenario {
    Scenario {
        num_queues: 16,
        granularity: 2,
        rads_granularity: 8,
        num_banks: 16,
        seed: 23,
        ..Scenario::small_cfds()
    }
}

fn assert_identical(scenario: &Scenario) {
    let chunked: SimulationReport = scenario.run_with_grant_log(true);
    let per_slot: SimulationReport = scenario.run_per_slot_with_grant_log(true);
    assert_eq!(
        chunked, per_slot,
        "chunked vs per-slot mismatch for {:?}/{:?}",
        scenario.design, scenario.workload
    );
    // Bit-identical serialized artifacts, not just PartialEq: the JSON is
    // what downstream tooling diffs.
    let chunked_json = serde_json::to_string_pretty(&chunked).unwrap();
    let per_slot_json = serde_json::to_string_pretty(&per_slot).unwrap();
    assert_eq!(chunked_json, per_slot_json);
    assert!(chunked.grant_log.is_some(), "grant log must be recorded");
}

#[test]
fn live_arrivals_reports_are_byte_identical() {
    for design in DesignKind::all() {
        for workload in Workload::all() {
            let scenario = Scenario {
                design,
                workload,
                preload_cells_per_queue: 0,
                arrival_slots: 2_000,
                ..base()
            };
            assert_identical(&scenario);
        }
    }
}

#[test]
fn preloaded_drain_reports_are_byte_identical() {
    for design in DesignKind::all() {
        for workload in Workload::all() {
            let scenario = Scenario {
                design,
                workload,
                preload_cells_per_queue: 32,
                arrival_slots: 0,
                ..base()
            };
            assert_identical(&scenario);
        }
    }
}

/// Chunk-boundary edge cases: active phases that are empty, shorter than one
/// chunk, exactly one chunk, and one slot to either side of a chunk multiple.
#[test]
fn chunk_boundary_slot_counts_are_byte_identical() {
    let chunk = CHUNK_SLOTS as u64;
    for design in DesignKind::all() {
        for slots in [1, chunk - 1, chunk, chunk + 1, 3 * chunk, 3 * chunk + 7] {
            let scenario = Scenario {
                design,
                workload: Workload::AdversarialRoundRobin,
                preload_cells_per_queue: 0,
                arrival_slots: slots,
                ..base()
            };
            assert_identical(&scenario);
        }
    }
}

/// Different seeds shift where the drain's request stream dries up relative
/// to chunk boundaries; sweep a few to exercise the drain termination rule
/// (and the idle fast-forward that collapses the flush tail).
#[test]
fn drain_termination_is_seed_robust() {
    for design in DesignKind::all() {
        for seed in [1u64, 7, 101, 1009] {
            let scenario = Scenario {
                design,
                workload: Workload::UniformRandom,
                preload_cells_per_queue: 0,
                arrival_slots: 1_500,
                seed,
                ..base()
            };
            assert_identical(&scenario);
        }
    }
}
