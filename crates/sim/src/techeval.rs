//! Technology evaluation: turning dimensioning formulas into area and access
//! time via the `cacti-lite` model.
//!
//! This is the code behind Figure 8 (RADS SRAM cost vs. lookahead), Figure 10
//! (RADS vs. CFDS cost vs. delay), Figure 11 (maximum number of queues under
//! the access-time constraint) and the §7.2 SRAM size quotes.

use cacti_lite::{estimate_cam, estimate_sram, CamOrganization, ProcessNode, SramOrganization};
use cfds::sizing as cfds_sizing;
use mma::sizing as rads_sizing;
use pktbuf_model::{CfdsConfig, LineRate, CELL_BYTES};
use serde::{Deserialize, Serialize};
use sram_buf::{SramImplKind, SramImplSpec};

/// Physical cost of one SRAM buffer implementation at a given capacity.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SramPoint {
    /// Implementation evaluated.
    pub kind: SramImplKind,
    /// Capacity in cells.
    pub cells: usize,
    /// Capacity in bytes (including per-entry tag/pointer overhead).
    pub capacity_bytes: u64,
    /// Effective access time per buffer operation in nanoseconds (serialised
    /// accesses included).
    pub access_time_ns: f64,
    /// Area in cm².
    pub area_cm2: f64,
}

/// Evaluates one SRAM organisation holding `cells` cells for `num_queues`
/// queues.
pub fn evaluate_sram_impl(
    kind: SramImplKind,
    cells: usize,
    num_queues: usize,
    node: &ProcessNode,
) -> SramPoint {
    let cells = cells.max(1);
    let spec = SramImplSpec::for_kind(kind, num_queues, cells);
    let entry_bytes = (spec.entry_bits() as u64).div_ceil(8);
    let capacity_bytes = cells as u64 * entry_bytes;
    let (access, area) = match kind {
        SramImplKind::GlobalCam => {
            let est = estimate_cam(
                &CamOrganization::new(cells as u64, spec.data_bits, spec.overhead_bits)
                    .with_ports(spec.read_ports, spec.write_ports),
                node,
            );
            (est.access_time_ns, est.area_cm2)
        }
        SramImplKind::UnifiedLinkedList | SramImplKind::UnifiedLinkedListTimeMux => {
            let est = estimate_sram(
                &SramOrganization::new(capacity_bytes, entry_bytes as u32)
                    .with_ports(spec.read_ports, spec.write_ports),
                node,
            );
            (
                est.access_time_ns * spec.serialized_accesses as f64,
                est.area_cm2,
            )
        }
    };
    SramPoint {
        kind,
        cells,
        capacity_bytes,
        access_time_ns: access,
        area_cm2: area,
    }
}

/// One point of the Figure 8 / Figure 10 curves: a (design, lookahead)
/// combination evaluated across SRAM implementations.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DesignPoint {
    /// Design label ("RADS" or "CFDS").
    pub design: String,
    /// DRAM transfer granularity in cells (`B` for RADS, `b` for CFDS).
    pub granularity: usize,
    /// Lookahead in slots.
    pub lookahead_slots: usize,
    /// Total scheduler-visible delay in seconds (lookahead plus, for CFDS,
    /// the latency register).
    pub delay_seconds: f64,
    /// Head-SRAM size in cells.
    pub head_sram_cells: usize,
    /// Tail-SRAM size in cells.
    pub tail_sram_cells: usize,
    /// Cost of the head SRAM for every implementation, in
    /// [`SramImplKind::all`] order.
    pub head_impls: Vec<SramPoint>,
    /// Cost of the tail SRAM for every implementation, in the same order.
    pub tail_impls: Vec<SramPoint>,
}

impl DesignPoint {
    /// The paper's two candidate organisations (global CAM and the
    /// time-multiplexed unified linked list).
    fn paper_kinds() -> [SramImplKind; 2] {
        [
            SramImplKind::GlobalCam,
            SramImplKind::UnifiedLinkedListTimeMux,
        ]
    }

    /// Head-SRAM point for a specific implementation.
    pub fn head_impl(&self, kind: SramImplKind) -> &SramPoint {
        self.head_impls
            .iter()
            .find(|p| p.kind == kind)
            .expect("all implementations are evaluated")
    }

    /// Fastest of the paper's two organisations for the head SRAM.
    pub fn best_access_time_ns(&self) -> f64 {
        Self::paper_kinds()
            .iter()
            .map(|k| self.head_impl(*k).access_time_ns)
            .fold(f64::INFINITY, f64::min)
    }

    /// The implementation achieving [`DesignPoint::best_access_time_ns`].
    pub fn best_kind(&self) -> SramImplKind {
        Self::paper_kinds()
            .into_iter()
            .min_by(|a, b| {
                self.head_impl(*a)
                    .access_time_ns
                    .total_cmp(&self.head_impl(*b).access_time_ns)
            })
            .expect("two candidate kinds")
    }

    /// Combined head + tail SRAM area of the fastest organisation, in cm²
    /// (what Figure 10 plots).
    pub fn total_area_cm2(&self) -> f64 {
        let kind = self.best_kind();
        self.head_impl(kind).area_cm2
            + self
                .tail_impls
                .iter()
                .find(|p| p.kind == kind)
                .expect("all implementations are evaluated")
                .area_cm2
    }

    /// Whether the fastest organisation meets the per-slot access-time target
    /// of `line_rate`.
    pub fn meets(&self, line_rate: LineRate) -> bool {
        self.best_access_time_ns() <= line_rate.slot_duration().as_ns()
    }
}

fn evaluate_all(cells: usize, num_queues: usize, node: &ProcessNode) -> Vec<SramPoint> {
    SramImplKind::all()
        .iter()
        .map(|k| evaluate_sram_impl(*k, cells, num_queues, node))
        .collect()
}

/// Figure 8 point: a RADS design with `num_queues`, granularity `big_b` and
/// the given lookahead.
pub fn rads_point(
    line_rate: LineRate,
    num_queues: usize,
    big_b: usize,
    lookahead: usize,
    node: &ProcessNode,
) -> DesignPoint {
    let head_cells = rads_sizing::rads_sram_size_cells(lookahead, num_queues, big_b);
    let tail_cells = num_queues * (big_b - 1) + big_b;
    DesignPoint {
        design: "RADS".to_string(),
        granularity: big_b,
        lookahead_slots: lookahead,
        delay_seconds: lookahead as f64 * line_rate.slot_duration().as_ns() * 1e-9,
        head_sram_cells: head_cells,
        tail_sram_cells: tail_cells,
        head_impls: evaluate_all(head_cells, num_queues, node),
        tail_impls: evaluate_all(tail_cells, num_queues, node),
    }
}

/// Figure 10 point: a CFDS design with the given configuration and lookahead.
pub fn cfds_point(cfg: &CfdsConfig, lookahead: usize, node: &ProcessNode) -> DesignPoint {
    let head_cells = cfds_sizing::sram_cells(cfg, lookahead);
    let tail_cells =
        cfg.num_queues * (cfg.granularity - 1) + cfg.granularity + cfds_sizing::latency_slots(cfg);
    DesignPoint {
        design: "CFDS".to_string(),
        granularity: cfg.granularity,
        lookahead_slots: lookahead,
        delay_seconds: cfds_sizing::total_delay_seconds(cfg, lookahead),
        head_sram_cells: head_cells,
        tail_sram_cells: tail_cells,
        head_impls: evaluate_all(head_cells, cfg.num_queues, node),
        tail_impls: evaluate_all(tail_cells, cfg.num_queues, node),
    }
}

/// Head-SRAM size in bytes at a given lookahead (the §7.2 quotes).
pub fn rads_head_sram_bytes(num_queues: usize, big_b: usize, lookahead: usize) -> u64 {
    (rads_sizing::rads_sram_size_cells(lookahead, num_queues, big_b) * CELL_BYTES) as u64
}

/// Figure 11: the largest number of queues whose minimum-SRAM (maximum
/// lookahead) design still meets the line rate's access-time constraint.
///
/// `granularity` is `B` for the RADS column and `b` for the CFDS columns; a
/// CFDS evaluation also needs `big_b` and `num_banks`.
pub fn max_queues_meeting_target(
    line_rate: LineRate,
    granularity: usize,
    big_b: usize,
    num_banks: usize,
    node: &ProcessNode,
) -> usize {
    let meets = |q: usize| -> bool {
        if q == 0 {
            return true;
        }
        let point = if granularity >= big_b {
            rads_point(
                line_rate,
                q,
                big_b,
                rads_sizing::min_lookahead(q, big_b),
                node,
            )
        } else {
            let cfg = CfdsConfig::builder()
                .line_rate(line_rate)
                .num_queues(q)
                .granularity(granularity)
                .rads_granularity(big_b)
                .num_banks(num_banks)
                .build();
            match cfg {
                Ok(cfg) => cfds_point(&cfg, cfg.min_lookahead(), node),
                Err(_) => return false,
            }
        };
        point.meets(line_rate)
    };
    // Exponential probe then binary search.
    let mut lo = 0usize;
    let mut hi = 1usize;
    while hi <= 1 << 16 && meets(hi) {
        lo = hi;
        hi *= 2;
    }
    while lo + 1 < hi {
        let mid = lo + (hi - lo) / 2;
        if meets(mid) {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    lo
}

#[cfg(test)]
mod tests {
    use super::*;

    fn node() -> ProcessNode {
        ProcessNode::node_130nm()
    }

    #[test]
    fn sram_point_costs_grow_with_capacity() {
        for kind in SramImplKind::all() {
            let small = evaluate_sram_impl(kind, 1_000, 512, &node());
            let large = evaluate_sram_impl(kind, 100_000, 512, &node());
            assert!(large.access_time_ns > small.access_time_ns, "{kind:?}");
            assert!(large.area_cm2 > small.area_cm2, "{kind:?}");
            assert!(small.capacity_bytes > 64_000);
        }
    }

    #[test]
    fn time_mux_is_slower_but_smaller_than_parallel_linked_list() {
        let mux = evaluate_sram_impl(SramImplKind::UnifiedLinkedListTimeMux, 16_000, 512, &node());
        let par = evaluate_sram_impl(SramImplKind::UnifiedLinkedList, 16_000, 512, &node());
        assert!(mux.access_time_ns > par.access_time_ns);
        assert!(mux.area_cm2 < par.area_cm2);
    }

    #[test]
    fn paper_oc768_rads_is_feasible_and_oc3072_is_not() {
        // §7.2: RADS is fine at OC-768 (12.8 ns slot) even at the shortest
        // lookahead, but cannot meet OC-3072 (3.2 ns) even at the longest.
        let oc768 = rads_point(LineRate::Oc768, 128, 8, 64, &node());
        assert!(
            oc768.meets(LineRate::Oc768),
            "{}",
            oc768.best_access_time_ns()
        );
        let oc3072 = rads_point(
            LineRate::Oc3072,
            512,
            32,
            rads_sizing::min_lookahead(512, 32),
            &node(),
        );
        assert!(
            !oc3072.meets(LineRate::Oc3072),
            "{}",
            oc3072.best_access_time_ns()
        );
    }

    #[test]
    fn paper_oc3072_cfds_meets_the_constraint_with_modest_cost() {
        // §8.3: a CFDS system with b = 4 meets 3.2 ns with ~10 µs delay and
        // a fraction of a cm² of SRAM.
        let cfg = CfdsConfig::builder()
            .num_queues(512)
            .granularity(4)
            .rads_granularity(32)
            .num_banks(256)
            .build()
            .unwrap();
        let point = cfds_point(&cfg, cfg.min_lookahead(), &node());
        assert!(
            point.meets(LineRate::Oc3072),
            "{}",
            point.best_access_time_ns()
        );
        assert!(point.delay_seconds < 3e-5, "{}", point.delay_seconds);
        assert!(point.total_area_cm2() < 1.5, "{}", point.total_area_cm2());
        // And it is both faster and smaller than the RADS equivalent.
        let rads = rads_point(
            LineRate::Oc3072,
            512,
            32,
            rads_sizing::min_lookahead(512, 32),
            &node(),
        );
        assert!(point.best_access_time_ns() < rads.best_access_time_ns());
        assert!(point.total_area_cm2() < rads.total_area_cm2());
    }

    #[test]
    fn sram_byte_quotes_match_section_7_2() {
        // Max lookahead: ~1 MB at OC-3072, ~60 kB at OC-768.
        let oc3072 = rads_head_sram_bytes(512, 32, rads_sizing::min_lookahead(512, 32));
        assert!(oc3072 > 900_000 && oc3072 < 1_200_000, "{oc3072}");
        let oc768 = rads_head_sram_bytes(128, 8, rads_sizing::min_lookahead(128, 8));
        assert!(oc768 > 50_000 && oc768 < 70_000, "{oc768}");
    }

    #[test]
    fn max_queues_cfds_beats_rads_by_severalfold() {
        // Figure 11: CFDS supports several times more queues than RADS at
        // OC-3072 under the 3.2 ns constraint.
        let rads_max = max_queues_meeting_target(LineRate::Oc3072, 32, 32, 256, &node());
        let cfds_max = max_queues_meeting_target(LineRate::Oc3072, 4, 32, 256, &node());
        assert!(rads_max >= 32, "RADS supports some queues ({rads_max})");
        assert!(
            cfds_max as f64 >= 3.0 * rads_max as f64,
            "CFDS {cfds_max} vs RADS {rads_max}"
        );
        assert!(
            cfds_max >= 512,
            "CFDS reaches the paper's target Q (got {cfds_max})"
        );
    }

    #[test]
    fn best_kind_is_one_of_the_paper_candidates() {
        let point = rads_point(LineRate::Oc3072, 512, 32, 4096, &node());
        let kind = point.best_kind();
        assert!(matches!(
            kind,
            SramImplKind::GlobalCam | SramImplKind::UnifiedLinkedListTimeMux
        ));
        let head = point.head_impl(kind);
        assert!(head.access_time_ns > 0.0);
    }
}
