//! Declarative fabric experiments: whole-router scenarios, sweepable specs
//! and the lab integration.
//!
//! This module is the fabric-level mirror of [`crate::scenario`] /
//! [`crate::spec`]: a [`FabricScenario`] fully describes one `N×N`
//! VOQ-switch run (a `fabric::VoqSwitch`) — port count, per-port buffer
//! design (mixed allowed), traffic pattern, arbiter, egress line rate — and
//! a [`FabricSpec`] sweeps those axes into a cartesian product that
//! [`LabRunner::run_fabric`] executes deterministically across worker
//! threads.
//!
//! The four fabric workloads:
//!
//! * [`FabricWorkload::Uniform`] — every ingress port offers Bernoulli
//!   traffic spread uniformly over the outputs; admissible up to load 1.
//! * [`FabricWorkload::Hotspot`] — a fraction of every port's traffic
//!   converges on a few hot outputs (inadmissible at high load: backlog
//!   grows, the fabric must stay loss-free anyway).
//! * [`FabricWorkload::Incast`] — sustained many-to-one pressure on one
//!   output, auto-scaled to the admissibility edge
//!   ([`traffic::IncastArrivals::admissible_fraction`]).
//! * [`FabricWorkload::Bursty`] — per-port on/off trains with independent
//!   per-port phases (each port seeds its own generator), mean burst
//!   32 cells, gap length derived from the offered load.
//!
//! # The zero-loss envelope
//!
//! Within the *admissible* region — offered load at or below 95% of the
//! line rate per port, fabrics of 8 ports or more — every workload above
//! runs with **zero lost cells** on the worst-case designs (RADS, CFDS,
//! mixed), which is what the `pktbuf-lab fabric --smoke` gate checks. Two
//! boundaries are provisioning limits, not bugs, and are deliberate:
//!
//! * At exactly 100% stochastic load the fabric is critically loaded (no
//!   arbiter sustains unit throughput on a random matrix), backlog grows
//!   without bound and eventually fragments CFDS renaming — the §6
//!   phenomenon — until tail drops appear. Use a deterministic matrix or
//!   back off the load.
//! * A 4-port CFDS fabric under the bursty workload at ≥ 85% load sees
//!   mean bursts (32 cells) that are 8× its VOQ count; the resulting DRAM
//!   scheduler delay spikes exceed the latency register's compensation and
//!   occasional misses surface. Larger fabrics dilute a burst across more
//!   groups and do not exhibit this (see ROADMAP: fabric-aware latency
//!   register sizing).

use crate::lab::{run_sharded, LabRunner};
use crate::scenario::{normalize_name, serde_via_string, DesignKind, ParseNameError};
use crate::spec::{SpecError, Sweep};
pub use ::fabric::FabricRunReport;
use ::fabric::{ArbiterKind, FabricConfig, PortBuffer, VoqSwitch};
use pktbuf::PacketBuffer;
use pktbuf_model::{CfdsConfig, ConfigError, ConfigOverrides, DramTiming, LineRate, RadsConfig};
use serde::{de, Deserialize, Deserializer, Serialize, Serializer};
use std::fmt;
use std::str::FromStr;
use traffic::{stream_seed, BurstyArrivals, HotspotArrivals, IncastArrivals, UniformArrivals};

/// Which traffic matrix a fabric scenario applies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FabricWorkload {
    /// Uniform Bernoulli arrivals over all outputs.
    Uniform,
    /// A few hot outputs absorb most of every port's traffic.
    Hotspot,
    /// Many-to-one convergence on one output at the admissibility edge.
    Incast,
    /// On/off trains with independent per-port phase.
    Bursty,
}

impl FabricWorkload {
    /// All fabric workloads.
    pub fn all() -> [FabricWorkload; 4] {
        [
            FabricWorkload::Uniform,
            FabricWorkload::Hotspot,
            FabricWorkload::Incast,
            FabricWorkload::Bursty,
        ]
    }

    /// Kebab-case canonical name.
    pub fn label(self) -> &'static str {
        match self {
            FabricWorkload::Uniform => "uniform",
            FabricWorkload::Hotspot => "hotspot",
            FabricWorkload::Incast => "incast",
            FabricWorkload::Bursty => "bursty",
        }
    }
}

impl fmt::Display for FabricWorkload {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

impl FromStr for FabricWorkload {
    type Err = ParseNameError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match normalize_name(s).as_str() {
            "uniform" => Ok(FabricWorkload::Uniform),
            "hotspot" => Ok(FabricWorkload::Hotspot),
            "incast" => Ok(FabricWorkload::Incast),
            "bursty" => Ok(FabricWorkload::Bursty),
            _ => Err(ParseNameError::new(
                "fabric workload",
                s,
                "uniform, hotspot, incast, bursty",
            )),
        }
    }
}

/// How a fabric's ingress buffers are designed, port by port.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FabricDesign {
    /// Every port runs the same design.
    Fixed(DesignKind),
    /// Ports alternate CFDS and RADS (port `i` runs CFDS when `i` is even):
    /// the mixed-design case where per-port pipeline delays differ.
    Mixed,
}

impl FabricDesign {
    /// All fabric design choices, baselines first.
    pub fn all() -> [FabricDesign; 4] {
        [
            FabricDesign::Fixed(DesignKind::DramOnly),
            FabricDesign::Fixed(DesignKind::Rads),
            FabricDesign::Fixed(DesignKind::Cfds),
            FabricDesign::Mixed,
        ]
    }

    /// The design of port `port` under this choice.
    pub fn design_for_port(self, port: usize) -> DesignKind {
        match self {
            FabricDesign::Fixed(kind) => kind,
            FabricDesign::Mixed => {
                if port.is_multiple_of(2) {
                    DesignKind::Cfds
                } else {
                    DesignKind::Rads
                }
            }
        }
    }
}

impl fmt::Display for FabricDesign {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FabricDesign::Fixed(kind) => kind.fmt(f),
            FabricDesign::Mixed => f.write_str("mixed"),
        }
    }
}

impl FromStr for FabricDesign {
    type Err = ParseNameError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        if normalize_name(s) == "mixed" {
            return Ok(FabricDesign::Mixed);
        }
        s.parse::<DesignKind>()
            .map(FabricDesign::Fixed)
            .map_err(|_| ParseNameError::new("fabric design", s, "dram-only, rads, cfds, mixed"))
    }
}

/// Which crossbar arbiter a fabric scenario runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ArbiterChoice {
    /// iSLIP-style iterative matching.
    Islip,
    /// Greedy maximal-matching baseline.
    Maximal,
}

impl ArbiterChoice {
    /// Both arbiters, iSLIP first.
    pub fn all() -> [ArbiterChoice; 2] {
        [ArbiterChoice::Islip, ArbiterChoice::Maximal]
    }

    /// The fabric-crate arbiter kind, with `iterations` iSLIP iterations
    /// (`0` = auto).
    pub fn to_kind(self, iterations: usize) -> ArbiterKind {
        match self {
            ArbiterChoice::Islip => ArbiterKind::Islip { iterations },
            ArbiterChoice::Maximal => ArbiterKind::Maximal,
        }
    }
}

impl fmt::Display for ArbiterChoice {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            ArbiterChoice::Islip => "islip",
            ArbiterChoice::Maximal => "maximal",
        })
    }
}

impl FromStr for ArbiterChoice {
    type Err = ParseNameError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match normalize_name(s).as_str() {
            "islip" => Ok(ArbiterChoice::Islip),
            "maximal" | "maximalmatching" => Ok(ArbiterChoice::Maximal),
            _ => Err(ParseNameError::new("arbiter", s, "islip, maximal")),
        }
    }
}

serde_via_string!(FabricWorkload, "a fabric workload name");
serde_via_string!(
    FabricDesign,
    "a fabric design name (dram-only, rads, cfds, mixed)"
);
serde_via_string!(ArbiterChoice, "an arbiter name (islip, maximal)");

/// Why a fabric scenario is invalid.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FabricScenarioError {
    /// A fabric needs at least two ports.
    TooFewPorts(usize),
    /// Offered load must stay in (0, 100] percent.
    BadLoad(u64),
    /// A per-port buffer configuration is invalid.
    Config(ConfigError),
}

impl fmt::Display for FabricScenarioError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FabricScenarioError::TooFewPorts(p) => {
                write!(f, "a fabric needs at least 2 ports, got {p}")
            }
            FabricScenarioError::BadLoad(pct) => {
                write!(f, "offered load must be in (0, 100] percent, got {pct}")
            }
            FabricScenarioError::Config(e) => write!(f, "port buffer configuration: {e}"),
        }
    }
}

impl std::error::Error for FabricScenarioError {}

/// Mean on-burst length (cells) of the bursty fabric workload.
pub(crate) const FABRIC_BURST_CELLS: f64 = 32.0;
/// Fraction of hotspot traffic aimed at the hot outputs.
pub(crate) const FABRIC_HOT_FRACTION: f64 = 0.75;

/// Number of hot outputs in the hotspot fabric workload.
pub(crate) fn hot_output_count(ports: usize) -> usize {
    ports.div_ceil(8)
}

/// A fully specified fabric run: one expanded point of a [`FabricSpec`], or
/// a hand-built one-off.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FabricScenario {
    /// Number of ingress (= egress) ports; each ingress buffer holds one VOQ
    /// per egress port.
    pub ports: usize,
    /// Per-port buffer design.
    pub design: FabricDesign,
    /// Traffic matrix.
    pub workload: FabricWorkload,
    /// Crossbar arbiter.
    pub arbiter: ArbiterChoice,
    /// iSLIP iterations per slot (`0` = auto: `⌈log₂ ports⌉`).
    pub islip_iterations: u64,
    /// Line rate of every port.
    pub line_rate: LineRate,
    /// CFDS granularity `b` of CFDS ports.
    pub granularity: usize,
    /// RADS granularity `B` (all designs).
    pub rads_granularity: usize,
    /// DRAM banks `M` of CFDS ports.
    pub num_banks: usize,
    /// Offered load per ingress port, in percent of the line rate.
    pub load_percent: u64,
    /// Slots per transmitted cell at each egress port (1 = full line rate).
    pub egress_period: u64,
    /// Slots of the live-arrival phase (the drain runs until delivery).
    pub arrival_slots: u64,
    /// Base RNG seed; ingress port `p` seeds its generator with
    /// [`traffic::stream_seed`]`(seed, p)` (space multi-seed sweeps by more
    /// than the port count).
    pub seed: u64,
    /// Configuration knobs applied to every port buffer.
    pub overrides: ConfigOverrides,
}

impl FabricScenario {
    /// A small CFDS fabric useful as a smoke test: 4 ports, uniform traffic
    /// at 80% load, 4 000 active slots.
    pub fn small() -> Self {
        FabricScenario {
            ports: 4,
            design: FabricDesign::Fixed(DesignKind::Cfds),
            workload: FabricWorkload::Uniform,
            arbiter: ArbiterChoice::Islip,
            islip_iterations: 0,
            line_rate: LineRate::Oc3072,
            granularity: 2,
            rads_granularity: 8,
            num_banks: 16,
            load_percent: 80,
            egress_period: 1,
            arrival_slots: 4_000,
            seed: 1,
            overrides: ConfigOverrides::none(),
        }
    }

    /// Offered load per port as a fraction.
    pub fn load(&self) -> f64 {
        (self.load_percent as f64 / 100.0).clamp(0.0, 1.0)
    }

    /// The RADS configuration of this scenario's RADS/DRAM-only ports.
    ///
    /// Fabric ports provision `B` slots of lookahead on top of the ECQF
    /// minimum `Q(B−1)+1` (overridable through
    /// [`ConfigOverrides::lookahead`]). The minimum assumes the block chosen
    /// at a replenishment decision is usable immediately; in this workspace
    /// the DRAM read is in flight for `B` further slots, and a crossbar
    /// arbiter — unlike the single-buffer request generators — can produce
    /// a *jittered* lock-step drain (a port loses the odd matching round)
    /// that lands a due request exactly inside that in-flight window. One
    /// extra access time of notice restores the margin; a by-definition
    /// ECQF replay of such a trace misses without it, so this is a property
    /// of the model, not of this implementation.
    pub fn rads_config(&self) -> RadsConfig {
        let ecqf_minimum = self.ports * (self.rads_granularity - 1) + 1;
        self.overrides.apply_rads(RadsConfig {
            line_rate: self.line_rate,
            num_queues: self.ports,
            granularity: self.rads_granularity,
            lookahead: Some(ecqf_minimum + self.rads_granularity),
            dram: DramTiming::paper_design_point(),
        })
    }

    /// The CFDS configuration of this scenario's CFDS ports, or the reason
    /// it is invalid.
    ///
    /// Fabric ports default to a physical-queue oversubscription factor of
    /// `k = 2` (overridable through
    /// [`ConfigOverrides::physical_queue_factor`]): a fabric buffer has only
    /// `N` VOQs, and with `k = 1` a long single-destination burst starves
    /// the renaming table of free names (its read and write chains must live
    /// in different groups) — exactly the fragmentation §6's
    /// oversubscription exists to absorb.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] when the parameters violate the CFDS
    /// constraints (sweeps may produce such combinations; the spec layer
    /// skips them).
    pub fn try_cfds_config(&self) -> Result<CfdsConfig, ConfigError> {
        // Same in-flight margin as `rads_config`, at the CFDS granularity:
        // the ECQF minimum `Q(b−1)+1` assumes a replenishment decision is
        // usable immediately, while the selected b-block is in the DRAM for
        // one random access time (`B` slots); an arbiter-jittered lock-step
        // drain can land a due request inside that window.
        let ecqf_minimum = self.ports * (self.granularity - 1) + 1;
        self.overrides
            .apply_cfds(
                CfdsConfig::builder()
                    .line_rate(self.line_rate)
                    .num_queues(self.ports)
                    .physical_queue_factor(2)
                    .granularity(self.granularity)
                    .rads_granularity(self.rads_granularity)
                    .num_banks(self.num_banks)
                    .lookahead(ecqf_minimum + self.rads_granularity),
            )
            .build()
    }

    /// Checks that the scenario can be built and run.
    ///
    /// # Errors
    ///
    /// Returns [`FabricScenarioError`] when the port count, load or any
    /// per-port buffer configuration is invalid.
    pub fn validate(&self) -> Result<(), FabricScenarioError> {
        if self.ports < 2 {
            return Err(FabricScenarioError::TooFewPorts(self.ports));
        }
        if self.load_percent == 0 || self.load_percent > 100 {
            return Err(FabricScenarioError::BadLoad(self.load_percent));
        }
        let needs = |kind: DesignKind| -> Result<(), FabricScenarioError> {
            match kind {
                DesignKind::Cfds => self
                    .try_cfds_config()
                    .map(drop)
                    .map_err(FabricScenarioError::Config),
                DesignKind::DramOnly | DesignKind::Rads => self
                    .rads_config()
                    .validate()
                    .map_err(FabricScenarioError::Config),
            }
        };
        match self.design {
            FabricDesign::Fixed(kind) => needs(kind),
            FabricDesign::Mixed => {
                needs(DesignKind::Cfds)?;
                needs(DesignKind::Rads)
            }
        }
    }

    /// The fabric configuration (ports, egress rate, arbiter).
    pub fn fabric_config(&self) -> FabricConfig {
        FabricConfig {
            ports: self.ports,
            egress_period: self.egress_period.max(1),
            arbiter: self.arbiter.to_kind(self.islip_iterations as usize),
        }
    }

    fn build_port(&self, kind: DesignKind) -> PortBuffer {
        match kind {
            DesignKind::DramOnly => pktbuf::DramOnlyBuffer::new(self.rads_config()).into(),
            DesignKind::Rads => pktbuf::RadsBuffer::new(self.rads_config()).into(),
            DesignKind::Cfds => pktbuf::CfdsBuffer::new(
                self.try_cfds_config()
                    .expect("validated CFDS configuration"),
            )
            .into(),
        }
    }

    /// Runs the scenario to completion.
    ///
    /// Homogeneous fabrics monomorphize the switch over the concrete buffer
    /// type; mixed fabrics run over the `fabric::PortBuffer` enum.
    ///
    /// # Panics
    ///
    /// Panics when [`FabricScenario::validate`] would return an error.
    pub fn run(&self) -> FabricRunReport {
        match self.design {
            FabricDesign::Fixed(DesignKind::DramOnly) => {
                self.run_switch(|scenario, _| pktbuf::DramOnlyBuffer::new(scenario.rads_config()))
            }
            FabricDesign::Fixed(DesignKind::Rads) => {
                self.run_switch(|scenario, _| pktbuf::RadsBuffer::new(scenario.rads_config()))
            }
            FabricDesign::Fixed(DesignKind::Cfds) => self.run_switch(|scenario, _| {
                pktbuf::CfdsBuffer::new(
                    scenario
                        .try_cfds_config()
                        .expect("validated CFDS configuration"),
                )
            }),
            FabricDesign::Mixed => self.run_switch(|scenario, port| {
                scenario.build_port(FabricDesign::Mixed.design_for_port(port))
            }),
        }
    }

    fn run_switch<B, F>(&self, build: F) -> FabricRunReport
    where
        B: PacketBuffer,
        F: Fn(&FabricScenario, usize) -> B,
    {
        let buffers: Vec<B> = (0..self.ports).map(|p| build(self, p)).collect();
        let mut switch = VoqSwitch::new(self.fabric_config(), buffers);
        let ports = self.ports;
        let load = self.load();
        match self.workload {
            FabricWorkload::Uniform => {
                let mut arrivals: Vec<UniformArrivals> = (0..ports)
                    .map(|p| UniformArrivals::new(ports, load, stream_seed(self.seed, p as u64)))
                    .collect();
                switch.run(&mut arrivals, self.arrival_slots)
            }
            FabricWorkload::Hotspot => {
                let mut arrivals: Vec<HotspotArrivals> = (0..ports)
                    .map(|p| {
                        HotspotArrivals::new(
                            ports,
                            load,
                            hot_output_count(ports),
                            FABRIC_HOT_FRACTION,
                            stream_seed(self.seed, p as u64),
                        )
                    })
                    .collect();
                switch.run(&mut arrivals, self.arrival_slots)
            }
            FabricWorkload::Incast => {
                let fraction = IncastArrivals::admissible_fraction(ports, load);
                let mut arrivals: Vec<IncastArrivals> = (0..ports)
                    .map(|p| {
                        IncastArrivals::new(
                            ports,
                            load,
                            0,
                            fraction,
                            stream_seed(self.seed, p as u64),
                        )
                    })
                    .collect();
                switch.run(&mut arrivals, self.arrival_slots)
            }
            FabricWorkload::Bursty => {
                // Mean gap chosen so the long-run on-fraction equals the
                // offered load; per-port seeds give independent phases.
                let gap = FABRIC_BURST_CELLS * (1.0 - load) / load.max(f64::MIN_POSITIVE);
                let mut arrivals: Vec<BurstyArrivals> = (0..ports)
                    .map(|p| {
                        BurstyArrivals::new(
                            ports,
                            FABRIC_BURST_CELLS,
                            gap,
                            stream_seed(self.seed, p as u64),
                        )
                    })
                    .collect();
                switch.run(&mut arrivals, self.arrival_slots)
            }
        }
    }
}

// Hand-written serde: a scenario is a flat JSON object; only `ports` is
// required, everything else takes the `small()` defaults (with design,
// workload and sizing defaults documented there).
impl Serialize for FabricScenario {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        use serde::ser::SerializeStruct as _;
        let mut st = serializer.serialize_struct("FabricScenario", 14)?;
        st.serialize_field("ports", &self.ports)?;
        st.serialize_field("design", &self.design)?;
        st.serialize_field("workload", &self.workload)?;
        st.serialize_field("arbiter", &self.arbiter)?;
        st.serialize_field("islip_iterations", &self.islip_iterations)?;
        st.serialize_field("line_rate", &self.line_rate)?;
        st.serialize_field("granularity", &self.granularity)?;
        st.serialize_field("rads_granularity", &self.rads_granularity)?;
        st.serialize_field("num_banks", &self.num_banks)?;
        st.serialize_field("load_percent", &self.load_percent)?;
        st.serialize_field("egress_period", &self.egress_period)?;
        st.serialize_field("arrival_slots", &self.arrival_slots)?;
        st.serialize_field("seed", &self.seed)?;
        st.serialize_field("overrides", &self.overrides)?;
        st.end()
    }
}

impl<'de> Deserialize<'de> for FabricScenario {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct V;
        impl<'de> de::Visitor<'de> for V {
            type Value = FabricScenario;
            fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str("a fabric scenario object")
            }
            fn visit_map<A: de::MapAccess<'de>>(
                self,
                mut map: A,
            ) -> Result<FabricScenario, A::Error> {
                let mut scenario = FabricScenario::small();
                let mut saw_ports = false;
                while let Some(key) = map.next_key::<String>()? {
                    match key.as_str() {
                        "ports" => {
                            scenario.ports = map.next_value()?;
                            saw_ports = true;
                        }
                        "design" => scenario.design = map.next_value()?,
                        "workload" => scenario.workload = map.next_value()?,
                        "arbiter" => scenario.arbiter = map.next_value()?,
                        "islip_iterations" => scenario.islip_iterations = map.next_value()?,
                        "line_rate" => scenario.line_rate = map.next_value()?,
                        "granularity" => scenario.granularity = map.next_value()?,
                        "rads_granularity" => scenario.rads_granularity = map.next_value()?,
                        "num_banks" => scenario.num_banks = map.next_value()?,
                        "load_percent" => scenario.load_percent = map.next_value()?,
                        "egress_period" => scenario.egress_period = map.next_value()?,
                        "arrival_slots" => scenario.arrival_slots = map.next_value()?,
                        "seed" => scenario.seed = map.next_value()?,
                        "overrides" => scenario.overrides = map.next_value()?,
                        other => {
                            return Err(de::Error::custom(format_args!(
                                "unknown fabric scenario field {other:?}"
                            )))
                        }
                    }
                }
                if !saw_ports {
                    return Err(de::Error::custom("missing field \"ports\""));
                }
                Ok(scenario)
            }
        }
        deserializer.deserialize_any(V)
    }
}

/// A declarative, serializable fabric experiment: designs × workloads ×
/// arbiters × swept parameters × seeds, expanded into [`FabricScenario`]s.
#[derive(Debug, Clone, PartialEq)]
pub struct FabricSpec {
    /// Experiment name (used in reports and file names).
    pub name: String,
    /// Per-port design choices to cross (outermost axis).
    pub designs: Vec<FabricDesign>,
    /// Traffic matrices to cross.
    pub workloads: Vec<FabricWorkload>,
    /// Arbiters to cross.
    pub arbiters: Vec<ArbiterChoice>,
    /// Line rate shared by every run.
    pub line_rate: LineRate,
    /// Sweep of the port count `N`.
    pub ports: Sweep,
    /// Sweep of the per-port offered load, percent.
    pub load_percent: Sweep,
    /// Sweep of the CFDS granularity `b`.
    pub granularity: Sweep,
    /// Sweep of the RADS granularity `B`.
    pub rads_granularity: Sweep,
    /// Sweep of the DRAM banks `M`.
    pub num_banks: Sweep,
    /// iSLIP iterations per slot (`0` = auto).
    pub islip_iterations: u64,
    /// Slots per transmitted cell at each egress port.
    pub egress_period: u64,
    /// Live-arrival slots per run.
    pub arrival_slots: u64,
    /// Seeds to cross (innermost axis).
    pub seeds: Vec<u64>,
    /// Configuration knobs applied to every port buffer.
    pub overrides: ConfigOverrides,
}

impl FabricSpec {
    /// Starts a builder with smoke-test defaults (8-port CFDS fabric,
    /// uniform traffic at 90% load under iSLIP, 10 000 live slots, seed 1).
    pub fn builder() -> FabricSpecBuilder {
        FabricSpecBuilder::default()
    }

    /// Expands the spec into the cartesian product of its axes, in a fixed
    /// documented order: designs ▸ workloads ▸ arbiters ▸ ports ▸ load ▸
    /// granularity ▸ RADS granularity ▸ banks ▸ seeds (left outermost).
    /// Invalid combinations are skipped and counted; the CFDS-only axes
    /// (`granularity`, `num_banks`) collapse to their first value for
    /// fabrics without CFDS ports.
    ///
    /// # Errors
    ///
    /// Returns [`SpecError`] when an axis is empty or malformed, or when
    /// every combination is invalid.
    pub fn expand(&self) -> Result<FabricExpansion, SpecError> {
        if self.designs.is_empty() {
            return Err(SpecError::EmptyAxis("designs"));
        }
        if self.workloads.is_empty() {
            return Err(SpecError::EmptyAxis("workloads"));
        }
        if self.arbiters.is_empty() {
            return Err(SpecError::EmptyAxis("arbiters"));
        }
        if self.seeds.is_empty() {
            return Err(SpecError::EmptyAxis("seeds"));
        }
        let ports = self.ports.values()?;
        let loads = self.load_percent.values()?;
        let granularities = self.granularity.values()?;
        let rads_granularities = self.rads_granularity.values()?;
        let banks = self.num_banks.values()?;
        let mut runs = Vec::new();
        let mut skipped_invalid = 0usize;
        for design in &self.designs {
            // `b` and `M` only matter where CFDS ports exist; crossing the
            // pure-RADS/DRAM-only fabrics with them would repeat identical
            // runs and over-weight those designs in the aggregate.
            let (granularities, banks): (&[u64], &[u64]) = match design {
                FabricDesign::Fixed(DesignKind::DramOnly)
                | FabricDesign::Fixed(DesignKind::Rads) => (&granularities[..1], &banks[..1]),
                FabricDesign::Fixed(DesignKind::Cfds) | FabricDesign::Mixed => {
                    (&granularities, &banks)
                }
            };
            for workload in &self.workloads {
                for arbiter in &self.arbiters {
                    for n in &ports {
                        for load in &loads {
                            for b in granularities {
                                for big_b in &rads_granularities {
                                    for m in banks {
                                        for seed in &self.seeds {
                                            let scenario = FabricScenario {
                                                ports: *n as usize,
                                                design: *design,
                                                workload: *workload,
                                                arbiter: *arbiter,
                                                islip_iterations: self.islip_iterations,
                                                line_rate: self.line_rate,
                                                granularity: *b as usize,
                                                rads_granularity: *big_b as usize,
                                                num_banks: *m as usize,
                                                load_percent: *load,
                                                egress_period: self.egress_period,
                                                arrival_slots: self.arrival_slots,
                                                seed: *seed,
                                                overrides: self.overrides,
                                            };
                                            if scenario.validate().is_ok() {
                                                runs.push(scenario);
                                            } else {
                                                skipped_invalid += 1;
                                            }
                                        }
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
        if runs.is_empty() {
            return Err(SpecError::NoValidRuns);
        }
        Ok(FabricExpansion {
            runs,
            skipped_invalid,
        })
    }

    /// Renders the spec as pretty JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("a fabric spec always serializes")
    }

    /// Parses a spec from JSON text.
    ///
    /// # Errors
    ///
    /// Returns [`SpecError::Json`] on malformed JSON or unknown/ill-typed
    /// fields.
    pub fn from_json(text: &str) -> Result<Self, SpecError> {
        serde_json::from_str(text).map_err(|e| SpecError::Json(e.to_string()))
    }
}

/// The result of expanding a fabric spec.
#[derive(Debug, Clone, PartialEq)]
pub struct FabricExpansion {
    /// The valid runs, in expansion order.
    pub runs: Vec<FabricScenario>,
    /// Combinations skipped because they were invalid.
    pub skipped_invalid: usize,
}

/// Builder for [`FabricSpec`].
#[derive(Debug, Clone)]
pub struct FabricSpecBuilder {
    spec: FabricSpec,
}

impl Default for FabricSpecBuilder {
    fn default() -> Self {
        FabricSpecBuilder {
            spec: FabricSpec {
                name: "fabric".to_owned(),
                designs: vec![FabricDesign::Fixed(DesignKind::Cfds)],
                workloads: vec![FabricWorkload::Uniform],
                arbiters: vec![ArbiterChoice::Islip],
                line_rate: LineRate::Oc3072,
                ports: Sweep::Fixed(8),
                load_percent: Sweep::Fixed(90),
                granularity: Sweep::Fixed(4),
                rads_granularity: Sweep::Fixed(16),
                num_banks: Sweep::Fixed(64),
                islip_iterations: 0,
                egress_period: 1,
                arrival_slots: 10_000,
                seeds: vec![1],
                overrides: ConfigOverrides::none(),
            },
        }
    }
}

impl FabricSpecBuilder {
    /// Sets the experiment name.
    pub fn name(mut self, name: impl Into<String>) -> Self {
        self.spec.name = name.into();
        self
    }

    /// Sets the designs axis.
    pub fn designs(mut self, designs: impl IntoIterator<Item = FabricDesign>) -> Self {
        self.spec.designs = designs.into_iter().collect();
        self
    }

    /// Sets the workloads axis.
    pub fn workloads(mut self, workloads: impl IntoIterator<Item = FabricWorkload>) -> Self {
        self.spec.workloads = workloads.into_iter().collect();
        self
    }

    /// Sets the arbiters axis.
    pub fn arbiters(mut self, arbiters: impl IntoIterator<Item = ArbiterChoice>) -> Self {
        self.spec.arbiters = arbiters.into_iter().collect();
        self
    }

    /// Sets the line rate.
    pub fn line_rate(mut self, rate: LineRate) -> Self {
        self.spec.line_rate = rate;
        self
    }

    /// Sets the port-count axis.
    pub fn ports(mut self, sweep: Sweep) -> Self {
        self.spec.ports = sweep;
        self
    }

    /// Sets the offered-load axis (percent).
    pub fn load_percent(mut self, sweep: Sweep) -> Self {
        self.spec.load_percent = sweep;
        self
    }

    /// Sets the CFDS granularity axis.
    pub fn granularity(mut self, sweep: Sweep) -> Self {
        self.spec.granularity = sweep;
        self
    }

    /// Sets the RADS granularity axis.
    pub fn rads_granularity(mut self, sweep: Sweep) -> Self {
        self.spec.rads_granularity = sweep;
        self
    }

    /// Sets the DRAM banks axis.
    pub fn num_banks(mut self, sweep: Sweep) -> Self {
        self.spec.num_banks = sweep;
        self
    }

    /// Sets the iSLIP iteration count (`0` = auto).
    pub fn islip_iterations(mut self, iterations: u64) -> Self {
        self.spec.islip_iterations = iterations;
        self
    }

    /// Sets the egress period (slots per transmitted cell).
    pub fn egress_period(mut self, period: u64) -> Self {
        self.spec.egress_period = period;
        self
    }

    /// Sets the number of live-arrival slots.
    pub fn arrival_slots(mut self, slots: u64) -> Self {
        self.spec.arrival_slots = slots;
        self
    }

    /// Sets the seeds axis.
    pub fn seeds(mut self, seeds: impl IntoIterator<Item = u64>) -> Self {
        self.spec.seeds = seeds.into_iter().collect();
        self
    }

    /// Sets the configuration overrides applied to every port buffer.
    pub fn overrides(mut self, overrides: ConfigOverrides) -> Self {
        self.spec.overrides = overrides;
        self
    }

    /// Finalises the spec, checking that it expands to at least one run.
    ///
    /// # Errors
    ///
    /// Propagates any [`SpecError`] from [`FabricSpec::expand`].
    pub fn build(self) -> Result<FabricSpec, SpecError> {
        self.spec.expand()?;
        Ok(self.spec)
    }
}

impl Serialize for FabricSpec {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        use serde::ser::SerializeStruct as _;
        let mut st = serializer.serialize_struct("FabricSpec", 16)?;
        st.serialize_field("name", &self.name)?;
        st.serialize_field("designs", &self.designs)?;
        st.serialize_field("workloads", &self.workloads)?;
        st.serialize_field("arbiters", &self.arbiters)?;
        st.serialize_field("line_rate", &self.line_rate)?;
        st.serialize_field("ports", &self.ports)?;
        st.serialize_field("load_percent", &self.load_percent)?;
        st.serialize_field("granularity", &self.granularity)?;
        st.serialize_field("rads_granularity", &self.rads_granularity)?;
        st.serialize_field("num_banks", &self.num_banks)?;
        st.serialize_field("islip_iterations", &self.islip_iterations)?;
        st.serialize_field("egress_period", &self.egress_period)?;
        st.serialize_field("arrival_slots", &self.arrival_slots)?;
        st.serialize_field("seeds", &self.seeds)?;
        st.serialize_field("overrides", &self.overrides)?;
        st.serialize_field("kind", &"fabric")?;
        st.end()
    }
}

impl<'de> Deserialize<'de> for FabricSpec {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct V;
        impl<'de> de::Visitor<'de> for V {
            type Value = FabricSpec;
            fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str("a fabric-spec object")
            }
            fn visit_map<A: de::MapAccess<'de>>(self, mut map: A) -> Result<FabricSpec, A::Error> {
                // Unknown fields are rejected; omitted fields keep the
                // builder defaults, so a minimal spec file stays minimal.
                let mut spec = FabricSpecBuilder::default().spec;
                while let Some(key) = map.next_key::<String>()? {
                    match key.as_str() {
                        "name" => spec.name = map.next_value()?,
                        "designs" => spec.designs = map.next_value()?,
                        "workloads" => spec.workloads = map.next_value()?,
                        "arbiters" => spec.arbiters = map.next_value()?,
                        "line_rate" => spec.line_rate = map.next_value()?,
                        "ports" => spec.ports = map.next_value()?,
                        "load_percent" => spec.load_percent = map.next_value()?,
                        "granularity" => spec.granularity = map.next_value()?,
                        "rads_granularity" => spec.rads_granularity = map.next_value()?,
                        "num_banks" => spec.num_banks = map.next_value()?,
                        "islip_iterations" => spec.islip_iterations = map.next_value()?,
                        "egress_period" => spec.egress_period = map.next_value()?,
                        "arrival_slots" => spec.arrival_slots = map.next_value()?,
                        "seeds" => spec.seeds = map.next_value()?,
                        "overrides" => spec.overrides = map.next_value()?,
                        "kind" => {
                            let kind: String = map.next_value()?;
                            if kind != "fabric" {
                                return Err(de::Error::custom(format_args!(
                                    "not a fabric spec (kind {kind:?})"
                                )));
                            }
                        }
                        other => {
                            return Err(de::Error::custom(format_args!(
                                "unknown fabric spec field {other:?}"
                            )))
                        }
                    }
                }
                Ok(spec)
            }
        }
        deserializer.deserialize_any(V)
    }
}

/// One executed fabric run.
#[derive(Debug, Clone, PartialEq)]
pub struct FabricRunRecord {
    /// Index of this run in the spec's expansion order.
    pub index: usize,
    /// The exact parameters of the run.
    pub scenario: FabricScenario,
    /// The fabric outcome.
    pub report: FabricRunReport,
}

impl Serialize for FabricRunRecord {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        use serde::ser::SerializeStruct as _;
        let mut st = serializer.serialize_struct("FabricRunRecord", 3)?;
        st.serialize_field("index", &self.index)?;
        st.serialize_field("scenario", &self.scenario)?;
        st.serialize_field("report", &self.report)?;
        st.end()
    }
}

/// Aggregate statistics over every run of a fabric experiment.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct FabricAggregate {
    /// Number of runs executed.
    pub runs: u64,
    /// Runs that lost no cell (and upheld every per-port guarantee).
    pub zero_loss_runs: u64,
    /// Whether every run was zero-loss.
    pub all_zero_loss: bool,
    /// Total cells arrived across runs.
    pub total_arrivals: u64,
    /// Total cells transmitted across runs.
    pub total_transmitted: u64,
    /// Total cells lost across runs (must stay 0).
    pub total_lost_cells: u64,
    /// Total cells resident in ingress buffers at run end.
    pub total_resident_cells: u64,
    /// Mean crossbar utilisation over runs (unweighted).
    pub mean_crossbar_utilization: f64,
    /// Smallest crossbar utilisation any run saw.
    pub min_crossbar_utilization: f64,
    /// Largest end-to-end latency any run saw (slots).
    pub max_latency_slots: u64,
    /// Deepest egress FIFO any run saw (cells).
    pub peak_egress_depth: u64,
}

impl Serialize for FabricAggregate {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        use serde::ser::SerializeStruct as _;
        let mut st = serializer.serialize_struct("FabricAggregate", 11)?;
        st.serialize_field("runs", &self.runs)?;
        st.serialize_field("zero_loss_runs", &self.zero_loss_runs)?;
        st.serialize_field("all_zero_loss", &self.all_zero_loss)?;
        st.serialize_field("total_arrivals", &self.total_arrivals)?;
        st.serialize_field("total_transmitted", &self.total_transmitted)?;
        st.serialize_field("total_lost_cells", &self.total_lost_cells)?;
        st.serialize_field("total_resident_cells", &self.total_resident_cells)?;
        st.serialize_field("mean_crossbar_utilization", &self.mean_crossbar_utilization)?;
        st.serialize_field("min_crossbar_utilization", &self.min_crossbar_utilization)?;
        st.serialize_field("max_latency_slots", &self.max_latency_slots)?;
        st.serialize_field("peak_egress_depth", &self.peak_egress_depth)?;
        st.end()
    }
}

/// The structured result of executing a whole [`FabricSpec`].
#[derive(Debug, Clone, PartialEq)]
pub struct FabricLabReport {
    /// The spec that was executed.
    pub spec: FabricSpec,
    /// Combinations skipped during expansion.
    pub skipped_invalid: usize,
    /// Per-run results, in expansion order.
    pub runs: Vec<FabricRunRecord>,
    /// Aggregates over `runs`.
    pub aggregate: FabricAggregate,
}

impl Serialize for FabricLabReport {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        use serde::ser::SerializeStruct as _;
        let mut st = serializer.serialize_struct("FabricLabReport", 4)?;
        st.serialize_field("spec", &self.spec)?;
        st.serialize_field("skipped_invalid", &self.skipped_invalid)?;
        st.serialize_field("aggregate", &self.aggregate)?;
        st.serialize_field("runs", &self.runs)?;
        st.end()
    }
}

impl FabricLabReport {
    /// Renders the report as pretty JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("a fabric report always serializes")
    }

    /// Renders one CSV row per run (with a header).
    pub fn to_csv(&self) -> String {
        let mut table = crate::report::TextTable::new(vec![
            "index",
            "ports",
            "design",
            "workload",
            "arbiter",
            "load_percent",
            "egress_period",
            "seed",
            "slots",
            "arrivals",
            "transmitted",
            "lost_cells",
            "resident_cells",
            "matches",
            "crossbar_utilization",
            "mean_latency_slots",
            "max_latency_slots",
            "zero_loss",
        ]);
        for run in &self.runs {
            let s = &run.scenario;
            let r = &run.report;
            table.push_row(vec![
                run.index.to_string(),
                s.ports.to_string(),
                s.design.to_string(),
                s.workload.to_string(),
                s.arbiter.to_string(),
                s.load_percent.to_string(),
                s.egress_period.to_string(),
                s.seed.to_string(),
                r.slots.to_string(),
                r.arrivals.to_string(),
                r.transmitted.to_string(),
                r.lost_cells.to_string(),
                r.resident_cells.to_string(),
                r.matches.to_string(),
                format!("{:.6}", r.crossbar_utilization),
                format!("{:.3}", r.mean_latency_slots),
                r.max_latency_slots.to_string(),
                r.zero_loss.to_string(),
            ]);
        }
        table.to_csv()
    }
}

impl LabRunner {
    /// Expands `spec` and executes every fabric run, exactly like
    /// [`LabRunner::run`] does for single-buffer experiments: runs shard
    /// over the worker threads through an atomic cursor and results are
    /// stored by index, so the report is identical whatever the worker
    /// count.
    ///
    /// # Errors
    ///
    /// Returns [`SpecError`] when the spec does not expand.
    ///
    /// # Panics
    ///
    /// Panics if a worker thread panics.
    pub fn run_fabric(&self, spec: &FabricSpec) -> Result<FabricLabReport, SpecError> {
        let expansion = spec.expand()?;
        let runs = run_sharded(self.threads(), expansion.runs.len(), |index| {
            let scenario = expansion.runs[index];
            let report = scenario.run();
            FabricRunRecord {
                index,
                scenario,
                report,
            }
        });
        let aggregate = aggregate_fabric(&runs);
        Ok(FabricLabReport {
            spec: spec.clone(),
            skipped_invalid: expansion.skipped_invalid,
            runs,
            aggregate,
        })
    }
}

fn aggregate_fabric(runs: &[FabricRunRecord]) -> FabricAggregate {
    let mut agg = FabricAggregate {
        all_zero_loss: true,
        min_crossbar_utilization: f64::INFINITY,
        ..FabricAggregate::default()
    };
    let mut utilization_sum = 0.0f64;
    for run in runs {
        let r = &run.report;
        agg.runs += 1;
        if r.zero_loss {
            agg.zero_loss_runs += 1;
        } else {
            agg.all_zero_loss = false;
        }
        agg.total_arrivals += r.arrivals;
        agg.total_transmitted += r.transmitted;
        agg.total_lost_cells += r.lost_cells;
        agg.total_resident_cells += r.resident_cells;
        utilization_sum += r.crossbar_utilization;
        agg.min_crossbar_utilization = agg.min_crossbar_utilization.min(r.crossbar_utilization);
        agg.max_latency_slots = agg.max_latency_slots.max(r.max_latency_slots);
        agg.peak_egress_depth = agg.peak_egress_depth.max(
            r.per_output
                .iter()
                .map(|o| o.peak_queue_depth)
                .max()
                .unwrap_or(0),
        );
    }
    if agg.runs > 0 {
        agg.mean_crossbar_utilization = utilization_sum / agg.runs as f64;
    } else {
        agg.min_crossbar_utilization = 0.0;
    }
    agg
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_fabric_scenario_is_zero_loss_and_conserving() {
        let report = FabricScenario::small().run();
        assert!(report.zero_loss, "{report:?}");
        assert!(report.conservation_holds());
        assert_eq!(report.ports, 4);
        assert!(report.arrivals > 2_000);
        assert!(report.crossbar_utilization > 0.5);
    }

    #[test]
    fn every_workload_runs_zero_loss_on_every_design() {
        for design in FabricDesign::all() {
            for workload in FabricWorkload::all() {
                let scenario = FabricScenario {
                    design,
                    workload,
                    arrival_slots: 1_200,
                    load_percent: 70,
                    ..FabricScenario::small()
                };
                let report = scenario.run();
                // The DRAM-only baseline misses under back-to-back requests
                // — that is its point; every worst-case design must not.
                if design == FabricDesign::Fixed(DesignKind::DramOnly) {
                    assert!(report.conservation_holds(), "{design}/{workload}");
                } else {
                    assert!(
                        report.zero_loss && report.conservation_holds(),
                        "{design}/{workload}: {report:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn both_arbiters_and_slow_egress_stay_zero_loss() {
        for arbiter in ArbiterChoice::all() {
            let scenario = FabricScenario {
                arbiter,
                egress_period: 3,
                load_percent: 30,
                arrival_slots: 2_000,
                ..FabricScenario::small()
            };
            let report = scenario.run();
            assert!(report.zero_loss, "{arbiter}: {report:?}");
            assert_eq!(report.arbiter, arbiter.to_string());
            assert!(report.crossbar_utilization <= 1.0 / 3.0 + 1e-9);
        }
    }

    #[test]
    fn fabric_names_round_trip() {
        for workload in FabricWorkload::all() {
            let text = workload.to_string();
            assert_eq!(text.parse::<FabricWorkload>().unwrap(), workload, "{text}");
        }
        for design in FabricDesign::all() {
            let text = design.to_string();
            assert_eq!(text.parse::<FabricDesign>().unwrap(), design, "{text}");
        }
        for arbiter in ArbiterChoice::all() {
            let text = arbiter.to_string();
            assert_eq!(text.parse::<ArbiterChoice>().unwrap(), arbiter, "{text}");
        }
        assert!("warp".parse::<FabricDesign>().is_err());
        assert!("chaos".parse::<FabricWorkload>().is_err());
        assert!("random".parse::<ArbiterChoice>().is_err());
    }

    #[test]
    fn mixed_design_alternates_cfds_and_rads() {
        assert_eq!(FabricDesign::Mixed.design_for_port(0), DesignKind::Cfds);
        assert_eq!(FabricDesign::Mixed.design_for_port(1), DesignKind::Rads);
        let report = FabricScenario {
            design: FabricDesign::Mixed,
            arrival_slots: 800,
            ..FabricScenario::small()
        }
        .run();
        assert_eq!(report.per_port[0].design, "CFDS");
        assert_eq!(report.per_port[1].design, "RADS");
        assert!(report.zero_loss);
    }

    #[test]
    fn scenario_validation_catches_bad_parameters() {
        assert!(FabricScenario::small().validate().is_ok());
        let too_small = FabricScenario {
            ports: 1,
            ..FabricScenario::small()
        };
        assert_eq!(
            too_small.validate(),
            Err(FabricScenarioError::TooFewPorts(1))
        );
        let silly_load = FabricScenario {
            load_percent: 150,
            ..FabricScenario::small()
        };
        assert_eq!(
            silly_load.validate(),
            Err(FabricScenarioError::BadLoad(150))
        );
        let bad_cfds = FabricScenario {
            granularity: 3, // does not divide B = 8
            ..FabricScenario::small()
        };
        assert!(bad_cfds.validate().is_err());
    }

    #[test]
    fn spec_expands_and_collapses_cfds_axes() {
        let spec = FabricSpec::builder()
            .designs([
                FabricDesign::Fixed(DesignKind::Rads),
                FabricDesign::Fixed(DesignKind::Cfds),
            ])
            .workloads([FabricWorkload::Uniform, FabricWorkload::Incast])
            .ports(Sweep::list([4, 8]))
            .granularity(Sweep::list([2, 4]))
            .rads_granularity(Sweep::fixed(8))
            .num_banks(Sweep::fixed(16))
            .arrival_slots(500)
            .build()
            .unwrap();
        let expansion = spec.expand().unwrap();
        let rads_runs = expansion
            .runs
            .iter()
            .filter(|r| r.design == FabricDesign::Fixed(DesignKind::Rads))
            .count();
        let cfds_runs = expansion
            .runs
            .iter()
            .filter(|r| r.design == FabricDesign::Fixed(DesignKind::Cfds))
            .count();
        assert_eq!(rads_runs, 2 * 2, "granularity axis collapses for RADS");
        assert_eq!(cfds_runs, 2 * 2 * 2, "CFDS keeps the granularity axis");
        assert_eq!(expansion.skipped_invalid, 0);
    }

    #[test]
    fn spec_round_trips_through_json() {
        let spec = FabricSpec::builder()
            .name("fabric-sweep")
            .designs(FabricDesign::all())
            .workloads(FabricWorkload::all())
            .arbiters(ArbiterChoice::all())
            .ports(Sweep::doubling(4, 16))
            .load_percent(Sweep::list([60, 90]))
            .arrival_slots(2_000)
            .seeds([1, 101])
            .build()
            .unwrap();
        let json = spec.to_json();
        let back = FabricSpec::from_json(&json).unwrap();
        assert_eq!(back, spec);
        assert_eq!(back.to_json(), json);
        // A minimal spec takes the builder defaults.
        let minimal = FabricSpec::from_json("{\"name\": \"tiny\"}").unwrap();
        assert_eq!(minimal.name, "tiny");
        assert_eq!(minimal.ports, Sweep::Fixed(8));
        // Unknown fields and foreign kinds are rejected.
        assert!(FabricSpec::from_json("{\"mystery\": 1}").is_err());
        assert!(FabricSpec::from_json("{\"kind\": \"experiment\"}").is_err());
    }

    #[test]
    fn scenario_round_trips_through_json() {
        let scenario = FabricScenario {
            design: FabricDesign::Mixed,
            workload: FabricWorkload::Incast,
            arbiter: ArbiterChoice::Maximal,
            seed: 99,
            ..FabricScenario::small()
        };
        let json = serde_json::to_string_pretty(scenario).unwrap();
        let back: FabricScenario = serde_json::from_str(&json).unwrap();
        assert_eq!(back, scenario);
        let minimal: FabricScenario = serde_json::from_str("{\"ports\": 8}").unwrap();
        assert_eq!(minimal.ports, 8);
        assert_eq!(minimal.workload, FabricWorkload::Uniform);
        assert!(serde_json::from_str::<FabricScenario>("{}").is_err());
    }

    #[test]
    fn lab_runner_report_is_thread_count_invariant() {
        let spec = FabricSpec::builder()
            .designs([FabricDesign::Fixed(DesignKind::Rads), FabricDesign::Mixed])
            .workloads([FabricWorkload::Uniform, FabricWorkload::Bursty])
            .ports(Sweep::fixed(4))
            .load_percent(Sweep::fixed(75))
            .granularity(Sweep::fixed(2))
            .rads_granularity(Sweep::fixed(8))
            .num_banks(Sweep::fixed(16))
            .arrival_slots(600)
            .build()
            .unwrap();
        let single = LabRunner::new().with_threads(1).run_fabric(&spec).unwrap();
        let multi = LabRunner::new().with_threads(4).run_fabric(&spec).unwrap();
        assert_eq!(single, multi);
        assert_eq!(single.to_json(), multi.to_json());
        assert_eq!(single.to_csv(), multi.to_csv());
        assert_eq!(single.runs.len(), 4);
        assert!(single.aggregate.all_zero_loss);
        assert!(single.aggregate.mean_crossbar_utilization > 0.0);
        let csv = single.to_csv();
        assert_eq!(csv.lines().count(), 1 + single.runs.len());
        assert!(csv.starts_with("index,ports,design"));
    }
}
