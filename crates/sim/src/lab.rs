//! The experiment runner: executes an expanded [`ExperimentSpec`] across a
//! pool of worker threads and collects structured results.
//!
//! [`LabRunner`] is deliberately simple: every run owns its buffer and its
//! generators (a [`crate::SimulationEngine`] drives exactly one run), so runs
//! are embarrassingly parallel. Workers pull run indices from a shared atomic
//! counter and write each [`RunRecord`] back into its slot, which makes the
//! report **bit-identical regardless of the worker count** — the property the
//! determinism tests pin down.

use crate::scenario::Scenario;
use crate::spec::{ExperimentSpec, SpecError};
use crate::SimulationReport;
use serde::{Serialize, Serializer};
use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// One executed run: the scenario that was run and what happened.
#[derive(Debug, Clone, PartialEq)]
pub struct RunRecord {
    /// Index of this run in the spec's expansion order.
    pub index: usize,
    /// The exact parameters of the run.
    pub scenario: Scenario,
    /// The simulation outcome.
    pub report: SimulationReport,
}

impl Serialize for RunRecord {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        use serde::ser::SerializeStruct as _;
        let mut st = serializer.serialize_struct("RunRecord", 3)?;
        st.serialize_field("index", &self.index)?;
        st.serialize_field("scenario", &self.scenario)?;
        st.serialize_field("report", &self.report)?;
        st.end()
    }
}

/// Aggregate statistics over every run of an experiment.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct LabAggregate {
    /// Number of runs executed.
    pub runs: u64,
    /// Runs that upheld every worst-case guarantee.
    pub loss_free_runs: u64,
    /// Total cells granted across runs.
    pub total_grants: u64,
    /// Total misses across runs (0 wherever the paper claims zero-miss).
    pub total_misses: u64,
    /// Total drops across runs.
    pub total_drops: u64,
    /// Total bank conflicts across runs (must stay 0 for CFDS).
    pub total_bank_conflicts: u64,
    /// Largest head-SRAM occupancy any run observed (cells).
    pub peak_head_sram_cells: u64,
    /// Largest requests-register occupancy any run observed (entries).
    pub peak_rr_entries: u64,
    /// Mean grants/slot over the runs (unweighted).
    pub mean_grants_per_slot: f64,
    /// Whether every run was loss-free.
    pub all_loss_free: bool,
}

impl Serialize for LabAggregate {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        use serde::ser::SerializeStruct as _;
        let mut st = serializer.serialize_struct("LabAggregate", 10)?;
        st.serialize_field("runs", &self.runs)?;
        st.serialize_field("loss_free_runs", &self.loss_free_runs)?;
        st.serialize_field("total_grants", &self.total_grants)?;
        st.serialize_field("total_misses", &self.total_misses)?;
        st.serialize_field("total_drops", &self.total_drops)?;
        st.serialize_field("total_bank_conflicts", &self.total_bank_conflicts)?;
        st.serialize_field("peak_head_sram_cells", &self.peak_head_sram_cells)?;
        st.serialize_field("peak_rr_entries", &self.peak_rr_entries)?;
        st.serialize_field("mean_grants_per_slot", &self.mean_grants_per_slot)?;
        st.serialize_field("all_loss_free", &self.all_loss_free)?;
        st.end()
    }
}

/// The structured result of executing a whole [`ExperimentSpec`].
#[derive(Debug, Clone, PartialEq)]
pub struct ExperimentReport {
    /// The spec that was executed (echoed so a report is self-describing).
    pub spec: ExperimentSpec,
    /// Combinations skipped during expansion (invalid configurations).
    pub skipped_invalid: usize,
    /// Per-run results, in expansion order.
    pub runs: Vec<RunRecord>,
    /// Aggregates over `runs`.
    pub aggregate: LabAggregate,
}

impl Serialize for ExperimentReport {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        use serde::ser::SerializeStruct as _;
        let mut st = serializer.serialize_struct("ExperimentReport", 4)?;
        st.serialize_field("spec", &self.spec)?;
        st.serialize_field("skipped_invalid", &self.skipped_invalid)?;
        st.serialize_field("aggregate", &self.aggregate)?;
        st.serialize_field("runs", &self.runs)?;
        st.end()
    }
}

impl ExperimentReport {
    /// Renders the report as pretty JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("an experiment report always serializes")
    }

    /// Renders one CSV row per run (with a header), for spreadsheet-side
    /// analysis.
    pub fn to_csv(&self) -> String {
        let mut table = crate::report::TextTable::new(vec![
            "index",
            "design",
            "workload",
            "line_rate_gbps",
            "num_queues",
            "granularity",
            "rads_granularity",
            "num_banks",
            "preload_cells_per_queue",
            "arrival_slots",
            "seed",
            "slots",
            "grants",
            "misses",
            "drops",
            "bank_conflicts",
            "peak_head_sram_cells",
            "peak_rr_entries",
            "grants_per_slot",
            "loss_free",
        ]);
        for run in &self.runs {
            let s = &run.scenario;
            let r = &run.report;
            table.push_row(vec![
                run.index.to_string(),
                s.design.to_string(),
                s.workload.to_string(),
                format!("{}", s.line_rate.gbps()),
                s.num_queues.to_string(),
                s.granularity.to_string(),
                s.rads_granularity.to_string(),
                s.num_banks.to_string(),
                s.preload_cells_per_queue.to_string(),
                s.arrival_slots.to_string(),
                s.seed.to_string(),
                r.slots.to_string(),
                r.stats.grants.to_string(),
                r.stats.misses.to_string(),
                r.stats.drops.to_string(),
                r.stats.bank_conflicts.to_string(),
                r.stats.peak_head_sram_cells.to_string(),
                r.stats.peak_rr_entries.to_string(),
                format!("{:.6}", r.grants_per_slot()),
                r.stats.is_loss_free().to_string(),
            ]);
        }
        table.to_csv()
    }
}

/// Executes expanded experiment specs across `std::thread` workers.
#[derive(Debug, Clone)]
pub struct LabRunner {
    threads: NonZeroUsize,
    record_grants: Option<bool>,
}

impl Default for LabRunner {
    fn default() -> Self {
        LabRunner::new()
    }
}

impl LabRunner {
    /// A runner using every available core.
    pub fn new() -> Self {
        LabRunner {
            threads: std::thread::available_parallelism()
                .unwrap_or(NonZeroUsize::new(1).expect("1 is non-zero")),
            record_grants: None,
        }
    }

    /// Limits the runner to `threads` workers (clamped to ≥ 1).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = NonZeroUsize::new(threads.max(1)).expect("clamped to >= 1");
        self
    }

    /// Overrides the spec's `record_grants` flag for every run.
    pub fn record_grants(mut self, record: bool) -> Self {
        self.record_grants = Some(record);
        self
    }

    /// Number of worker threads this runner will use.
    pub fn threads(&self) -> usize {
        self.threads.get()
    }

    /// Expands `spec` and executes every run.
    ///
    /// Runs are distributed over the workers through an atomic cursor and the
    /// results are stored by run index, so the returned report is identical
    /// whatever the worker count or scheduling order.
    ///
    /// # Errors
    ///
    /// Returns [`SpecError`] when the spec does not expand.
    ///
    /// # Panics
    ///
    /// Panics if a worker thread panics (a run itself panicking is a bug in
    /// the buffer under test, and hiding it would taint the whole report).
    pub fn run(&self, spec: &ExperimentSpec) -> Result<ExperimentReport, SpecError> {
        let expansion = spec.expand()?;
        let record = self.record_grants.unwrap_or(spec.record_grants);
        let runs = run_sharded(self.threads.get(), expansion.runs.len(), |index| {
            let scenario = expansion.runs[index];
            let report = scenario.run_with_grant_log(record);
            RunRecord {
                index,
                scenario,
                report,
            }
        });
        let aggregate = aggregate(&runs);
        // Echo the *effective* spec: if the runner overrode record_grants,
        // the self-describing report must say so, or re-running the echoed
        // spec would produce a different artifact.
        let mut spec = spec.clone();
        spec.record_grants = record;
        Ok(ExperimentReport {
            spec,
            skipped_invalid: expansion.skipped_invalid,
            runs,
            aggregate,
        })
    }
}

/// Executes `total` independent runs across up to `workers` threads.
///
/// Workers pull indices from a shared atomic cursor and results are stored
/// by index, so the output is **identical whatever the worker count or
/// scheduling order** — the shared substrate of [`LabRunner::run`] and
/// [`LabRunner::run_fabric`](crate::fabric), and the property the
/// determinism tests pin down.
///
/// # Panics
///
/// Panics if a worker thread panics (a run panicking is a bug in the system
/// under test, and hiding it would taint the whole report).
pub(crate) fn run_sharded<T, F>(workers: usize, total: usize, run: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let workers = workers.min(total).max(1);
    let cursor = AtomicUsize::new(0);
    let results: Mutex<Vec<Option<T>>> = Mutex::new((0..total).map(|_| None).collect());
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(workers);
        for _ in 0..workers {
            handles.push(scope.spawn(|| loop {
                let index = cursor.fetch_add(1, Ordering::Relaxed);
                if index >= total {
                    break;
                }
                let result = run(index);
                results.lock().expect("no worker panicked holding the lock")[index] = Some(result);
            }));
        }
        for handle in handles {
            handle.join().expect("experiment worker panicked");
        }
    });
    results
        .into_inner()
        .expect("all workers joined")
        .into_iter()
        .map(|slot| slot.expect("every run index was executed"))
        .collect()
}

fn aggregate(runs: &[RunRecord]) -> LabAggregate {
    let mut agg = LabAggregate {
        all_loss_free: true,
        ..LabAggregate::default()
    };
    let mut grants_per_slot_sum = 0.0f64;
    for run in runs {
        let stats = &run.report.stats;
        agg.runs += 1;
        if stats.is_loss_free() {
            agg.loss_free_runs += 1;
        } else {
            agg.all_loss_free = false;
        }
        agg.total_grants += stats.grants;
        agg.total_misses += stats.misses;
        agg.total_drops += stats.drops;
        agg.total_bank_conflicts += stats.bank_conflicts;
        agg.peak_head_sram_cells = agg.peak_head_sram_cells.max(stats.peak_head_sram_cells);
        agg.peak_rr_entries = agg.peak_rr_entries.max(stats.peak_rr_entries);
        grants_per_slot_sum += run.report.grants_per_slot();
    }
    if agg.runs > 0 {
        agg.mean_grants_per_slot = grants_per_slot_sum / agg.runs as f64;
    }
    agg
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{DesignKind, Workload};
    use crate::spec::Sweep;

    fn small_spec() -> ExperimentSpec {
        ExperimentSpec::builder()
            .name("lab-test")
            .designs([DesignKind::Rads, DesignKind::Cfds])
            .workloads([Workload::AdversarialRoundRobin, Workload::UniformRandom])
            .num_queues(Sweep::list([4, 8]))
            .granularity(Sweep::fixed(2))
            .rads_granularity(Sweep::fixed(8))
            .num_banks(Sweep::fixed(16))
            .arrival_slots(1_000)
            .seeds([5])
            .build()
            .unwrap()
    }

    #[test]
    fn runner_executes_every_run_in_order() {
        let report = LabRunner::new().run(&small_spec()).unwrap();
        assert_eq!(report.runs.len(), 8);
        for (i, run) in report.runs.iter().enumerate() {
            assert_eq!(run.index, i);
            assert!(run.report.stats.grants > 0);
        }
        assert_eq!(report.aggregate.runs, 8);
        assert!(report.aggregate.all_loss_free);
        assert_eq!(report.aggregate.loss_free_runs, 8);
        assert!(report.aggregate.mean_grants_per_slot > 0.0);
    }

    #[test]
    fn thread_count_does_not_change_the_report() {
        let spec = small_spec();
        let single = LabRunner::new().with_threads(1).run(&spec).unwrap();
        let multi = LabRunner::new().with_threads(4).run(&spec).unwrap();
        assert!(LabRunner::new().with_threads(4).threads() >= 2);
        assert_eq!(single, multi);
        // Byte-identical serialized artefacts, not just PartialEq.
        assert_eq!(single.to_json(), multi.to_json());
        assert_eq!(single.to_csv(), multi.to_csv());
    }

    #[test]
    fn identical_seeds_give_bit_identical_reports() {
        let spec = small_spec();
        let a = LabRunner::new().record_grants(true).run(&spec).unwrap();
        let b = LabRunner::new().record_grants(true).run(&spec).unwrap();
        assert_eq!(a, b);
        // And a different seed really changes the stochastic runs.
        let mut other = spec;
        other.seeds = vec![6];
        let c = LabRunner::new().record_grants(true).run(&other).unwrap();
        assert_ne!(
            a.runs.last().unwrap().report.grant_log,
            c.runs.last().unwrap().report.grant_log,
            "uniform-random grant order must depend on the seed"
        );
    }

    #[test]
    fn csv_has_one_row_per_run() {
        let report = LabRunner::new().run(&small_spec()).unwrap();
        let csv = report.to_csv();
        assert_eq!(csv.lines().count(), 1 + report.runs.len());
        assert!(csv.starts_with("index,design,workload"));
        assert!(csv.contains("RADS"));
        assert!(csv.contains("uniform-random"));
    }

    #[test]
    fn json_report_parses_back_as_a_value() {
        let report = LabRunner::new().with_threads(2).run(&small_spec()).unwrap();
        let json = report.to_json();
        let value: serde_json::Value = serde_json::from_str(&json).unwrap();
        let object = value.as_object().unwrap();
        assert_eq!(
            object
                .get("aggregate")
                .unwrap()
                .as_object()
                .unwrap()
                .get("runs")
                .unwrap()
                .as_u64(),
            Some(8)
        );
        assert_eq!(object.get("runs").unwrap().as_array().unwrap().len(), 8);
        // The echoed spec inside the report parses back into the same spec.
        let spec_json = object.get("spec").unwrap().to_json_string();
        assert_eq!(ExperimentSpec::from_json(&spec_json).unwrap(), small_spec());
    }
}
