//! Declarative experiment specifications.
//!
//! An [`ExperimentSpec`] is the serializable description of a whole
//! experiment: which designs and workloads to cross, which parameter axes to
//! sweep ([`Sweep`]), how long to run, and which seeds to use. It expands into
//! a cartesian product of [`Scenario`]s that [`crate::lab::LabRunner`]
//! executes — experiments are *data*, not hand-wired binaries.
//!
//! Specs round-trip through JSON (see [`ExperimentSpec::to_json`] /
//! [`ExperimentSpec::from_json`]) and every axis value also parses from the
//! compact CLI syntax of [`Sweep`]'s `FromStr` (`64`, `64,128,256`,
//! `64..1024*2`, `64..256+64`).

use crate::scenario::{DesignKind, Scenario, Workload};
use pktbuf_model::{ConfigOverrides, LineRate};
use serde::{de, Deserialize, Deserializer, Serialize, Serializer};
use std::fmt;
use std::str::FromStr;

/// Error produced when building, parsing or expanding a spec.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SpecError {
    /// An axis that must contribute at least one value is empty.
    EmptyAxis(&'static str),
    /// A sweep's parameters cannot produce values (zero step, factor < 2, …).
    BadSweep(String),
    /// Preload and live arrivals were both requested.
    PreloadAndArrivals,
    /// Every combination in the cartesian product was invalid.
    NoValidRuns,
    /// The JSON text was malformed or did not match the spec shape.
    Json(String),
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpecError::EmptyAxis(axis) => write!(f, "axis {axis:?} has no values"),
            SpecError::BadSweep(msg) => write!(f, "bad sweep: {msg}"),
            SpecError::PreloadAndArrivals => write!(
                f,
                "preload_cells_per_queue and arrival_slots are mutually exclusive \
                 (their sequence numbers would clash)"
            ),
            SpecError::NoValidRuns => write!(
                f,
                "no combination of the swept parameters forms a valid configuration"
            ),
            SpecError::Json(msg) => write!(f, "spec JSON: {msg}"),
        }
    }
}

impl std::error::Error for SpecError {}

/// One sweep axis: the values a single numeric parameter takes across runs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Sweep {
    /// A single value (the axis does not vary).
    Fixed(u64),
    /// An explicit list of values.
    List(Vec<u64>),
    /// `start, start+step, …` up to and including `end` where reached.
    Linear {
        /// First value.
        start: u64,
        /// Inclusive upper bound.
        end: u64,
        /// Increment (must be > 0).
        step: u64,
    },
    /// `start, start*factor, …` up to and including `end` where reached.
    Geometric {
        /// First value.
        start: u64,
        /// Inclusive upper bound.
        end: u64,
        /// Multiplier (must be ≥ 2).
        factor: u64,
    },
}

impl Sweep {
    /// A non-varying axis.
    pub fn fixed(value: u64) -> Self {
        Sweep::Fixed(value)
    }

    /// An explicit list axis.
    pub fn list(values: impl IntoIterator<Item = u64>) -> Self {
        Sweep::List(values.into_iter().collect())
    }

    /// The doubling sweep `start, 2·start, … ≤ end` (the shape of most of the
    /// paper's axes: queues, banks, granularities).
    pub fn doubling(start: u64, end: u64) -> Self {
        Sweep::Geometric {
            start,
            end,
            factor: 2,
        }
    }

    /// Expands the axis into its values, in sweep order.
    ///
    /// # Errors
    ///
    /// Returns [`SpecError::BadSweep`] when the parameters cannot produce a
    /// non-empty, finite list.
    pub fn values(&self) -> Result<Vec<u64>, SpecError> {
        match self {
            Sweep::Fixed(v) => Ok(vec![*v]),
            Sweep::List(vs) => {
                if vs.is_empty() {
                    Err(SpecError::BadSweep("empty value list".into()))
                } else {
                    Ok(vs.clone())
                }
            }
            Sweep::Linear { start, end, step } => {
                if *step == 0 {
                    return Err(SpecError::BadSweep("linear step must be > 0".into()));
                }
                if end < start {
                    return Err(SpecError::BadSweep(format!(
                        "linear range {start}..{end} is empty"
                    )));
                }
                Ok((*start..=*end).step_by(*step as usize).collect())
            }
            Sweep::Geometric { start, end, factor } => {
                if *factor < 2 {
                    return Err(SpecError::BadSweep("geometric factor must be ≥ 2".into()));
                }
                if *start == 0 || end < start {
                    return Err(SpecError::BadSweep(format!(
                        "geometric range {start}..{end} is empty"
                    )));
                }
                let mut out = Vec::new();
                let mut v = *start;
                while v <= *end {
                    out.push(v);
                    match v.checked_mul(*factor) {
                        Some(next) => v = next,
                        None => break,
                    }
                }
                Ok(out)
            }
        }
    }
}

impl fmt::Display for Sweep {
    /// The compact CLI syntax: `64`, `64,128,256`, `64..256+64`, `64..1024*2`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Sweep::Fixed(v) => write!(f, "{v}"),
            Sweep::List(vs) => {
                let mut first = true;
                for v in vs {
                    if !first {
                        f.write_str(",")?;
                    }
                    write!(f, "{v}")?;
                    first = false;
                }
                Ok(())
            }
            Sweep::Linear { start, end, step } => write!(f, "{start}..{end}+{step}"),
            Sweep::Geometric { start, end, factor } => write!(f, "{start}..{end}*{factor}"),
        }
    }
}

impl FromStr for Sweep {
    type Err = SpecError;

    /// Parses the compact syntax rendered by `Display`.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let s = s.trim();
        let bad = |msg: String| SpecError::BadSweep(msg);
        let int = |txt: &str| -> Result<u64, SpecError> {
            txt.trim()
                .parse()
                .map_err(|_| bad(format!("{txt:?} is not an unsigned integer")))
        };
        if let Some((range, tail)) = s.split_once("..") {
            let start = int(range)?;
            return if let Some((end, factor)) = tail.split_once('*') {
                Ok(Sweep::Geometric {
                    start,
                    end: int(end)?,
                    factor: int(factor)?,
                })
            } else if let Some((end, step)) = tail.split_once('+') {
                Ok(Sweep::Linear {
                    start,
                    end: int(end)?,
                    step: int(step)?,
                })
            } else {
                Err(bad(format!(
                    "range {s:?} needs '*factor' (geometric) or '+step' (linear)"
                )))
            };
        }
        if s.contains(',') {
            let values = s
                .split(',')
                .filter(|part| !part.trim().is_empty())
                .map(int)
                .collect::<Result<Vec<u64>, SpecError>>()?;
            if values.is_empty() {
                return Err(bad("empty value list".into()));
            }
            return Ok(Sweep::List(values));
        }
        Ok(Sweep::Fixed(int(s)?))
    }
}

// Serde: a sweep is a JSON number (fixed), array (list), object
// (linear/geometric, told apart by their "step"/"factor" key), or a string in
// the CLI syntax.
impl Serialize for Sweep {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        use serde::ser::SerializeStruct as _;
        match self {
            Sweep::Fixed(v) => serializer.serialize_u64(*v),
            Sweep::List(vs) => vs.serialize(serializer),
            Sweep::Linear { start, end, step } => {
                let mut st = serializer.serialize_struct("Sweep", 3)?;
                st.serialize_field("start", start)?;
                st.serialize_field("end", end)?;
                st.serialize_field("step", step)?;
                st.end()
            }
            Sweep::Geometric { start, end, factor } => {
                let mut st = serializer.serialize_struct("Sweep", 3)?;
                st.serialize_field("start", start)?;
                st.serialize_field("end", end)?;
                st.serialize_field("factor", factor)?;
                st.end()
            }
        }
    }
}

impl<'de> Deserialize<'de> for Sweep {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct V;
        impl<'de> de::Visitor<'de> for V {
            type Value = Sweep;
            fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str("a number, an array of numbers, a range object, or a sweep string")
            }
            fn visit_u64<E: de::Error>(self, v: u64) -> Result<Sweep, E> {
                Ok(Sweep::Fixed(v))
            }
            fn visit_str<E: de::Error>(self, v: &str) -> Result<Sweep, E> {
                v.parse().map_err(|e: SpecError| E::custom(e))
            }
            fn visit_seq<A: de::SeqAccess<'de>>(self, mut seq: A) -> Result<Sweep, A::Error> {
                let mut values = Vec::new();
                while let Some(v) = seq.next_element::<u64>()? {
                    values.push(v);
                }
                Ok(Sweep::List(values))
            }
            fn visit_map<A: de::MapAccess<'de>>(self, mut map: A) -> Result<Sweep, A::Error> {
                let (mut start, mut end, mut step, mut factor) = (None, None, None, None);
                while let Some(key) = map.next_key::<String>()? {
                    match key.as_str() {
                        "start" => start = Some(map.next_value()?),
                        "end" => end = Some(map.next_value()?),
                        "step" => step = Some(map.next_value()?),
                        "factor" => factor = Some(map.next_value()?),
                        other => {
                            return Err(de::Error::custom(format_args!(
                                "unknown sweep field {other:?}"
                            )))
                        }
                    }
                }
                let start =
                    start.ok_or_else(|| de::Error::custom("sweep object is missing \"start\""))?;
                let end =
                    end.ok_or_else(|| de::Error::custom("sweep object is missing \"end\""))?;
                match (step, factor) {
                    (Some(step), None) => Ok(Sweep::Linear { start, end, step }),
                    (None, Some(factor)) => Ok(Sweep::Geometric { start, end, factor }),
                    _ => Err(de::Error::custom(
                        "sweep object needs exactly one of \"step\" or \"factor\"",
                    )),
                }
            }
        }
        deserializer.deserialize_any(V)
    }
}

/// A declarative, serializable experiment: designs × workloads × swept
/// parameters × seeds, expanded into [`Scenario`]s.
#[derive(Debug, Clone, PartialEq)]
pub struct ExperimentSpec {
    /// Experiment name (used in reports and file names).
    pub name: String,
    /// Designs to cross (outermost expansion axis).
    pub designs: Vec<DesignKind>,
    /// Workloads to cross.
    pub workloads: Vec<Workload>,
    /// Line rate shared by every run.
    pub line_rate: LineRate,
    /// Sweep of the number of logical queues `Q`.
    pub num_queues: Sweep,
    /// Sweep of the CFDS granularity `b`.
    pub granularity: Sweep,
    /// Sweep of the RADS granularity `B`.
    pub rads_granularity: Sweep,
    /// Sweep of the number of DRAM banks `M`.
    pub num_banks: Sweep,
    /// Cells preloaded per queue (mutually exclusive with `arrival_slots`).
    pub preload_cells_per_queue: u64,
    /// Live-arrival slots (mutually exclusive with the preload).
    pub arrival_slots: u64,
    /// Seeds to cross (innermost expansion axis).
    pub seeds: Vec<u64>,
    /// Whether each run records its per-grant queue log.
    pub record_grants: bool,
    /// Configuration knobs applied to every run.
    pub overrides: ConfigOverrides,
}

impl ExperimentSpec {
    /// Starts a builder with smoke-test defaults (CFDS, the adversarial
    /// round-robin workload, 32 queues, `b = 4`, `B = 16`, 64 banks, 10 000
    /// live-arrival slots, seed 1).
    pub fn builder() -> ExperimentSpecBuilder {
        ExperimentSpecBuilder::default()
    }

    /// Expands the spec into the cartesian product of its axes, in a fixed
    /// documented order: designs ▸ workloads ▸ queues ▸ granularity ▸ RADS
    /// granularity ▸ banks ▸ seeds (left outermost). Combinations that do not
    /// form a valid configuration (a sweep can produce e.g. `b ∤ B`) are
    /// skipped and counted. For RADS and DRAM-only runs the CFDS-only axes
    /// (`granularity`, `num_banks`) collapse to their first value — those
    /// parameters do not affect the simulation, and repeating it would skew
    /// the aggregate.
    ///
    /// # Errors
    ///
    /// Returns [`SpecError`] when an axis is empty or malformed, when preload
    /// and live arrivals are both requested, or when *every* combination is
    /// invalid.
    pub fn expand(&self) -> Result<Expansion, SpecError> {
        if self.designs.is_empty() {
            return Err(SpecError::EmptyAxis("designs"));
        }
        if self.workloads.is_empty() {
            return Err(SpecError::EmptyAxis("workloads"));
        }
        if self.seeds.is_empty() {
            return Err(SpecError::EmptyAxis("seeds"));
        }
        if self.preload_cells_per_queue > 0 && self.arrival_slots > 0 {
            return Err(SpecError::PreloadAndArrivals);
        }
        let queues = self.num_queues.values()?;
        let granularities = self.granularity.values()?;
        let rads_granularities = self.rads_granularity.values()?;
        let banks = self.num_banks.values()?;
        let mut runs = Vec::new();
        let mut skipped_invalid = 0usize;
        for design in &self.designs {
            // `b` and `M` are CFDS-only parameters; crossing RADS/DRAM-only
            // with them would execute the same simulation |b|·|M| times over
            // (wasting compute and over-weighting those designs in the
            // aggregate), so the axes collapse to their first value there.
            let (granularities, banks): (&[u64], &[u64]) = match design {
                DesignKind::Cfds => (&granularities, &banks),
                DesignKind::DramOnly | DesignKind::Rads => (&granularities[..1], &banks[..1]),
            };
            for workload in &self.workloads {
                for q in &queues {
                    for b in granularities {
                        for big_b in &rads_granularities {
                            for m in banks {
                                for seed in &self.seeds {
                                    let scenario = Scenario {
                                        design: *design,
                                        workload: *workload,
                                        line_rate: self.line_rate,
                                        num_queues: *q as usize,
                                        granularity: *b as usize,
                                        rads_granularity: *big_b as usize,
                                        num_banks: *m as usize,
                                        preload_cells_per_queue: self.preload_cells_per_queue,
                                        arrival_slots: self.arrival_slots,
                                        seed: *seed,
                                        overrides: self.overrides,
                                    };
                                    if scenario.validate().is_ok() {
                                        runs.push(scenario);
                                    } else {
                                        skipped_invalid += 1;
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
        if runs.is_empty() {
            return Err(SpecError::NoValidRuns);
        }
        Ok(Expansion {
            runs,
            skipped_invalid,
        })
    }

    /// Renders the spec as pretty JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("an experiment spec always serializes")
    }

    /// Parses a spec from JSON text.
    ///
    /// # Errors
    ///
    /// Returns [`SpecError::Json`] on malformed JSON or unknown/ill-typed
    /// fields.
    pub fn from_json(text: &str) -> Result<Self, SpecError> {
        serde_json::from_str(text).map_err(|e| SpecError::Json(e.to_string()))
    }
}

/// The result of expanding a spec.
#[derive(Debug, Clone, PartialEq)]
pub struct Expansion {
    /// The valid runs, in expansion order.
    pub runs: Vec<Scenario>,
    /// Combinations skipped because they violated a configuration constraint.
    pub skipped_invalid: usize,
}

/// Builder for [`ExperimentSpec`].
#[derive(Debug, Clone)]
pub struct ExperimentSpecBuilder {
    spec: ExperimentSpec,
}

impl Default for ExperimentSpecBuilder {
    fn default() -> Self {
        ExperimentSpecBuilder {
            spec: ExperimentSpec {
                name: "experiment".to_owned(),
                designs: vec![DesignKind::Cfds],
                workloads: vec![Workload::AdversarialRoundRobin],
                line_rate: LineRate::Oc3072,
                num_queues: Sweep::Fixed(32),
                granularity: Sweep::Fixed(4),
                rads_granularity: Sweep::Fixed(16),
                num_banks: Sweep::Fixed(64),
                preload_cells_per_queue: 0,
                arrival_slots: 10_000,
                seeds: vec![1],
                record_grants: false,
                overrides: ConfigOverrides::none(),
            },
        }
    }
}

impl ExperimentSpecBuilder {
    /// Sets the experiment name.
    pub fn name(mut self, name: impl Into<String>) -> Self {
        self.spec.name = name.into();
        self
    }

    /// Sets the designs axis.
    pub fn designs(mut self, designs: impl IntoIterator<Item = DesignKind>) -> Self {
        self.spec.designs = designs.into_iter().collect();
        self
    }

    /// Sets the workloads axis.
    pub fn workloads(mut self, workloads: impl IntoIterator<Item = Workload>) -> Self {
        self.spec.workloads = workloads.into_iter().collect();
        self
    }

    /// Sets the line rate.
    pub fn line_rate(mut self, rate: LineRate) -> Self {
        self.spec.line_rate = rate;
        self
    }

    /// Sets the queues axis.
    pub fn num_queues(mut self, sweep: Sweep) -> Self {
        self.spec.num_queues = sweep;
        self
    }

    /// Sets the CFDS granularity axis.
    pub fn granularity(mut self, sweep: Sweep) -> Self {
        self.spec.granularity = sweep;
        self
    }

    /// Sets the RADS granularity axis.
    pub fn rads_granularity(mut self, sweep: Sweep) -> Self {
        self.spec.rads_granularity = sweep;
        self
    }

    /// Sets the DRAM banks axis.
    pub fn num_banks(mut self, sweep: Sweep) -> Self {
        self.spec.num_banks = sweep;
        self
    }

    /// Preloads cells instead of running live arrivals.
    pub fn preload_cells_per_queue(mut self, cells: u64) -> Self {
        self.spec.preload_cells_per_queue = cells;
        if cells > 0 {
            self.spec.arrival_slots = 0;
        }
        self
    }

    /// Sets the number of live-arrival slots.
    pub fn arrival_slots(mut self, slots: u64) -> Self {
        self.spec.arrival_slots = slots;
        self
    }

    /// Sets the seeds axis.
    pub fn seeds(mut self, seeds: impl IntoIterator<Item = u64>) -> Self {
        self.spec.seeds = seeds.into_iter().collect();
        self
    }

    /// Records per-grant queue logs in every run.
    pub fn record_grants(mut self, record: bool) -> Self {
        self.spec.record_grants = record;
        self
    }

    /// Sets the configuration overrides applied to every run.
    pub fn overrides(mut self, overrides: ConfigOverrides) -> Self {
        self.spec.overrides = overrides;
        self
    }

    /// Finalises the spec, checking that it expands to at least one run.
    ///
    /// # Errors
    ///
    /// Propagates any [`SpecError`] from [`ExperimentSpec::expand`].
    pub fn build(self) -> Result<ExperimentSpec, SpecError> {
        self.spec.expand()?;
        Ok(self.spec)
    }
}

impl Serialize for ExperimentSpec {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        use serde::ser::SerializeStruct as _;
        let mut st = serializer.serialize_struct("ExperimentSpec", 13)?;
        st.serialize_field("name", &self.name)?;
        st.serialize_field("designs", &self.designs)?;
        st.serialize_field("workloads", &self.workloads)?;
        st.serialize_field("line_rate", &self.line_rate)?;
        st.serialize_field("num_queues", &self.num_queues)?;
        st.serialize_field("granularity", &self.granularity)?;
        st.serialize_field("rads_granularity", &self.rads_granularity)?;
        st.serialize_field("num_banks", &self.num_banks)?;
        st.serialize_field("preload_cells_per_queue", &self.preload_cells_per_queue)?;
        st.serialize_field("arrival_slots", &self.arrival_slots)?;
        st.serialize_field("seeds", &self.seeds)?;
        st.serialize_field("record_grants", &self.record_grants)?;
        st.serialize_field("overrides", &self.overrides)?;
        st.end()
    }
}

impl<'de> Deserialize<'de> for ExperimentSpec {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct V;
        impl<'de> de::Visitor<'de> for V {
            type Value = ExperimentSpec;
            fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str("an experiment-spec object")
            }
            fn visit_map<A: de::MapAccess<'de>>(
                self,
                mut map: A,
            ) -> Result<ExperimentSpec, A::Error> {
                // Unknown fields are rejected; omitted fields keep the
                // builder defaults, so a minimal spec file stays minimal.
                let mut spec = ExperimentSpecBuilder::default().spec;
                let mut arrival_slots_written = false;
                while let Some(key) = map.next_key::<String>()? {
                    match key.as_str() {
                        "name" => spec.name = map.next_value()?,
                        "designs" => spec.designs = map.next_value()?,
                        "workloads" => spec.workloads = map.next_value()?,
                        "line_rate" => spec.line_rate = map.next_value()?,
                        "num_queues" => spec.num_queues = map.next_value()?,
                        "granularity" => spec.granularity = map.next_value()?,
                        "rads_granularity" => spec.rads_granularity = map.next_value()?,
                        "num_banks" => spec.num_banks = map.next_value()?,
                        "preload_cells_per_queue" => {
                            spec.preload_cells_per_queue = map.next_value()?;
                        }
                        "arrival_slots" => {
                            spec.arrival_slots = map.next_value()?;
                            arrival_slots_written = true;
                        }
                        "seeds" => spec.seeds = map.next_value()?,
                        "record_grants" => spec.record_grants = map.next_value()?,
                        "overrides" => spec.overrides = map.next_value()?,
                        other => {
                            return Err(de::Error::custom(format_args!(
                                "unknown spec field {other:?}"
                            )))
                        }
                    }
                }
                // A preload spec that never mentioned live arrivals drops the
                // defaulted arrival_slots; an *explicitly written* nonzero
                // value is kept as-is, so expand() reports the conflict
                // instead of a silent, value-dependent rewrite.
                if spec.preload_cells_per_queue > 0 && !arrival_slots_written {
                    spec.arrival_slots = 0;
                }
                Ok(spec)
            }
        }
        deserializer.deserialize_any(V)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweeps_expand_in_order() {
        assert_eq!(Sweep::fixed(64).values().unwrap(), vec![64]);
        assert_eq!(
            Sweep::list([3, 1, 2]).values().unwrap(),
            vec![3, 1, 2],
            "lists keep their order"
        );
        assert_eq!(
            Sweep::doubling(64, 1024).values().unwrap(),
            vec![64, 128, 256, 512, 1024]
        );
        assert_eq!(
            Sweep::Linear {
                start: 10,
                end: 30,
                step: 10
            }
            .values()
            .unwrap(),
            vec![10, 20, 30]
        );
    }

    #[test]
    fn sweeps_reject_degenerate_parameters() {
        assert!(Sweep::List(Vec::new()).values().is_err());
        assert!(Sweep::Linear {
            start: 1,
            end: 10,
            step: 0
        }
        .values()
        .is_err());
        assert!(Sweep::Geometric {
            start: 0,
            end: 10,
            factor: 2
        }
        .values()
        .is_err());
        assert!(Sweep::Geometric {
            start: 1,
            end: 10,
            factor: 1
        }
        .values()
        .is_err());
    }

    #[test]
    fn sweep_strings_round_trip() {
        for sweep in [
            Sweep::fixed(64),
            Sweep::list([64, 128, 256]),
            Sweep::Linear {
                start: 8,
                end: 64,
                step: 8,
            },
            Sweep::doubling(64, 1024),
        ] {
            let text = sweep.to_string();
            assert_eq!(text.parse::<Sweep>().unwrap(), sweep, "{text}");
        }
        assert!("".parse::<Sweep>().is_err());
        assert!(
            "64..128".parse::<Sweep>().is_err(),
            "range needs +step or *factor"
        );
        assert!("a,b".parse::<Sweep>().is_err());
    }

    #[test]
    fn spec_expands_the_cartesian_product_in_document_order() {
        let spec = ExperimentSpec::builder()
            .designs([DesignKind::Rads, DesignKind::Cfds])
            .workloads([Workload::AdversarialRoundRobin, Workload::Bursty])
            .num_queues(Sweep::list([8, 16]))
            .granularity(Sweep::fixed(2))
            .rads_granularity(Sweep::fixed(8))
            .num_banks(Sweep::fixed(16))
            .seeds([1, 2])
            .build()
            .unwrap();
        let expansion = spec.expand().unwrap();
        assert_eq!(expansion.runs.len(), 2 * 2 * 2 * 2);
        assert_eq!(expansion.skipped_invalid, 0);
        // Designs are the outermost axis, seeds the innermost.
        assert!(expansion.runs[..8]
            .iter()
            .all(|r| r.design == DesignKind::Rads));
        assert_eq!(expansion.runs[0].seed, 1);
        assert_eq!(expansion.runs[1].seed, 2);
        assert_eq!(expansion.runs[0].workload, Workload::AdversarialRoundRobin);
        assert_eq!(expansion.runs[4].workload, Workload::Bursty);
    }

    #[test]
    fn invalid_combinations_are_skipped_not_fatal() {
        // b = 3 does not divide B = 8 → invalid for CFDS, irrelevant to RADS.
        let spec = ExperimentSpec::builder()
            .designs([DesignKind::Rads, DesignKind::Cfds])
            .granularity(Sweep::list([2, 3]))
            .rads_granularity(Sweep::fixed(8))
            .build()
            .unwrap();
        let expansion = spec.expand().unwrap();
        assert_eq!(expansion.runs.len(), 2, "RADS once + CFDS b=2");
        assert_eq!(expansion.skipped_invalid, 1);
    }

    #[test]
    fn cfds_only_axes_collapse_for_other_designs() {
        // b and M do not affect RADS/DRAM-only; sweeping them must not
        // duplicate those runs.
        let spec = ExperimentSpec::builder()
            .designs([DesignKind::DramOnly, DesignKind::Rads, DesignKind::Cfds])
            .granularity(Sweep::list([2, 4, 8]))
            .num_banks(Sweep::list([32, 64]))
            .rads_granularity(Sweep::fixed(16))
            .build()
            .unwrap();
        let expansion = spec.expand().unwrap();
        let count =
            |design: DesignKind| expansion.runs.iter().filter(|r| r.design == design).count();
        assert_eq!(count(DesignKind::DramOnly), 1);
        assert_eq!(count(DesignKind::Rads), 1);
        assert_eq!(count(DesignKind::Cfds), 3 * 2, "CFDS keeps the full cross");
    }

    #[test]
    fn empty_axes_and_conflicting_phases_error() {
        assert_eq!(
            ExperimentSpec::builder().designs([]).build().unwrap_err(),
            SpecError::EmptyAxis("designs")
        );
        assert_eq!(
            ExperimentSpec::builder().seeds([]).build().unwrap_err(),
            SpecError::EmptyAxis("seeds")
        );
        let mut spec = ExperimentSpec::builder().build().unwrap();
        spec.preload_cells_per_queue = 8;
        assert_eq!(spec.expand().unwrap_err(), SpecError::PreloadAndArrivals);
    }

    #[test]
    fn spec_round_trips_through_json() {
        let spec = ExperimentSpec::builder()
            .name("fig-sweep")
            .designs([DesignKind::DramOnly, DesignKind::Rads, DesignKind::Cfds])
            .workloads(Workload::all())
            .line_rate(LineRate::Oc768)
            .num_queues(Sweep::doubling(64, 1024))
            .granularity(Sweep::list([1, 2, 4, 8, 16]))
            .rads_granularity(Sweep::fixed(32))
            .num_banks(Sweep::fixed(256))
            .arrival_slots(5_000)
            .seeds([7, 11, 13])
            .record_grants(true)
            .overrides(ConfigOverrides {
                physical_queue_factor: Some(2),
                dram_capacity_cells: Some(1 << 20),
                ..Default::default()
            })
            .build()
            .unwrap();
        let json = spec.to_json();
        let back = ExperimentSpec::from_json(&json).unwrap();
        assert_eq!(back, spec);
        // And the JSON itself is stable under a second round trip.
        assert_eq!(back.to_json(), json);
    }

    #[test]
    fn minimal_json_gets_builder_defaults() {
        let spec = ExperimentSpec::from_json("{\"name\": \"tiny\"}").unwrap();
        assert_eq!(spec.name, "tiny");
        assert_eq!(spec.designs, vec![DesignKind::Cfds]);
        assert_eq!(spec.arrival_slots, 10_000);
        let preload = ExperimentSpec::from_json("{\"preload_cells_per_queue\": 64}").unwrap();
        assert_eq!(preload.arrival_slots, 0, "preload implies no live arrivals");
        assert!(preload.expand().is_ok());
        // …but an *explicit* arrival_slots is never silently rewritten, even
        // when it happens to equal the builder default.
        let conflicted = ExperimentSpec::from_json(
            "{\"preload_cells_per_queue\": 64, \"arrival_slots\": 10000}",
        )
        .unwrap();
        assert_eq!(conflicted.arrival_slots, 10_000);
        assert_eq!(
            conflicted.expand().unwrap_err(),
            SpecError::PreloadAndArrivals
        );
    }

    #[test]
    fn malformed_specs_are_rejected() {
        for bad in [
            "{\"designs\": [\"warp\"]}",
            "{\"num_queues\": {\"start\": 1, \"end\": 8}}",
            "{\"mystery\": 1}",
            "{\"workloads\": \"bursty\"}",
            "not json",
        ] {
            assert!(ExperimentSpec::from_json(bad).is_err(), "accepted {bad}");
        }
    }
}
