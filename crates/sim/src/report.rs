//! Plain-text table and CSV rendering used by the experiment binaries.

/// A simple column-aligned text table.
#[derive(Debug, Clone, Default)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(header: Vec<S>) -> Self {
        TextTable {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (it is padded or truncated to the header width).
    pub fn push_row<S: Into<String>>(&mut self, row: Vec<S>) {
        let mut row: Vec<String> = row.into_iter().map(Into::into).collect();
        row.resize(self.header.len(), String::new());
        self.rows.push(row);
    }

    /// Number of data rows.
    pub fn num_rows(&self) -> usize {
        self.rows.len()
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate().take(cols) {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let render_row = |row: &[String], widths: &[usize]| -> String {
            row.iter()
                .enumerate()
                .map(|(i, c)| format!("{:>width$}", c, width = widths[i]))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&render_row(&self.header, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (cols.saturating_sub(1))));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&render_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Renders the table as CSV.
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        out.push_str(&self.header.join(","));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.join(","));
            out.push('\n');
        }
        out
    }
}

/// Formats a count of bytes with a binary-ish unit the way the paper quotes
/// SRAM sizes (kB / MB with one decimal).
pub fn format_bytes(bytes: f64) -> String {
    if bytes >= 1e6 {
        format!("{:.1} MB", bytes / 1e6)
    } else if bytes >= 1e3 {
        format!("{:.0} kB", bytes / 1e3)
    } else {
        format!("{bytes:.0} B")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned_columns() {
        let mut t = TextTable::new(vec!["b", "RR size", "time"]);
        t.push_row(vec!["32", "0", "102.4"]);
        t.push_row(vec!["4", "256", "12.8"]);
        let s = t.render();
        assert!(s.contains("RR size"));
        assert!(s.lines().count() >= 4);
        assert_eq!(t.num_rows(), 2);
        let csv = t.to_csv();
        assert!(csv.starts_with("b,RR size,time\n"));
        assert!(csv.contains("4,256,12.8"));
    }

    #[test]
    fn short_rows_are_padded() {
        let mut t = TextTable::new(vec!["a", "b"]);
        t.push_row(vec!["1"]);
        assert!(t.render().contains('1'));
    }

    #[test]
    fn bytes_formatting() {
        assert_eq!(format_bytes(512.0), "512 B");
        assert_eq!(format_bytes(64_000.0), "64 kB");
        assert_eq!(format_bytes(6_200_000.0), "6.2 MB");
    }
}
