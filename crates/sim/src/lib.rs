//! Slot-level simulation engine, experiment scenarios and the technology
//! evaluation glue used by the benchmark harness.
//!
//! The crate has three roles:
//!
//! * [`SimulationEngine`] drives any [`pktbuf::PacketBuffer`] with an arrival
//!   and a request generator from the `traffic` crate, slot by slot, and
//!   produces a [`SimulationReport`] with the buffer's own statistics plus
//!   engine-level counters.
//! * [`scenario`] defines ready-made experiment scenarios (which design, which
//!   workload, how many slots, how much preload) so that examples, integration
//!   tests and the benchmark harness all run exactly the same code.
//! * [`techeval`] combines the dimensioning formulas (`mma::sizing`,
//!   `cfds::sizing`) with the physical SRAM model (`cacti-lite`) to produce
//!   the area/access-time/delay numbers behind Figures 8, 10 and 11 and
//!   Table 2.
//!
//! # Example: one scenario
//!
//! ```
//! use sim::scenario::{DesignKind, Scenario, Workload};
//!
//! let scenario = Scenario {
//!     design: DesignKind::Cfds,
//!     workload: Workload::AdversarialRoundRobin,
//!     num_queues: 8,
//!     granularity: 2,
//!     rads_granularity: 8,
//!     num_banks: 16,
//!     preload_cells_per_queue: 32,
//!     arrival_slots: 0,
//!     seed: 1,
//!     ..Scenario::small_cfds()
//! };
//! let report = scenario.run();
//! assert!(report.stats.is_loss_free());
//! assert_eq!(report.stats.grants, 8 * 32);
//! ```
//!
//! # Example: a declarative experiment
//!
//! Experiments are *data*: an [`spec::ExperimentSpec`] sweeps axes into a
//! cartesian product of scenarios and a [`lab::LabRunner`] executes them on a
//! thread pool, deterministically.
//!
//! ```
//! use sim::lab::LabRunner;
//! use sim::scenario::{DesignKind, Workload};
//! use sim::spec::{ExperimentSpec, Sweep};
//!
//! let spec = ExperimentSpec::builder()
//!     .name("doc-sweep")
//!     .designs([DesignKind::Rads, DesignKind::Cfds])
//!     .workloads([Workload::AdversarialRoundRobin])
//!     .num_queues(Sweep::list([4, 8]))
//!     .granularity(Sweep::fixed(2))
//!     .rads_granularity(Sweep::fixed(8))
//!     .num_banks(Sweep::fixed(16))
//!     .preload_cells_per_queue(16)
//!     .build()
//!     .unwrap();
//! let report = LabRunner::new().run(&spec).unwrap();
//! assert_eq!(report.runs.len(), 4);
//! assert!(report.aggregate.all_loss_free);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod clos;
mod engine;
pub mod fabric;
pub mod lab;
pub mod report;
pub mod scenario;
pub mod spec;
pub mod techeval;

pub use crate::clos::{
    ClosLabReport, ClosScenario, ClosSpec, ObsScenario, TransportMode, TransportScenario,
};
pub use crate::fabric::{FabricScenario, FabricSpec};
pub use ::fabric::{
    FaultEvent, FaultKind, FaultLedger, FaultPlan, FaultPlanError, LinkBoundary, RecoveryReport,
    TransportConfig, TransportReport,
};
pub use engine::{
    workload_label, GeneratorSource, SimulationEngine, SimulationReport, CHUNK_SLOTS,
};
pub use lab::{ExperimentReport, LabRunner};
pub use spec::{ExperimentSpec, Sweep};
