//! The slot-level simulation engine.

use pktbuf::{BufferStats, GrantSink, PacketBuffer, RequestSource};
use pktbuf_model::{Cell, LogicalQueueId};
use serde::{Serialize, Serializer};
use std::sync::Mutex;
use traffic::{ArrivalGenerator, RequestGenerator};

/// Result of one simulation run.
#[derive(Debug, Clone, PartialEq)]
pub struct SimulationReport {
    /// Design under test ("RADS", "CFDS", "DRAM-only"). Backed by the
    /// buffer's static name — reports are built once per run and must not
    /// allocate a fresh `String` each time.
    pub design: &'static str,
    /// Workload name (`"{arrivals}+{requests}"`). Interned: the known
    /// generator combinations resolve to static labels so building a report
    /// allocates nothing (see [`workload_label`]).
    pub workload: &'static str,
    /// Slots simulated, including the drain phase.
    pub slots: u64,
    /// Buffer statistics at the end of the run.
    pub stats: BufferStats,
    /// Queue indices of granted cells, in grant order (recorded only when
    /// requested; used to compare designs cell by cell).
    pub grant_log: Option<Vec<u32>>,
}

/// Builds one `"{arrivals}+{requests}"` label table row per known generator
/// pair, with the combined label computed at compile time.
macro_rules! label_table {
    ($(($arrivals:literal, $requests:literal)),* $(,)?) => {
        &[$(($arrivals, $requests, concat!($arrivals, "+", $requests))),*]
    };
}

/// Every generator pairing reachable through the `traffic` crate's shipped
/// generators: 5 arrival sources × 4 request sources. Scenario-built
/// workloads use 10 of these (see `Workload::engine_label`); the rest cover
/// hand-composed engines.
static KNOWN_LABELS: &[(&str, &str, &str)] = label_table![
    ("uniform", "adversarial-round-robin"),
    ("uniform", "uniform-random"),
    ("uniform", "greedy-queue-drain"),
    ("uniform", "hotspot"),
    ("bursty", "adversarial-round-robin"),
    ("bursty", "uniform-random"),
    ("bursty", "greedy-queue-drain"),
    ("bursty", "hotspot"),
    ("hotspot", "adversarial-round-robin"),
    ("hotspot", "uniform-random"),
    ("hotspot", "greedy-queue-drain"),
    ("hotspot", "hotspot"),
    ("round-robin", "adversarial-round-robin"),
    ("round-robin", "uniform-random"),
    ("round-robin", "greedy-queue-drain"),
    ("round-robin", "hotspot"),
    ("preload-only", "adversarial-round-robin"),
    ("preload-only", "uniform-random"),
    ("preload-only", "greedy-queue-drain"),
    ("preload-only", "hotspot"),
];

/// Labels interned at run time for generator names outside [`KNOWN_LABELS`]
/// (custom generators, trace replay). Bounded by the number of *distinct*
/// pairings ever simulated in the process.
static DYNAMIC_LABELS: Mutex<Vec<&'static str>> = Mutex::new(Vec::new());

/// The report label for an `"{arrivals}+{requests}"` workload, as a static
/// string: known pairings come from a compile-time table (no allocation —
/// report construction stays on the allocation-free slot path), unknown ones
/// are interned once per distinct pairing and leaked.
pub fn workload_label(arrivals: &str, requests: &str) -> &'static str {
    for (a, r, label) in KNOWN_LABELS {
        if *a == arrivals && *r == requests {
            return label;
        }
    }
    let mut dynamic = DYNAMIC_LABELS.lock().expect("label intern table poisoned");
    if let Some(label) = dynamic
        .iter()
        .find(|l| {
            l.len() == arrivals.len() + 1 + requests.len()
                && l.starts_with(arrivals)
                && l.ends_with(requests)
                && l.as_bytes()[arrivals.len()] == b'+'
        })
        .copied()
    {
        return label;
    }
    let label: &'static str = Box::leak(format!("{arrivals}+{requests}").into_boxed_str());
    dynamic.push(label);
    label
}

// Hand-written so that reports really encode (the vendored derive only
// type-checks). Reports are write-only: there is no Deserialize.
impl Serialize for SimulationReport {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        use serde::ser::SerializeStruct as _;
        let mut st = serializer.serialize_struct("SimulationReport", 6)?;
        st.serialize_field("design", &self.design)?;
        st.serialize_field("workload", &self.workload)?;
        st.serialize_field("slots", &self.slots)?;
        st.serialize_field("grants_per_slot", &self.grants_per_slot())?;
        st.serialize_field("stats", &self.stats)?;
        st.serialize_field("grant_log", &self.grant_log)?;
        st.end()
    }
}

impl SimulationReport {
    /// Throughput in grants per slot over the whole run.
    pub fn grants_per_slot(&self) -> f64 {
        if self.slots == 0 {
            0.0
        } else {
            self.stats.grants as f64 / self.slots as f64
        }
    }
}

/// Drives a packet buffer with workload generators.
///
/// The engine is generic over the buffer type. The default parameter keeps
/// the type-erased entry point (`SimulationEngine::new` over
/// `&mut dyn PacketBuffer`) that the CLI uses, while
/// [`SimulationEngine::new_mono`] monomorphises the whole slot loop for a
/// concrete buffer type — no per-slot virtual dispatch — which is what
/// [`crate::scenario::Scenario`] and the benchmarks run.
///
/// Two loop shapes exist: [`SimulationEngine::run`] is the slot-by-slot
/// reference (available on both entry points) and
/// [`SimulationEngine::run_chunked`] is the production batch engine (chunked
/// arrival generation, fused `step_batch` loops, idle fast-forward; concrete
/// buffers only). All paths produce bit-identical reports, pinned by the
/// `mono_dyn_equivalence` and `chunked_equivalence` test suites.
pub struct SimulationEngine<'a, B: PacketBuffer + ?Sized = dyn PacketBuffer + 'a> {
    buffer: &'a mut B,
    record_grants: bool,
    workload_label: Option<&'static str>,
}

impl<'a, B: PacketBuffer + ?Sized> std::fmt::Debug for SimulationEngine<'a, B> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SimulationEngine")
            .field("design", &self.buffer.design_name())
            .field("slot", &self.buffer.current_slot())
            .finish()
    }
}

impl<'a> SimulationEngine<'a> {
    /// Creates a type-erased engine around `buffer` (the CLI entry point).
    pub fn new(buffer: &'a mut (dyn PacketBuffer + 'a)) -> Self {
        SimulationEngine {
            buffer,
            record_grants: false,
            workload_label: None,
        }
    }
}

impl<'a, B: PacketBuffer + ?Sized> SimulationEngine<'a, B> {
    /// Creates a monomorphized engine around a concrete buffer type: the
    /// fast path used by the lab runner and the benchmarks.
    pub fn new_mono(buffer: &'a mut B) -> Self {
        SimulationEngine {
            buffer,
            record_grants: false,
            workload_label: None,
        }
    }

    /// Records the queue of every granted cell in the report (needed by the
    /// cross-design equivalence tests).
    pub fn record_grants(mut self, record: bool) -> Self {
        self.record_grants = record;
        self
    }

    /// Supplies the report's workload label up front (callers that know the
    /// workload statically hoist the `"{arrivals}+{requests}"` naming out of
    /// `run`). Must match what `run` would derive from the generator names —
    /// the mono/dyn differential tests pin this.
    pub fn with_workload_label(mut self, label: &'static str) -> Self {
        self.workload_label = Some(label);
        self
    }

    /// Runs the workload **slot by slot**: `active_slots` slots with both
    /// generators running, followed by a drain phase (arrivals stop, requests
    /// continue while any queue still has requestable cells, then the
    /// pipeline empties).
    ///
    /// This is the reference engine. [`SimulationEngine::run_chunked`]
    /// produces bit-identical reports by processing slots in batches; the
    /// differential suites pin the two (and the type-erased path) together.
    ///
    /// Generic over the generator types for the same reason the engine is
    /// generic over the buffer: concrete generators compile to a slot loop
    /// with no virtual dispatch, while `&mut dyn` generators still work for
    /// runtime composition.
    ///
    /// Generators observe the **buffer clock**: the slot number passed to
    /// `arrivals.next` / `requests.next` is `buffer.current_slot()` at that
    /// slot, so driving a warm (already-stepped) buffer continues the slot
    /// numbering instead of restarting it — the same convention the chunked
    /// engine's fused batch loops follow, which is what keeps the two
    /// engines bit-identical for slot-sensitive generators.
    pub fn run<A: ArrivalGenerator + ?Sized, R: RequestGenerator + ?Sized>(
        self,
        arrivals: &mut A,
        requests: &mut R,
        active_slots: u64,
    ) -> SimulationReport {
        let mut grant_log = self.record_grants.then(Vec::new); // analyze: allow(hotpath-alloc) — grant-log setup at run entry, before the slot loop
        let workload = match self.workload_label {
            Some(label) => label,
            None => workload_label(arrivals.name(), requests.name()),
        };
        let buffer = self.buffer;
        // The drain flush horizon is a fixed property of the pipeline; query
        // it once instead of once per drain decision.
        let flush = buffer.pipeline_delay_slots() as u64 + 4;
        let start = buffer.current_slot();

        for t in start..start + active_slots {
            let arrival = arrivals.next(t);
            let request = {
                let probe = &*buffer;
                requests.next(t, &|q: LogicalQueueId| probe.requestable_cells(q))
            };
            let outcome = buffer.step(arrival, request);
            if let (Some(log), Some(cell)) = (grant_log.as_mut(), &outcome.granted) {
                log.push(cell.queue().index());
            }
        }

        // Drain: request whatever is still requestable, then flush the
        // pipeline.
        let mut t = start + active_slots;
        let mut idle_streak = 0u64;
        while idle_streak <= flush {
            let request = {
                let probe = &*buffer;
                requests.next(t, &|q: LogicalQueueId| probe.requestable_cells(q))
            };
            if request.is_none() {
                idle_streak += 1;
            } else {
                idle_streak = 0;
            }
            let outcome = buffer.step(None, request);
            if let (Some(log), Some(cell)) = (grant_log.as_mut(), &outcome.granted) {
                log.push(cell.queue().index());
            }
            t += 1;
        }

        SimulationReport {
            design: buffer.design_name(),
            workload,
            slots: buffer.current_slot(),
            stats: *buffer.stats(),
            grant_log,
        }
    }
}

/// Slots per chunk of the chunked engine. Sized so a chunk's arrival ring
/// (256 × `Option<Cell>`) lives comfortably in L1/L2 and on the stack, while
/// the per-chunk bookkeeping (fast-forward probe, debug cross-check) is
/// amortised over enough slots to vanish.
pub const CHUNK_SLOTS: usize = 256;

/// Adapts a `traffic::RequestGenerator` to the buffer-side
/// [`pktbuf::RequestSource`] contract. A wrapper type (rather than a
/// blanket impl) keeps `pktbuf` independent of the workload crate while the
/// whole probe chain — generator scan and availability oracle — stays
/// monomorphized. Public so benchmarks driving
/// [`pktbuf::PacketBuffer::step_batch`] directly use the exact adapter the
/// engine uses.
#[derive(Debug)]
pub struct GeneratorSource<'r, R>(pub &'r mut R);

impl<R: RequestGenerator> RequestSource for GeneratorSource<'_, R> {
    #[inline]
    fn next_request<F>(&mut self, slot: u64, requestable: &F) -> Option<LogicalQueueId>
    where
        F: Fn(LogicalQueueId) -> u64 + ?Sized,
    {
        self.0.next_inline(slot, requestable)
    }

    fn idle_skippable(&self) -> bool {
        self.0.idle_skippable()
    }
}

/// Debug-build differential hook: captures buffer/sink counters at a chunk
/// boundary and cross-checks the chunked path's accounting after the chunk —
/// every slot must be stepped (or arithmetically skipped) exactly once, and
/// every grant the buffer counted must have reached the sink when recording.
struct ChunkCheck {
    #[cfg(debug_assertions)]
    slot: u64,
    #[cfg(debug_assertions)]
    grants: u64,
    #[cfg(debug_assertions)]
    recorded: usize,
}

impl ChunkCheck {
    #[cfg(debug_assertions)]
    fn before<B: PacketBuffer + ?Sized>(buffer: &B, sink: &GrantSink) -> Self {
        ChunkCheck {
            slot: buffer.current_slot(),
            grants: buffer.stats().grants,
            recorded: sink.recorded(),
        }
    }

    #[cfg(not(debug_assertions))]
    #[inline(always)]
    fn before<B: PacketBuffer + ?Sized>(_buffer: &B, _sink: &GrantSink) -> Self {
        ChunkCheck {}
    }

    #[cfg(debug_assertions)]
    fn after<B: PacketBuffer + ?Sized>(self, buffer: &B, sink: &GrantSink, slots: u64) {
        debug_assert_eq!(
            buffer.current_slot(),
            self.slot + slots,
            "chunked engine lost or duplicated slots"
        );
        debug_assert_eq!(
            buffer.stats().slots,
            buffer.current_slot(),
            "buffer slot statistics diverged from the clock"
        );
        if sink.is_recording() {
            debug_assert_eq!(
                (sink.recorded() - self.recorded) as u64,
                buffer.stats().grants - self.grants,
                "chunked engine dropped grants from the log"
            );
        }
    }

    #[cfg(not(debug_assertions))]
    #[inline(always)]
    fn after<B: PacketBuffer + ?Sized>(self, _buffer: &B, _sink: &GrantSink, _slots: u64) {}
}

impl<'a, B: PacketBuffer> SimulationEngine<'a, B> {
    /// Runs the workload through the **chunked** engine: arrivals are
    /// generated a whole chunk at a time into a stack ring
    /// ([`traffic::ArrivalGenerator::fill_arrivals`]), each chunk is executed
    /// by one [`pktbuf::PacketBuffer::step_batch`] call (the designs' fused
    /// batch loops), and chunks in which provably nothing can happen — no
    /// arrivals, nothing requestable, quiescent pipeline — are skipped in
    /// O(1) via [`pktbuf::PacketBuffer::advance_idle`]. The drain phase is
    /// chunked the same way and its tail (the fixed pipeline flush after the
    /// last request) collapses to a single fast-forward.
    ///
    /// The report is bit-identical to [`SimulationEngine::run`] on the same
    /// inputs: batch loops replay the exact slot sequence — generators
    /// observe the buffer clock in both engines — and a fast-forward is
    /// taken only when the skipped calls are unobservable (the request
    /// generator contract — never request an empty queue — plus, during the
    /// active phase, [`traffic::RequestGenerator::idle_skippable`]). Debug
    /// builds cross-check the accounting at every chunk boundary.
    pub fn run_chunked<A: ArrivalGenerator + ?Sized, R: RequestGenerator>(
        self,
        arrivals: &mut A,
        requests: &mut R,
        active_slots: u64,
    ) -> SimulationReport {
        let workload = match self.workload_label {
            Some(label) => label,
            None => workload_label(arrivals.name(), requests.name()),
        };
        let mut sink = GrantSink::new(self.record_grants);
        let buffer = self.buffer;
        // The drain flush horizon is a fixed property of the pipeline; query
        // it once instead of once per drain decision.
        let flush = buffer.pipeline_delay_slots() as u64 + 4;
        let start = buffer.current_slot();
        let mut ring: [Option<Cell>; CHUNK_SLOTS] = std::array::from_fn(|_| None);
        let mut source = GeneratorSource(requests);

        // Active phase.
        let mut done = 0u64;
        while done < active_slots {
            let len = CHUNK_SLOTS.min((active_slots - done) as usize);
            let chunk = &mut ring[..len];
            // Arrivals, like requests, observe the buffer clock.
            let produced = arrivals.fill_arrivals(start + done, chunk);
            let check = ChunkCheck::before(buffer, &sink);
            if produced == 0
                && source.idle_skippable()
                && buffer.is_quiescent()
                && buffer.requestable_total() == 0
            {
                // Nothing can happen in this chunk: no arrival, a frozen
                // (empty) requestable set — so a skippable generator returns
                // `None` throughout — and a pipeline with nothing in flight.
                buffer.advance_idle(len as u64);
            } else {
                buffer.step_batch(chunk, &mut source, &mut sink);
            }
            check.after(buffer, &sink, len as u64);
            done += len as u64;
        }

        // Drain: request whatever is still requestable, then flush the
        // pipeline. Chunks never outrun the reference termination rule
        // ("stop after `flush + 1` consecutive request-less slots"): each is
        // capped at the remaining request-less budget, so the rule can only
        // trip exactly at a chunk boundary.
        let mut idle_streak = 0u64;
        while idle_streak <= flush {
            if buffer.is_quiescent() && buffer.requestable_total() == 0 {
                // The requestable set is frozen at zero, so *any*
                // contract-abiding generator returns `None` for every
                // remaining slot (and the run ends, so skipped RNG draws are
                // unobservable): fast-forward the rest of the flush.
                let check = ChunkCheck::before(buffer, &sink);
                let remaining = flush + 1 - idle_streak;
                buffer.advance_idle(remaining);
                check.after(buffer, &sink, remaining);
                break;
            }
            let len = CHUNK_SLOTS.min((flush + 1 - idle_streak) as usize);
            let chunk = &mut ring[..len];
            let check = ChunkCheck::before(buffer, &sink);
            let batch = buffer.step_batch(chunk, &mut source, &mut sink);
            check.after(buffer, &sink, len as u64);
            idle_streak = if batch.requests > 0 {
                batch.trailing_requestless
            } else {
                idle_streak + len as u64
            };
        }

        SimulationReport {
            design: buffer.design_name(),
            workload,
            slots: buffer.current_slot(),
            stats: *buffer.stats(),
            grant_log: sink.into_log(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pktbuf::{CfdsBuffer, PacketBuffer, RadsBuffer};
    use pktbuf_model::{CfdsConfig, LineRate, RadsConfig};
    use traffic::{AdversarialRoundRobin, UniformArrivals};

    #[test]
    fn engine_runs_rads_end_to_end() {
        let cfg = RadsConfig {
            line_rate: LineRate::Oc3072,
            num_queues: 4,
            granularity: 4,
            lookahead: None,
            dram: Default::default(),
        };
        let mut buf = RadsBuffer::new(cfg);
        let mut arrivals = UniformArrivals::new(4, 0.8, 42);
        let mut requests = AdversarialRoundRobin::new(4);
        let report = SimulationEngine::new(&mut buf).record_grants(true).run(
            &mut arrivals,
            &mut requests,
            2_000,
        );
        assert_eq!(report.design, "RADS");
        assert!(report.workload.contains("uniform"));
        assert!(report.stats.is_loss_free(), "{:?}", report.stats);
        assert!(report.stats.grants > 0);
        assert!(report.grants_per_slot() > 0.0);
        assert_eq!(
            report.grant_log.as_ref().unwrap().len() as u64,
            report.stats.grants
        );
    }

    #[test]
    fn engine_runs_cfds_end_to_end() {
        let cfg = CfdsConfig::builder()
            .num_queues(4)
            .granularity(2)
            .rads_granularity(8)
            .num_banks(16)
            .build()
            .unwrap();
        let mut buf = CfdsBuffer::new(cfg);
        let mut arrivals = UniformArrivals::new(4, 0.8, 7);
        let mut requests = AdversarialRoundRobin::new(4);
        let report = SimulationEngine::new(&mut buf).run(&mut arrivals, &mut requests, 2_000);
        assert_eq!(report.design, "CFDS");
        assert!(report.stats.is_loss_free(), "{:?}", report.stats);
        assert_eq!(report.stats.bank_conflicts, 0);
        assert!(report.grant_log.is_none());
        assert_eq!(buf.stats().grants, report.stats.grants);
    }
}
