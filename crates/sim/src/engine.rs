//! The slot-level simulation engine.

use pktbuf::{BufferStats, PacketBuffer};
use pktbuf_model::LogicalQueueId;
use serde::{Serialize, Serializer};
use traffic::{ArrivalGenerator, RequestGenerator};

/// Result of one simulation run.
#[derive(Debug, Clone, PartialEq)]
pub struct SimulationReport {
    /// Design under test ("RADS", "CFDS", "DRAM-only"). Backed by the
    /// buffer's static name — reports are built once per run and must not
    /// allocate a fresh `String` each time.
    pub design: &'static str,
    /// Workload names ("uniform" arrivals / "adversarial-round-robin"
    /// requests…).
    pub workload: String,
    /// Slots simulated, including the drain phase.
    pub slots: u64,
    /// Buffer statistics at the end of the run.
    pub stats: BufferStats,
    /// Queue indices of granted cells, in grant order (recorded only when
    /// requested; used to compare designs cell by cell).
    pub grant_log: Option<Vec<u32>>,
}

// Hand-written so that reports really encode (the vendored derive only
// type-checks). Reports are write-only: there is no Deserialize.
impl Serialize for SimulationReport {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        use serde::ser::SerializeStruct as _;
        let mut st = serializer.serialize_struct("SimulationReport", 6)?;
        st.serialize_field("design", &self.design)?;
        st.serialize_field("workload", &self.workload)?;
        st.serialize_field("slots", &self.slots)?;
        st.serialize_field("grants_per_slot", &self.grants_per_slot())?;
        st.serialize_field("stats", &self.stats)?;
        st.serialize_field("grant_log", &self.grant_log)?;
        st.end()
    }
}

impl SimulationReport {
    /// Throughput in grants per slot over the whole run.
    pub fn grants_per_slot(&self) -> f64 {
        if self.slots == 0 {
            0.0
        } else {
            self.stats.grants as f64 / self.slots as f64
        }
    }
}

/// Drives a packet buffer with workload generators.
///
/// The engine is generic over the buffer type. The default parameter keeps
/// the type-erased entry point (`SimulationEngine::new` over
/// `&mut dyn PacketBuffer`) that the CLI uses, while
/// [`SimulationEngine::new_mono`] monomorphises the whole slot loop for a
/// concrete buffer type — no per-slot virtual dispatch — which is what
/// [`crate::scenario::Scenario`] and the benchmarks run. Both paths execute
/// the same `run` body, so their reports are bit-identical (pinned by the
/// `mono_dyn_equivalence` test suite).
pub struct SimulationEngine<'a, B: PacketBuffer + ?Sized = dyn PacketBuffer + 'a> {
    buffer: &'a mut B,
    record_grants: bool,
    workload_label: Option<&'static str>,
}

impl<'a, B: PacketBuffer + ?Sized> std::fmt::Debug for SimulationEngine<'a, B> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SimulationEngine")
            .field("design", &self.buffer.design_name())
            .field("slot", &self.buffer.current_slot())
            .finish()
    }
}

impl<'a> SimulationEngine<'a> {
    /// Creates a type-erased engine around `buffer` (the CLI entry point).
    pub fn new(buffer: &'a mut (dyn PacketBuffer + 'a)) -> Self {
        SimulationEngine {
            buffer,
            record_grants: false,
            workload_label: None,
        }
    }
}

impl<'a, B: PacketBuffer + ?Sized> SimulationEngine<'a, B> {
    /// Creates a monomorphized engine around a concrete buffer type: the
    /// fast path used by the lab runner and the benchmarks.
    pub fn new_mono(buffer: &'a mut B) -> Self {
        SimulationEngine {
            buffer,
            record_grants: false,
            workload_label: None,
        }
    }

    /// Records the queue of every granted cell in the report (needed by the
    /// cross-design equivalence tests).
    pub fn record_grants(mut self, record: bool) -> Self {
        self.record_grants = record;
        self
    }

    /// Supplies the report's workload label up front (callers that know the
    /// workload statically hoist the `"{arrivals}+{requests}"` naming out of
    /// `run`). Must match what `run` would derive from the generator names —
    /// the mono/dyn differential tests pin this.
    pub fn with_workload_label(mut self, label: &'static str) -> Self {
        self.workload_label = Some(label);
        self
    }

    /// Runs the workload: `active_slots` slots with both generators running,
    /// followed by a drain phase (arrivals stop, requests continue while any
    /// queue still has requestable cells, then the pipeline empties).
    ///
    /// Generic over the generator types for the same reason the engine is
    /// generic over the buffer: concrete generators compile to a slot loop
    /// with no virtual dispatch, while `&mut dyn` generators still work for
    /// runtime composition.
    pub fn run<A: ArrivalGenerator + ?Sized, R: RequestGenerator + ?Sized>(
        self,
        arrivals: &mut A,
        requests: &mut R,
        active_slots: u64,
    ) -> SimulationReport {
        let mut grant_log = self.record_grants.then(Vec::new);
        let workload = match self.workload_label {
            Some(label) => label.to_owned(),
            None => format!("{}+{}", arrivals.name(), requests.name()),
        };
        let buffer = self.buffer;
        // The drain flush horizon is a fixed property of the pipeline; query
        // it once instead of once per drain decision.
        let flush = buffer.pipeline_delay_slots() as u64 + 4;

        for t in 0..active_slots {
            let arrival = arrivals.next(t);
            let request = {
                let probe = &*buffer;
                requests.next(t, &|q: LogicalQueueId| probe.requestable_cells(q))
            };
            let outcome = buffer.step(arrival, request);
            if let (Some(log), Some(cell)) = (grant_log.as_mut(), &outcome.granted) {
                log.push(cell.queue().index());
            }
        }

        // Drain: request whatever is still requestable, then flush the
        // pipeline.
        let mut t = active_slots;
        let mut idle_streak = 0u64;
        while idle_streak <= flush {
            let request = {
                let probe = &*buffer;
                requests.next(t, &|q: LogicalQueueId| probe.requestable_cells(q))
            };
            if request.is_none() {
                idle_streak += 1;
            } else {
                idle_streak = 0;
            }
            let outcome = buffer.step(None, request);
            if let (Some(log), Some(cell)) = (grant_log.as_mut(), &outcome.granted) {
                log.push(cell.queue().index());
            }
            t += 1;
        }

        SimulationReport {
            design: buffer.design_name(),
            workload,
            slots: buffer.current_slot(),
            stats: *buffer.stats(),
            grant_log,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pktbuf::{CfdsBuffer, PacketBuffer, RadsBuffer};
    use pktbuf_model::{CfdsConfig, LineRate, RadsConfig};
    use traffic::{AdversarialRoundRobin, UniformArrivals};

    #[test]
    fn engine_runs_rads_end_to_end() {
        let cfg = RadsConfig {
            line_rate: LineRate::Oc3072,
            num_queues: 4,
            granularity: 4,
            lookahead: None,
            dram: Default::default(),
        };
        let mut buf = RadsBuffer::new(cfg);
        let mut arrivals = UniformArrivals::new(4, 0.8, 42);
        let mut requests = AdversarialRoundRobin::new(4);
        let report = SimulationEngine::new(&mut buf).record_grants(true).run(
            &mut arrivals,
            &mut requests,
            2_000,
        );
        assert_eq!(report.design, "RADS");
        assert!(report.workload.contains("uniform"));
        assert!(report.stats.is_loss_free(), "{:?}", report.stats);
        assert!(report.stats.grants > 0);
        assert!(report.grants_per_slot() > 0.0);
        assert_eq!(
            report.grant_log.as_ref().unwrap().len() as u64,
            report.stats.grants
        );
    }

    #[test]
    fn engine_runs_cfds_end_to_end() {
        let cfg = CfdsConfig::builder()
            .num_queues(4)
            .granularity(2)
            .rads_granularity(8)
            .num_banks(16)
            .build()
            .unwrap();
        let mut buf = CfdsBuffer::new(cfg);
        let mut arrivals = UniformArrivals::new(4, 0.8, 7);
        let mut requests = AdversarialRoundRobin::new(4);
        let report = SimulationEngine::new(&mut buf).run(&mut arrivals, &mut requests, 2_000);
        assert_eq!(report.design, "CFDS");
        assert!(report.stats.is_loss_free(), "{:?}", report.stats);
        assert_eq!(report.stats.bank_conflicts, 0);
        assert!(report.grant_log.is_none());
        assert_eq!(buf.stats().grants, report.stats.grants);
    }
}
