//! Ready-made experiment scenarios shared by tests, examples and benches.

use crate::engine::{SimulationEngine, SimulationReport};
use pktbuf::{CfdsBuffer, CfdsBufferOptions, DramOnlyBuffer, PacketBuffer, RadsBuffer};
use pktbuf_model::{
    CfdsConfig, ConfigError, ConfigOverrides, DramTiming, LineRate, LogicalQueueId, RadsConfig,
};
use serde::{de, Deserialize, Deserializer, Serialize, Serializer};
use std::fmt;
use std::str::FromStr;
use traffic::{
    stream_seed, AdversarialRoundRobin, ArrivalGenerator, BurstyArrivals, GreedyQueueDrain,
    HotspotArrivals, HotspotRequests, RequestGenerator, UniformArrivals, UniformRandomRequests,
};

/// Error returned when a design or workload name cannot be parsed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseNameError {
    what: &'static str,
    input: String,
    expected: &'static str,
}

impl ParseNameError {
    /// Creates a parse error (shared with the fabric layer's name enums).
    pub(crate) fn new(what: &'static str, input: &str, expected: &'static str) -> Self {
        ParseNameError {
            what,
            input: input.to_owned(),
            expected,
        }
    }
}

impl fmt::Display for ParseNameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "cannot parse {:?} as a {} (expected one of: {})",
            self.input, self.what, self.expected
        )
    }
}

impl std::error::Error for ParseNameError {}

/// Lower-cases and strips `-`/`_` so that `"DRAM-only"`, `"dram_only"` and
/// `"dramonly"` all compare equal.
pub(crate) fn normalize_name(s: &str) -> String {
    s.trim()
        .chars()
        .filter(|c| *c != '-' && *c != '_')
        .map(|c| c.to_ascii_lowercase())
        .collect()
}

/// Which packet-buffer design a scenario exercises.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DesignKind {
    /// DRAM-only baseline (§1).
    DramOnly,
    /// Hybrid SRAM/DRAM baseline (§3).
    Rads,
    /// The paper's conflict-free DRAM system (§5).
    Cfds,
}

impl DesignKind {
    /// All designs, baseline first.
    pub fn all() -> [DesignKind; 3] {
        [DesignKind::DramOnly, DesignKind::Rads, DesignKind::Cfds]
    }
}

impl fmt::Display for DesignKind {
    /// The canonical name, matching what the buffers report as
    /// `design_name()` ("DRAM-only", "RADS", "CFDS").
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            DesignKind::DramOnly => "DRAM-only",
            DesignKind::Rads => "RADS",
            DesignKind::Cfds => "CFDS",
        })
    }
}

impl FromStr for DesignKind {
    type Err = ParseNameError;

    /// Case-insensitive; `-` and `_` are ignored, so `dram-only`,
    /// `DRAM_only` and the `Display` form all parse.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match normalize_name(s).as_str() {
            "dramonly" | "dram" => Ok(DesignKind::DramOnly),
            "rads" => Ok(DesignKind::Rads),
            "cfds" => Ok(DesignKind::Cfds),
            _ => Err(ParseNameError {
                what: "design",
                input: s.to_owned(),
                expected: "dram-only, rads, cfds",
            }),
        }
    }
}

/// Which workload a scenario applies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Workload {
    /// The ECQF worst case: round-robin drain over all queues.
    AdversarialRoundRobin,
    /// Uniform random arrivals and requests.
    UniformRandom,
    /// Bursty (on/off) arrivals with round-robin requests.
    Bursty,
    /// Hot-spotted arrivals and requests.
    Hotspot,
    /// Drain one queue at a time (long same-queue runs).
    GreedyDrain,
}

impl Workload {
    /// All workloads.
    pub fn all() -> [Workload; 5] {
        [
            Workload::AdversarialRoundRobin,
            Workload::UniformRandom,
            Workload::Bursty,
            Workload::Hotspot,
            Workload::GreedyDrain,
        ]
    }

    /// The engine's `"{arrivals}+{requests}"` report label for this workload,
    /// precomputed so per-run report construction does not format it afresh.
    /// `live_arrivals` selects between the live arrival generator and the
    /// preload-only stub.
    pub fn engine_label(self, live_arrivals: bool) -> &'static str {
        match (self, live_arrivals) {
            (Workload::AdversarialRoundRobin, true) => "uniform+adversarial-round-robin",
            (Workload::AdversarialRoundRobin | Workload::Bursty, false) => {
                "preload-only+adversarial-round-robin"
            }
            (Workload::UniformRandom, true) => "uniform+uniform-random",
            (Workload::UniformRandom, false) => "preload-only+uniform-random",
            (Workload::Bursty, true) => "bursty+adversarial-round-robin",
            (Workload::Hotspot, true) => "hotspot+hotspot",
            (Workload::Hotspot, false) => "preload-only+hotspot",
            (Workload::GreedyDrain, true) => "uniform+greedy-queue-drain",
            (Workload::GreedyDrain, false) => "preload-only+greedy-queue-drain",
        }
    }
}

impl fmt::Display for Workload {
    /// Kebab-case canonical name (`adversarial-round-robin`, …).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Workload::AdversarialRoundRobin => "adversarial-round-robin",
            Workload::UniformRandom => "uniform-random",
            Workload::Bursty => "bursty",
            Workload::Hotspot => "hotspot",
            Workload::GreedyDrain => "greedy-drain",
        })
    }
}

impl FromStr for Workload {
    type Err = ParseNameError;

    /// Case-insensitive; `-` and `_` are ignored, so the `Display` form, the
    /// Rust variant name and obvious abbreviations all parse.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match normalize_name(s).as_str() {
            "adversarialroundrobin" | "arr" => Ok(Workload::AdversarialRoundRobin),
            "uniformrandom" | "uniform" => Ok(Workload::UniformRandom),
            "bursty" => Ok(Workload::Bursty),
            "hotspot" => Ok(Workload::Hotspot),
            "greedydrain" | "greedy" => Ok(Workload::GreedyDrain),
            _ => Err(ParseNameError {
                what: "workload",
                input: s.to_owned(),
                expected: "adversarial-round-robin, uniform-random, bursty, hotspot, greedy-drain",
            }),
        }
    }
}

/// Implements string-shaped serde for a type with `Display` + `FromStr`
/// (the vendored derive cannot encode enums).
macro_rules! serde_via_string {
    ($ty:ty, $expecting:literal) => {
        impl Serialize for $ty {
            fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                serializer.serialize_str(&self.to_string())
            }
        }

        impl<'de> Deserialize<'de> for $ty {
            fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
                struct V;
                impl<'de> de::Visitor<'de> for V {
                    type Value = $ty;
                    fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                        f.write_str($expecting)
                    }
                    fn visit_str<E: de::Error>(self, v: &str) -> Result<Self::Value, E> {
                        v.parse().map_err(|e: ParseNameError| E::custom(e))
                    }
                }
                deserializer.deserialize_any(V)
            }
        }
    };
}

serde_via_string!(DesignKind, "a design name (dram-only, rads, cfds)");
serde_via_string!(Workload, "a workload name");

pub(crate) use serde_via_string;

/// A fully specified experiment scenario: one expanded run of an
/// [`crate::spec::ExperimentSpec`], or a hand-built one-off.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Scenario {
    /// Design under test.
    pub design: DesignKind,
    /// Workload applied.
    pub workload: Workload,
    /// Line rate of the interface (sets the slot duration).
    pub line_rate: LineRate,
    /// Number of logical queues `Q`.
    pub num_queues: usize,
    /// CFDS granularity `b` (ignored by RADS and DRAM-only).
    pub granularity: usize,
    /// RADS granularity `B` (DRAM random access time in slots).
    pub rads_granularity: usize,
    /// Number of DRAM banks `M` (CFDS only).
    pub num_banks: usize,
    /// Cells preloaded into the DRAM per queue before the run (rounded down to
    /// a multiple of the transfer granularity).
    pub preload_cells_per_queue: u64,
    /// Slots during which the arrival generator is active. Preload and live
    /// arrivals are mutually exclusive (sequence numbers would clash).
    pub arrival_slots: u64,
    /// Seed for the random workloads (arrivals use
    /// [`traffic::stream_seed`]`(seed, 0)`, requests stream 1).
    pub seed: u64,
    /// Optional configuration knobs applied on top of the parameters above.
    pub overrides: ConfigOverrides,
}

/// Workload parameters shared by the type-erased generator builders and the
/// monomorphized dispatch — one source of truth, so the two run paths cannot
/// drift apart (the `mono_dyn_equivalence` tests additionally pin this).
const DRAIN_ARRIVAL_LOAD: f64 = 0.9;
/// Arrival load of the uniform-random workload.
const UNIFORM_ARRIVAL_LOAD: f64 = 0.8;
/// Request load of the uniform-random workload.
const REQUEST_LOAD: f64 = 0.9;
/// Mean on-burst length (slots) of the bursty workload.
const BURST_ON_SLOTS: f64 = 32.0;
/// Mean off-gap length (slots) of the bursty workload.
const BURST_OFF_SLOTS: f64 = 8.0;
/// Fraction of hotspot traffic aimed at the hot queues.
const HOT_FRACTION: f64 = 0.8;

/// Number of hot queues in the hotspot workload.
fn hot_queue_count(num_queues: usize) -> usize {
    num_queues.div_ceil(8)
}

impl Scenario {
    /// A small CFDS scenario useful as a smoke test.
    pub fn small_cfds() -> Self {
        Scenario {
            design: DesignKind::Cfds,
            workload: Workload::AdversarialRoundRobin,
            line_rate: LineRate::Oc3072,
            num_queues: 8,
            granularity: 2,
            rads_granularity: 8,
            num_banks: 16,
            preload_cells_per_queue: 32,
            arrival_slots: 0,
            seed: 1,
            overrides: ConfigOverrides::none(),
        }
    }

    /// The RADS configuration implied by this scenario.
    pub fn rads_config(&self) -> RadsConfig {
        self.overrides.apply_rads(RadsConfig {
            line_rate: self.line_rate,
            num_queues: self.num_queues,
            granularity: self.rads_granularity,
            lookahead: None,
            dram: DramTiming::paper_design_point(),
        })
    }

    /// The CFDS configuration implied by this scenario, or the reason it is
    /// invalid.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] when the parameters violate the divisibility
    /// or lookahead constraints (a sweep's cartesian product may contain such
    /// combinations; the spec layer skips them).
    pub fn try_cfds_config(&self) -> Result<CfdsConfig, ConfigError> {
        self.overrides
            .apply_cfds(
                CfdsConfig::builder()
                    .line_rate(self.line_rate)
                    .num_queues(self.num_queues)
                    .granularity(self.granularity)
                    .rads_granularity(self.rads_granularity)
                    .num_banks(self.num_banks),
            )
            .build()
    }

    /// The CFDS configuration implied by this scenario.
    ///
    /// # Panics
    ///
    /// Panics if the parameters do not form a valid CFDS configuration.
    pub fn cfds_config(&self) -> CfdsConfig {
        self.try_cfds_config()
            .expect("scenario parameters form a valid CFDS configuration")
    }

    /// Checks that this scenario's parameters form a valid configuration for
    /// its design.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] exactly when building the buffer would panic.
    pub fn validate(&self) -> Result<(), ConfigError> {
        match self.design {
            DesignKind::Cfds => self.try_cfds_config().map(drop),
            DesignKind::DramOnly | DesignKind::Rads => self.rads_config().validate(),
        }
    }

    /// Cells preloaded per queue, rounded down to the design's transfer
    /// granularity.
    fn preload_amount(&self) -> u64 {
        let granularity = match self.design {
            DesignKind::Cfds => self.granularity,
            _ => self.rads_granularity,
        };
        self.preload_cells_per_queue - self.preload_cells_per_queue % granularity as u64
    }

    /// Builds the DRAM-only baseline for this scenario, preloaded as
    /// requested.
    pub fn build_dram_only(&self) -> DramOnlyBuffer {
        let mut buf = DramOnlyBuffer::new(self.rads_config());
        for (q, cells) in traffic::preload_cells(self.num_queues, self.preload_amount()) {
            buf.preload(q, cells);
        }
        buf
    }

    /// Builds the RADS buffer for this scenario, preloaded as requested.
    pub fn build_rads(&self) -> RadsBuffer {
        let mut buf = RadsBuffer::new(self.rads_config());
        for (q, cells) in traffic::preload_cells(self.num_queues, self.preload_amount()) {
            buf.preload_dram(q, cells);
        }
        buf
    }

    /// Builds the CFDS buffer for this scenario, preloaded as requested.
    pub fn build_cfds(&self) -> CfdsBuffer {
        let options = CfdsBufferOptions {
            dram_capacity_cells: self
                .overrides
                .dram_capacity_cells
                .map(|c| usize::try_from(c).unwrap_or(usize::MAX)),
            ..CfdsBufferOptions::default()
        };
        let mut buf = CfdsBuffer::with_options(self.cfds_config(), options);
        for (q, cells) in traffic::preload_cells(self.num_queues, self.preload_amount()) {
            buf.preload_dram(q, cells);
        }
        buf
    }

    /// Builds the buffer under test behind the type-erased trait (the CLI
    /// composition path; the scenario runners below use the concrete
    /// builders and the monomorphized engine instead).
    pub fn build_buffer(&self) -> Box<dyn PacketBuffer + Send> {
        match self.design {
            DesignKind::DramOnly => Box::new(self.build_dram_only()),
            DesignKind::Rads => Box::new(self.build_rads()),
            DesignKind::Cfds => Box::new(self.build_cfds()),
        }
    }

    fn build_arrivals(&self) -> Box<dyn ArrivalGenerator + Send> {
        let q = self.num_queues;
        let seed = stream_seed(self.seed, 0);
        match self.workload {
            Workload::AdversarialRoundRobin | Workload::GreedyDrain => {
                Box::new(UniformArrivals::new(q, DRAIN_ARRIVAL_LOAD, seed))
            }
            Workload::UniformRandom => {
                Box::new(UniformArrivals::new(q, UNIFORM_ARRIVAL_LOAD, seed))
            }
            Workload::Bursty => Box::new(BurstyArrivals::new(
                q,
                BURST_ON_SLOTS,
                BURST_OFF_SLOTS,
                seed,
            )),
            Workload::Hotspot => Box::new(HotspotArrivals::new(
                q,
                DRAIN_ARRIVAL_LOAD,
                hot_queue_count(q),
                HOT_FRACTION,
                seed,
            )),
        }
    }

    fn build_requests(&self) -> Box<dyn RequestGenerator + Send> {
        let q = self.num_queues;
        let seed = stream_seed(self.seed, 1);
        match self.workload {
            Workload::AdversarialRoundRobin | Workload::Bursty => {
                Box::new(AdversarialRoundRobin::new(q))
            }
            Workload::UniformRandom => Box::new(UniformRandomRequests::new(q, REQUEST_LOAD, seed)),
            Workload::Hotspot => Box::new(HotspotRequests::new(
                q,
                hot_queue_count(q),
                HOT_FRACTION,
                seed,
            )),
            Workload::GreedyDrain => Box::new(GreedyQueueDrain::new(q)),
        }
    }

    /// Runs the scenario to completion and returns the report.
    ///
    /// # Panics
    ///
    /// Panics if both a preload and live arrivals are requested (their
    /// sequence numbers would clash).
    pub fn run(&self) -> SimulationReport {
        self.run_with_grant_log(false)
    }

    fn assert_exclusive(&self) {
        assert!(
            self.preload_cells_per_queue == 0 || self.arrival_slots == 0,
            "preload and live arrivals are mutually exclusive in a scenario"
        );
    }

    /// Drives one concrete buffer through the monomorphized engine,
    /// dispatching once per run to concrete generator types (the same
    /// constructions as [`Scenario::build_arrivals`] /
    /// [`Scenario::build_requests`], minus the per-slot virtual dispatch).
    fn run_engine<B: PacketBuffer>(
        &self,
        buffer: &mut B,
        record: bool,
        mode: EngineMode,
    ) -> SimulationReport {
        let q = self.num_queues;
        let seed = stream_seed(self.seed, 1);
        match self.workload {
            Workload::AdversarialRoundRobin | Workload::Bursty => {
                self.run_with_requests(buffer, AdversarialRoundRobin::new(q), record, mode)
            }
            Workload::UniformRandom => self.run_with_requests(
                buffer,
                UniformRandomRequests::new(q, REQUEST_LOAD, seed),
                record,
                mode,
            ),
            Workload::Hotspot => self.run_with_requests(
                buffer,
                HotspotRequests::new(q, hot_queue_count(q), HOT_FRACTION, seed),
                record,
                mode,
            ),
            Workload::GreedyDrain => {
                self.run_with_requests(buffer, GreedyQueueDrain::new(q), record, mode)
            }
        }
    }

    fn run_with_requests<B: PacketBuffer, R: RequestGenerator>(
        &self,
        buffer: &mut B,
        mut requests: R,
        record: bool,
        mode: EngineMode,
    ) -> SimulationReport {
        let q = self.num_queues;
        let engine = SimulationEngine::new_mono(buffer)
            .record_grants(record)
            .with_workload_label(self.workload.engine_label(self.arrival_slots > 0));
        if self.arrival_slots == 0 {
            let mut no_arrivals = NoArrivals { num_queues: q };
            return dispatch_engine(mode, engine, &mut no_arrivals, &mut requests, 0);
        }
        let seed = stream_seed(self.seed, 0);
        match self.workload {
            Workload::AdversarialRoundRobin | Workload::GreedyDrain => dispatch_engine(
                mode,
                engine,
                &mut UniformArrivals::new(q, DRAIN_ARRIVAL_LOAD, seed),
                &mut requests,
                self.arrival_slots,
            ),
            Workload::UniformRandom => dispatch_engine(
                mode,
                engine,
                &mut UniformArrivals::new(q, UNIFORM_ARRIVAL_LOAD, seed),
                &mut requests,
                self.arrival_slots,
            ),
            Workload::Bursty => dispatch_engine(
                mode,
                engine,
                &mut BurstyArrivals::new(q, BURST_ON_SLOTS, BURST_OFF_SLOTS, seed),
                &mut requests,
                self.arrival_slots,
            ),
            Workload::Hotspot => dispatch_engine(
                mode,
                engine,
                &mut HotspotArrivals::new(
                    q,
                    DRAIN_ARRIVAL_LOAD,
                    hot_queue_count(q),
                    HOT_FRACTION,
                    seed,
                ),
                &mut requests,
                self.arrival_slots,
            ),
        }
    }

    /// Runs the scenario, optionally recording the per-grant queue log.
    ///
    /// Dispatches once on the design and then runs the monomorphized
    /// **chunked** engine ([`SimulationEngine::run_chunked`]) for the
    /// concrete buffer type: batch arrival generation, fused slot batches,
    /// idle fast-forward. [`Scenario::run_per_slot_with_grant_log`] keeps the
    /// monomorphized per-slot engine and
    /// [`Scenario::run_dyn_with_grant_log`] the type-erased one; all three
    /// produce bit-identical reports (pinned by the differential suites).
    ///
    /// # Panics
    ///
    /// Panics if both a preload and live arrivals are requested.
    pub fn run_with_grant_log(&self, record: bool) -> SimulationReport {
        self.run_mono(record, EngineMode::Chunked)
    }

    /// Runs the scenario through the monomorphized **per-slot** engine — the
    /// reference the chunked engine is differentially tested (and
    /// benchmarked) against.
    ///
    /// # Panics
    ///
    /// Panics if both a preload and live arrivals are requested.
    pub fn run_per_slot_with_grant_log(&self, record: bool) -> SimulationReport {
        self.run_mono(record, EngineMode::PerSlot)
    }

    fn run_mono(&self, record: bool, mode: EngineMode) -> SimulationReport {
        self.assert_exclusive();
        match self.design {
            DesignKind::DramOnly => self.run_engine(&mut self.build_dram_only(), record, mode),
            DesignKind::Rads => self.run_engine(&mut self.build_rads(), record, mode),
            DesignKind::Cfds => self.run_engine(&mut self.build_cfds(), record, mode),
        }
    }

    /// Runs the scenario through the type-erased engine (`&mut dyn
    /// PacketBuffer`), exactly as an embedder composing buffers at runtime
    /// would. Exists so the differential tests can pin the monomorphized
    /// fast path to this reference behaviour.
    ///
    /// # Panics
    ///
    /// Panics if both a preload and live arrivals are requested.
    pub fn run_dyn_with_grant_log(&self, record: bool) -> SimulationReport {
        self.assert_exclusive();
        let mut buffer = self.build_buffer();
        let mut requests = self.build_requests();
        if self.arrival_slots > 0 {
            let mut arrivals = self.build_arrivals();
            SimulationEngine::new(buffer.as_mut())
                .record_grants(record)
                .run(arrivals.as_mut(), requests.as_mut(), self.arrival_slots)
        } else {
            let mut no_arrivals = NoArrivals {
                num_queues: self.num_queues,
            };
            SimulationEngine::new(buffer.as_mut())
                .record_grants(record)
                .run(&mut no_arrivals, requests.as_mut(), 0)
        }
    }
}

// Hand-written serde (the vendored derive cannot encode data): a scenario is
// a flat JSON object. When reading, `line_rate` (OC-3072), `overrides`
// (none), `preload_cells_per_queue` (0), `arrival_slots` (0) and `seed` (1)
// may be omitted and take those defaults; the design, workload and the four
// dimensioning parameters are required.
impl Serialize for Scenario {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        use serde::ser::SerializeStruct as _;
        let mut st = serializer.serialize_struct("Scenario", 11)?;
        st.serialize_field("design", &self.design)?;
        st.serialize_field("workload", &self.workload)?;
        st.serialize_field("line_rate", &self.line_rate)?;
        st.serialize_field("num_queues", &self.num_queues)?;
        st.serialize_field("granularity", &self.granularity)?;
        st.serialize_field("rads_granularity", &self.rads_granularity)?;
        st.serialize_field("num_banks", &self.num_banks)?;
        st.serialize_field("preload_cells_per_queue", &self.preload_cells_per_queue)?;
        st.serialize_field("arrival_slots", &self.arrival_slots)?;
        st.serialize_field("seed", &self.seed)?;
        st.serialize_field("overrides", &self.overrides)?;
        st.end()
    }
}

impl<'de> Deserialize<'de> for Scenario {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct V;
        impl<'de> de::Visitor<'de> for V {
            type Value = Scenario;
            fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str("a scenario object")
            }
            fn visit_map<A: de::MapAccess<'de>>(self, mut map: A) -> Result<Scenario, A::Error> {
                let mut design = None;
                let mut workload = None;
                let mut line_rate = None;
                let mut num_queues = None;
                let mut granularity = None;
                let mut rads_granularity = None;
                let mut num_banks = None;
                let mut preload = None;
                let mut arrival_slots = None;
                let mut seed = None;
                let mut overrides = None;
                while let Some(key) = map.next_key::<String>()? {
                    match key.as_str() {
                        "design" => design = Some(map.next_value()?),
                        "workload" => workload = Some(map.next_value()?),
                        "line_rate" => line_rate = Some(map.next_value()?),
                        "num_queues" => num_queues = Some(map.next_value()?),
                        "granularity" => granularity = Some(map.next_value()?),
                        "rads_granularity" => rads_granularity = Some(map.next_value()?),
                        "num_banks" => num_banks = Some(map.next_value()?),
                        "preload_cells_per_queue" => preload = Some(map.next_value()?),
                        "arrival_slots" => arrival_slots = Some(map.next_value()?),
                        "seed" => seed = Some(map.next_value()?),
                        "overrides" => overrides = Some(map.next_value()?),
                        other => {
                            return Err(de::Error::custom(format_args!(
                                "unknown scenario field {other:?}"
                            )))
                        }
                    }
                }
                let require =
                    |name: &str| de::Error::custom(format_args!("missing field {name:?}"));
                Ok(Scenario {
                    design: design.ok_or_else(|| require("design"))?,
                    workload: workload.ok_or_else(|| require("workload"))?,
                    line_rate: line_rate.unwrap_or_default(),
                    num_queues: num_queues.ok_or_else(|| require("num_queues"))?,
                    granularity: granularity.ok_or_else(|| require("granularity"))?,
                    rads_granularity: rads_granularity
                        .ok_or_else(|| require("rads_granularity"))?,
                    num_banks: num_banks.ok_or_else(|| require("num_banks"))?,
                    preload_cells_per_queue: preload.unwrap_or(0),
                    arrival_slots: arrival_slots.unwrap_or(0),
                    seed: seed.unwrap_or(1),
                    overrides: overrides.unwrap_or_default(),
                })
            }
        }
        deserializer.deserialize_any(V)
    }
}

/// Which monomorphized engine loop a scenario run uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum EngineMode {
    /// Chunked batch loop with idle fast-forward (the default).
    Chunked,
    /// Slot-by-slot reference loop.
    PerSlot,
}

/// Monomorphizes the engine-mode choice: one branch per run, then a fully
/// concrete engine/generator/buffer loop either way.
fn dispatch_engine<B, A, R>(
    mode: EngineMode,
    engine: SimulationEngine<'_, B>,
    arrivals: &mut A,
    requests: &mut R,
    slots: u64,
) -> SimulationReport
where
    B: PacketBuffer,
    A: ArrivalGenerator + ?Sized,
    R: RequestGenerator,
{
    match mode {
        EngineMode::Chunked => engine.run_chunked(arrivals, requests, slots),
        EngineMode::PerSlot => engine.run(arrivals, requests, slots),
    }
}

/// An arrival generator that never produces a cell (preload-only scenarios).
#[derive(Debug, Clone, Copy)]
struct NoArrivals {
    num_queues: usize,
}

impl ArrivalGenerator for NoArrivals {
    fn next(&mut self, _slot: u64) -> Option<pktbuf_model::Cell> {
        None
    }

    fn num_queues(&self) -> usize {
        self.num_queues
    }

    fn name(&self) -> &'static str {
        "preload-only"
    }
}

/// Runs the same preloaded drain against every design and checks that the
/// delivered per-queue cell counts agree. Returns the reports in
/// [`DesignKind::all`] order.
pub fn run_design_comparison(base: &Scenario) -> Vec<SimulationReport> {
    DesignKind::all()
        .iter()
        .map(|design| {
            let scenario = Scenario {
                design: *design,
                ..*base
            };
            scenario.run_with_grant_log(true)
        })
        .collect()
}

/// Convenience: how many cells each queue received in a grant log.
pub fn grants_per_queue(report: &SimulationReport, num_queues: usize) -> Vec<u64> {
    let mut counts = vec![0u64; num_queues];
    if let Some(log) = &report.grant_log {
        for q in log {
            counts[*q as usize] += 1;
        }
    }
    counts
}

/// Helper used by binaries: the set of queues a request generator may touch.
pub fn all_queues(num_queues: usize) -> Vec<LogicalQueueId> {
    (0..num_queues as u32).map(LogicalQueueId::new).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_cfds_scenario_is_loss_free() {
        let report = Scenario::small_cfds().run();
        assert!(report.stats.is_loss_free(), "{:?}", report.stats);
        assert_eq!(report.stats.grants, 8 * 32);
        assert_eq!(report.design, "CFDS");
    }

    #[test]
    fn rads_scenario_with_live_arrivals() {
        let scenario = Scenario {
            design: DesignKind::Rads,
            workload: Workload::UniformRandom,
            preload_cells_per_queue: 0,
            arrival_slots: 2_000,
            num_queues: 4,
            granularity: 2,
            rads_granularity: 4,
            num_banks: 8,
            seed: 3,
            ..Scenario::small_cfds()
        };
        let report = scenario.run();
        assert_eq!(report.design, "RADS");
        assert!(report.stats.is_loss_free(), "{:?}", report.stats);
        assert!(report.stats.grants > 100);
    }

    #[test]
    fn design_comparison_grants_the_same_cells() {
        let base = Scenario {
            preload_cells_per_queue: 16,
            ..Scenario::small_cfds()
        };
        let reports = run_design_comparison(&base);
        assert_eq!(reports.len(), 3);
        // RADS and CFDS deliver every preloaded cell; the DRAM-only baseline
        // cannot keep up with back-to-back requests and misses instead.
        let per_queue_rads = grants_per_queue(&reports[1], base.num_queues);
        let per_queue_cfds = grants_per_queue(&reports[2], base.num_queues);
        assert_eq!(per_queue_rads, per_queue_cfds);
        assert!(per_queue_rads.iter().all(|&c| c == 16));
        assert!(reports[0].stats.misses > 0, "DRAM-only must fall behind");
        assert!(reports[1].stats.is_loss_free());
        assert!(reports[2].stats.is_loss_free());
    }

    #[test]
    #[should_panic(expected = "mutually exclusive")]
    fn preload_and_arrivals_are_exclusive() {
        let scenario = Scenario {
            arrival_slots: 100,
            ..Scenario::small_cfds()
        };
        let _ = scenario.run();
    }

    #[test]
    fn enumerations_cover_all_variants() {
        assert_eq!(DesignKind::all().len(), 3);
        assert_eq!(Workload::all().len(), 5);
        assert_eq!(all_queues(3).len(), 3);
    }

    #[test]
    fn design_names_round_trip_exhaustively() {
        for design in DesignKind::all() {
            let text = design.to_string();
            assert_eq!(text.parse::<DesignKind>().unwrap(), design, "{text}");
            // Variant-name and mangled spellings parse too.
            assert_eq!(format!("{design:?}").parse::<DesignKind>().unwrap(), design);
            assert_eq!(
                text.to_uppercase()
                    .replace('-', "_")
                    .parse::<DesignKind>()
                    .unwrap(),
                design
            );
        }
        assert!("quantum".parse::<DesignKind>().is_err());
    }

    #[test]
    fn workload_names_round_trip_exhaustively() {
        for workload in Workload::all() {
            let text = workload.to_string();
            assert_eq!(text.parse::<Workload>().unwrap(), workload, "{text}");
            assert_eq!(
                format!("{workload:?}").parse::<Workload>().unwrap(),
                workload
            );
        }
        assert_eq!(
            "ARR".parse::<Workload>().unwrap(),
            Workload::AdversarialRoundRobin
        );
        assert_eq!("greedy".parse::<Workload>().unwrap(), Workload::GreedyDrain);
        assert!("chaos".parse::<Workload>().is_err());
    }

    #[test]
    fn scenario_round_trips_through_json() {
        let scenario = Scenario {
            workload: Workload::Hotspot,
            seed: 99,
            overrides: pktbuf_model::ConfigOverrides {
                lookahead: Some(64),
                ..Default::default()
            },
            ..Scenario::small_cfds()
        };
        let json = serde_json::to_string_pretty(scenario).unwrap();
        let back: Scenario = serde_json::from_str(&json).unwrap();
        assert_eq!(back, scenario);
        // Omitted optional fields take their defaults.
        let minimal: Scenario = serde_json::from_str(
            "{\"design\":\"cfds\",\"workload\":\"bursty\",\"num_queues\":8,\
             \"granularity\":2,\"rads_granularity\":8,\"num_banks\":16}",
        )
        .unwrap();
        assert_eq!(minimal.line_rate, pktbuf_model::LineRate::Oc3072);
        assert_eq!(minimal.seed, 1);
        assert!(minimal.overrides.is_none());
    }

    #[test]
    fn scenario_validate_matches_buffer_construction() {
        assert!(Scenario::small_cfds().validate().is_ok());
        let bad = Scenario {
            granularity: 3, // does not divide B = 8
            ..Scenario::small_cfds()
        };
        assert!(bad.validate().is_err());
    }

    #[test]
    fn every_workload_runs_on_cfds_without_loss() {
        for workload in Workload::all() {
            let scenario = Scenario {
                workload,
                preload_cells_per_queue: 0,
                arrival_slots: 1_500,
                ..Scenario::small_cfds()
            };
            let report = scenario.run();
            assert!(
                report.stats.is_loss_free(),
                "{workload:?}: {:?}",
                report.stats
            );
        }
    }
}
