//! Ready-made experiment scenarios shared by tests, examples and benches.

use crate::engine::{SimulationEngine, SimulationReport};
use pktbuf::{CfdsBuffer, DramOnlyBuffer, PacketBuffer, RadsBuffer};
use pktbuf_model::{CfdsConfig, DramTiming, LineRate, LogicalQueueId, RadsConfig};
use serde::{Deserialize, Serialize};
use traffic::{
    AdversarialRoundRobin, ArrivalGenerator, BurstyArrivals, GreedyQueueDrain, HotspotArrivals,
    HotspotRequests, RequestGenerator, UniformArrivals, UniformRandomRequests,
};

/// Which packet-buffer design a scenario exercises.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DesignKind {
    /// DRAM-only baseline (§1).
    DramOnly,
    /// Hybrid SRAM/DRAM baseline (§3).
    Rads,
    /// The paper's conflict-free DRAM system (§5).
    Cfds,
}

impl DesignKind {
    /// All designs, baseline first.
    pub fn all() -> [DesignKind; 3] {
        [DesignKind::DramOnly, DesignKind::Rads, DesignKind::Cfds]
    }
}

/// Which workload a scenario applies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Workload {
    /// The ECQF worst case: round-robin drain over all queues.
    AdversarialRoundRobin,
    /// Uniform random arrivals and requests.
    UniformRandom,
    /// Bursty (on/off) arrivals with round-robin requests.
    Bursty,
    /// Hot-spotted arrivals and requests.
    Hotspot,
    /// Drain one queue at a time (long same-queue runs).
    GreedyDrain,
}

impl Workload {
    /// All workloads.
    pub fn all() -> [Workload; 5] {
        [
            Workload::AdversarialRoundRobin,
            Workload::UniformRandom,
            Workload::Bursty,
            Workload::Hotspot,
            Workload::GreedyDrain,
        ]
    }
}

/// A fully specified experiment scenario.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Scenario {
    /// Design under test.
    pub design: DesignKind,
    /// Workload applied.
    pub workload: Workload,
    /// Number of logical queues `Q`.
    pub num_queues: usize,
    /// CFDS granularity `b` (ignored by RADS and DRAM-only).
    pub granularity: usize,
    /// RADS granularity `B` (DRAM random access time in slots).
    pub rads_granularity: usize,
    /// Number of DRAM banks `M` (CFDS only).
    pub num_banks: usize,
    /// Cells preloaded into the DRAM per queue before the run (rounded down to
    /// a multiple of the transfer granularity).
    pub preload_cells_per_queue: u64,
    /// Slots during which the arrival generator is active. Preload and live
    /// arrivals are mutually exclusive (sequence numbers would clash).
    pub arrival_slots: u64,
    /// Seed for the random workloads.
    pub seed: u64,
}

impl Scenario {
    /// A small CFDS scenario useful as a smoke test.
    pub fn small_cfds() -> Self {
        Scenario {
            design: DesignKind::Cfds,
            workload: Workload::AdversarialRoundRobin,
            num_queues: 8,
            granularity: 2,
            rads_granularity: 8,
            num_banks: 16,
            preload_cells_per_queue: 32,
            arrival_slots: 0,
            seed: 1,
        }
    }

    /// The RADS configuration implied by this scenario.
    pub fn rads_config(&self) -> RadsConfig {
        RadsConfig {
            line_rate: LineRate::Oc3072,
            num_queues: self.num_queues,
            granularity: self.rads_granularity,
            lookahead: None,
            dram: DramTiming::paper_design_point(),
        }
    }

    /// The CFDS configuration implied by this scenario.
    ///
    /// # Panics
    ///
    /// Panics if the parameters do not form a valid CFDS configuration.
    pub fn cfds_config(&self) -> CfdsConfig {
        CfdsConfig::builder()
            .line_rate(LineRate::Oc3072)
            .num_queues(self.num_queues)
            .granularity(self.granularity)
            .rads_granularity(self.rads_granularity)
            .num_banks(self.num_banks)
            .build()
            .expect("scenario parameters form a valid CFDS configuration")
    }

    /// Builds the buffer under test, preloaded as requested.
    pub fn build_buffer(&self) -> Box<dyn PacketBuffer + Send> {
        let granularity = match self.design {
            DesignKind::Cfds => self.granularity,
            _ => self.rads_granularity,
        };
        let preload =
            self.preload_cells_per_queue - self.preload_cells_per_queue % granularity as u64;
        match self.design {
            DesignKind::DramOnly => {
                let mut buf = DramOnlyBuffer::new(self.rads_config());
                for (q, cells) in traffic::preload_cells(self.num_queues, preload) {
                    buf.preload(q, cells);
                }
                Box::new(buf)
            }
            DesignKind::Rads => {
                let mut buf = RadsBuffer::new(self.rads_config());
                for (q, cells) in traffic::preload_cells(self.num_queues, preload) {
                    buf.preload_dram(q, cells);
                }
                Box::new(buf)
            }
            DesignKind::Cfds => {
                let mut buf = CfdsBuffer::new(self.cfds_config());
                for (q, cells) in traffic::preload_cells(self.num_queues, preload) {
                    buf.preload_dram(q, cells);
                }
                Box::new(buf)
            }
        }
    }

    fn build_arrivals(&self) -> Box<dyn ArrivalGenerator + Send> {
        let q = self.num_queues;
        match self.workload {
            Workload::AdversarialRoundRobin | Workload::GreedyDrain => {
                Box::new(UniformArrivals::new(q, 0.9, self.seed))
            }
            Workload::UniformRandom => Box::new(UniformArrivals::new(q, 0.8, self.seed)),
            Workload::Bursty => Box::new(BurstyArrivals::new(q, 32.0, 8.0, self.seed)),
            Workload::Hotspot => {
                Box::new(HotspotArrivals::new(q, 0.9, q.div_ceil(8), 0.8, self.seed))
            }
        }
    }

    fn build_requests(&self) -> Box<dyn RequestGenerator + Send> {
        let q = self.num_queues;
        match self.workload {
            Workload::AdversarialRoundRobin | Workload::Bursty => {
                Box::new(AdversarialRoundRobin::new(q))
            }
            Workload::UniformRandom => Box::new(UniformRandomRequests::new(q, 0.9, self.seed + 1)),
            Workload::Hotspot => {
                Box::new(HotspotRequests::new(q, q.div_ceil(8), 0.8, self.seed + 1))
            }
            Workload::GreedyDrain => Box::new(GreedyQueueDrain::new(q)),
        }
    }

    /// Runs the scenario to completion and returns the report.
    ///
    /// # Panics
    ///
    /// Panics if both a preload and live arrivals are requested (their
    /// sequence numbers would clash).
    pub fn run(&self) -> SimulationReport {
        self.run_with_grant_log(false)
    }

    /// Runs the scenario, optionally recording the per-grant queue log.
    ///
    /// # Panics
    ///
    /// Panics if both a preload and live arrivals are requested.
    pub fn run_with_grant_log(&self, record: bool) -> SimulationReport {
        assert!(
            self.preload_cells_per_queue == 0 || self.arrival_slots == 0,
            "preload and live arrivals are mutually exclusive in a scenario"
        );
        let mut buffer = self.build_buffer();
        let mut requests = self.build_requests();
        let report = if self.arrival_slots > 0 {
            let mut arrivals = self.build_arrivals();
            SimulationEngine::new(buffer.as_mut())
                .record_grants(record)
                .run(arrivals.as_mut(), requests.as_mut(), self.arrival_slots)
        } else {
            let mut no_arrivals = NoArrivals {
                num_queues: self.num_queues,
            };
            SimulationEngine::new(buffer.as_mut())
                .record_grants(record)
                .run(&mut no_arrivals, requests.as_mut(), 0)
        };
        report
    }
}

/// An arrival generator that never produces a cell (preload-only scenarios).
#[derive(Debug, Clone, Copy)]
struct NoArrivals {
    num_queues: usize,
}

impl ArrivalGenerator for NoArrivals {
    fn next(&mut self, _slot: u64) -> Option<pktbuf_model::Cell> {
        None
    }

    fn num_queues(&self) -> usize {
        self.num_queues
    }

    fn name(&self) -> &'static str {
        "preload-only"
    }
}

/// Runs the same preloaded drain against every design and checks that the
/// delivered per-queue cell counts agree. Returns the reports in
/// [`DesignKind::all`] order.
pub fn run_design_comparison(base: &Scenario) -> Vec<SimulationReport> {
    DesignKind::all()
        .iter()
        .map(|design| {
            let scenario = Scenario {
                design: *design,
                ..*base
            };
            scenario.run_with_grant_log(true)
        })
        .collect()
}

/// Convenience: how many cells each queue received in a grant log.
pub fn grants_per_queue(report: &SimulationReport, num_queues: usize) -> Vec<u64> {
    let mut counts = vec![0u64; num_queues];
    if let Some(log) = &report.grant_log {
        for q in log {
            counts[*q as usize] += 1;
        }
    }
    counts
}

/// Helper used by binaries: the set of queues a request generator may touch.
pub fn all_queues(num_queues: usize) -> Vec<LogicalQueueId> {
    (0..num_queues as u32).map(LogicalQueueId::new).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_cfds_scenario_is_loss_free() {
        let report = Scenario::small_cfds().run();
        assert!(report.stats.is_loss_free(), "{:?}", report.stats);
        assert_eq!(report.stats.grants, 8 * 32);
        assert_eq!(report.design, "CFDS");
    }

    #[test]
    fn rads_scenario_with_live_arrivals() {
        let scenario = Scenario {
            design: DesignKind::Rads,
            workload: Workload::UniformRandom,
            preload_cells_per_queue: 0,
            arrival_slots: 2_000,
            num_queues: 4,
            granularity: 2,
            rads_granularity: 4,
            num_banks: 8,
            seed: 3,
        };
        let report = scenario.run();
        assert_eq!(report.design, "RADS");
        assert!(report.stats.is_loss_free(), "{:?}", report.stats);
        assert!(report.stats.grants > 100);
    }

    #[test]
    fn design_comparison_grants_the_same_cells() {
        let base = Scenario {
            preload_cells_per_queue: 16,
            ..Scenario::small_cfds()
        };
        let reports = run_design_comparison(&base);
        assert_eq!(reports.len(), 3);
        // RADS and CFDS deliver every preloaded cell; the DRAM-only baseline
        // cannot keep up with back-to-back requests and misses instead.
        let per_queue_rads = grants_per_queue(&reports[1], base.num_queues);
        let per_queue_cfds = grants_per_queue(&reports[2], base.num_queues);
        assert_eq!(per_queue_rads, per_queue_cfds);
        assert!(per_queue_rads.iter().all(|&c| c == 16));
        assert!(reports[0].stats.misses > 0, "DRAM-only must fall behind");
        assert!(reports[1].stats.is_loss_free());
        assert!(reports[2].stats.is_loss_free());
    }

    #[test]
    #[should_panic(expected = "mutually exclusive")]
    fn preload_and_arrivals_are_exclusive() {
        let scenario = Scenario {
            arrival_slots: 100,
            ..Scenario::small_cfds()
        };
        let _ = scenario.run();
    }

    #[test]
    fn enumerations_cover_all_variants() {
        assert_eq!(DesignKind::all().len(), 3);
        assert_eq!(Workload::all().len(), 5);
        assert_eq!(all_queues(3).len(), 3);
    }

    #[test]
    fn every_workload_runs_on_cfds_without_loss() {
        for workload in Workload::all() {
            let scenario = Scenario {
                workload,
                preload_cells_per_queue: 0,
                arrival_slots: 1_500,
                ..Scenario::small_cfds()
            };
            let report = scenario.run();
            assert!(
                report.stats.is_loss_free(),
                "{workload:?}: {:?}",
                report.stats
            );
        }
    }
}
