//! Declarative Clos experiments: multi-chassis scenarios, sweepable specs
//! and the lab integration.
//!
//! This module is the Clos-level mirror of [`crate::fabric`]: a
//! [`ClosScenario`] fully describes one three-stage folded-Clos run (a
//! [`fabric::ClosFabric`] of `r` ingress, `m` middle and `r` egress
//! [`fabric::VoqSwitch`]es — see the `fabric::clos` module docs for the
//! topology and the credit flow control), and a [`ClosSpec`] sweeps those
//! axes into a cartesian product that [`LabRunner::run_clos`] executes
//! deterministically across worker threads.
//!
//! The scenario reuses the fabric axes wholesale — [`FabricDesign`] for the
//! per-stage buffer designs, [`FabricWorkload`] for the external traffic
//! matrix, [`ArbiterChoice`] for every stage's crossbar — and adds the
//! Clos-only ones: the geometry (`radix`, `ingress_switches`,
//! `middle_switches`), the ingress [`DispatchChoice`] and the inter-stage
//! link provisioning (`link_capacity`, `link_latency`).
//!
//! External traffic targets *global* destinations in `0..r·N`; generator
//! seeds are derived hierarchically with [`traffic::plane_seed`] (one plane
//! per ingress switch, one stream per port) so that sweeping the geometry
//! never makes two ports share an RNG stream.

use crate::fabric::{
    hot_output_count, ArbiterChoice, FabricDesign, FabricWorkload, FABRIC_BURST_CELLS,
    FABRIC_HOT_FRACTION,
};
use crate::lab::{run_sharded, LabRunner};
use crate::scenario::{normalize_name, serde_via_string, DesignKind, ParseNameError};
use crate::spec::{SpecError, Sweep};
pub use ::fabric::ClosRunReport;
use ::fabric::{
    ClosConfig, ClosFabric, ClosStage, DispatchPolicy, FaultPlan, FaultPlanError, PortBuffer,
};
use pktbuf::PacketBuffer;
use pktbuf_model::{CfdsConfig, ConfigError, ConfigOverrides, DramTiming, LineRate, RadsConfig};
use serde::{de, Deserialize, Deserializer, Serialize, Serializer};
use std::fmt;
use std::str::FromStr;
use traffic::{plane_seed, BurstyArrivals, HotspotArrivals, IncastArrivals, UniformArrivals};

/// Which ingress dispatch policy a Clos scenario runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DispatchChoice {
    /// Round-robin spraying over the middle switches (may reorder flows).
    Spray,
    /// Flow-hash pinning to one middle switch (never reorders).
    FlowHash,
    /// Credit-occupancy-aware spraying on every slot (spray's fault-time
    /// steering promoted to a steady-state policy).
    OccupancySpray,
}

impl DispatchChoice {
    /// Every dispatch policy, spray first.
    pub fn all() -> [DispatchChoice; 3] {
        [
            DispatchChoice::Spray,
            DispatchChoice::FlowHash,
            DispatchChoice::OccupancySpray,
        ]
    }

    /// The fabric-crate dispatch policy.
    pub fn to_policy(self) -> DispatchPolicy {
        match self {
            DispatchChoice::Spray => DispatchPolicy::Spray,
            DispatchChoice::FlowHash => DispatchPolicy::FlowHash,
            DispatchChoice::OccupancySpray => DispatchPolicy::OccupancySpray,
        }
    }
}

impl fmt::Display for DispatchChoice {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.to_policy().label())
    }
}

impl FromStr for DispatchChoice {
    type Err = ParseNameError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match normalize_name(s).as_str() {
            "spray" => Ok(DispatchChoice::Spray),
            "flowhash" => Ok(DispatchChoice::FlowHash),
            "occupancyspray" => Ok(DispatchChoice::OccupancySpray),
            _ => Err(ParseNameError::new(
                "dispatch policy",
                s,
                "spray, flowhash, occupancy-spray",
            )),
        }
    }
}

serde_via_string!(
    DispatchChoice,
    "a dispatch policy name (spray, flowhash, occupancy-spray)"
);

/// Demand pattern of the closed-loop sources of a transport scenario.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TransportMode {
    /// Each source sweeps destinations round-robin (skipping itself).
    Sweep,
    /// Every source hammers one destination — the synchronized-retry-storm
    /// worst case.
    Incast,
}

impl TransportMode {
    /// The traffic-crate demand pattern (`target` only matters for incast).
    pub fn to_pattern(self, target: u32) -> traffic::DemandPattern {
        match self {
            TransportMode::Sweep => traffic::DemandPattern::Sweep,
            TransportMode::Incast => traffic::DemandPattern::Incast { target },
        }
    }
}

impl fmt::Display for TransportMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            TransportMode::Sweep => "sweep",
            TransportMode::Incast => "incast",
        })
    }
}

impl FromStr for TransportMode {
    type Err = ParseNameError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match normalize_name(s).as_str() {
            "sweep" => Ok(TransportMode::Sweep),
            "incast" => Ok(TransportMode::Incast),
            _ => Err(ParseNameError::new("transport mode", s, "sweep, incast")),
        }
    }
}

serde_via_string!(TransportMode, "a transport mode name (sweep, incast)");

/// The closed-loop reliable-transport layer of a Clos scenario: when
/// present, the run replaces the open-loop workload with one
/// [`traffic::ClosedLoopSource`] per external port
/// ([`fabric::ClosFabric::run_transport`]); the open-loop `workload`,
/// `load_percent` and `seed` axes are ignored (closed-loop demand is
/// deterministic).
///
/// Transport runs need cut-through stage buffers — a RADS-family design
/// with `rads_granularity = 1` — because batched writeback parks sub-batch
/// tails as permanent residents that a reliable sender would retransmit
/// forever; [`ClosScenario::validate`] enforces this.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TransportScenario {
    /// Demand pattern of every source.
    pub mode: TransportMode,
    /// Destination port every source targets in incast mode.
    pub incast_target: u32,
    /// Initial / minimum retransmission timeout, slots.
    pub rto_initial: u64,
    /// Upper bound on any backed-off RTO, slots.
    pub rto_cap: u64,
    /// Retransmission attempts before a cell is abandoned.
    pub max_retries: u32,
    /// Initial AIMD congestion window, cells.
    pub cwnd_init: u64,
    /// Maximum AIMD congestion window, cells.
    pub cwnd_max: u64,
    /// Goodput histogram bucket width, slots.
    pub goodput_bucket: u64,
}

impl Default for TransportScenario {
    fn default() -> Self {
        let t = ::fabric::TransportConfig::default();
        TransportScenario {
            mode: TransportMode::Sweep,
            incast_target: 0,
            rto_initial: t.rto_initial,
            rto_cap: t.rto_cap,
            max_retries: t.max_retries,
            cwnd_init: t.cwnd_init,
            cwnd_max: t.cwnd_max,
            goodput_bucket: t.goodput_bucket,
        }
    }
}

impl TransportScenario {
    /// The fabric-crate transport configuration.
    pub fn to_config(self) -> ::fabric::TransportConfig {
        ::fabric::TransportConfig {
            rto_initial: self.rto_initial,
            rto_cap: self.rto_cap,
            max_retries: self.max_retries,
            cwnd_init: self.cwnd_init,
            cwnd_max: self.cwnd_max,
            goodput_bucket: self.goodput_bucket,
        }
    }

    /// One closed-loop source per external port of the scenario.
    pub fn sources(&self, external_ports: usize) -> Vec<traffic::ClosedLoopSource> {
        let params = self.to_config().source_params();
        (0..external_ports)
            .map(|g| {
                traffic::ClosedLoopSource::new(
                    g as u32,
                    external_ports,
                    self.mode.to_pattern(self.incast_target),
                    params,
                )
            })
            .collect()
    }
}

impl Serialize for TransportScenario {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        use serde::ser::SerializeStruct as _;
        let mut st = serializer.serialize_struct("TransportScenario", 8)?;
        st.serialize_field("mode", &self.mode)?;
        st.serialize_field("incast_target", &self.incast_target)?;
        st.serialize_field("rto_initial", &self.rto_initial)?;
        st.serialize_field("rto_cap", &self.rto_cap)?;
        st.serialize_field("max_retries", &self.max_retries)?;
        st.serialize_field("cwnd_init", &self.cwnd_init)?;
        st.serialize_field("cwnd_max", &self.cwnd_max)?;
        st.serialize_field("goodput_bucket", &self.goodput_bucket)?;
        st.end()
    }
}

impl<'de> Deserialize<'de> for TransportScenario {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct V;
        impl<'de> de::Visitor<'de> for V {
            type Value = TransportScenario;
            fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str("a transport scenario object")
            }
            fn visit_map<A: de::MapAccess<'de>>(
                self,
                mut map: A,
            ) -> Result<TransportScenario, A::Error> {
                let mut t = TransportScenario::default();
                while let Some(key) = map.next_key::<String>()? {
                    match key.as_str() {
                        "mode" => t.mode = map.next_value()?,
                        "incast_target" => t.incast_target = map.next_value()?,
                        "rto_initial" => t.rto_initial = map.next_value()?,
                        "rto_cap" => t.rto_cap = map.next_value()?,
                        "max_retries" => t.max_retries = map.next_value()?,
                        "cwnd_init" => t.cwnd_init = map.next_value()?,
                        "cwnd_max" => t.cwnd_max = map.next_value()?,
                        "goodput_bucket" => t.goodput_bucket = map.next_value()?,
                        other => {
                            return Err(de::Error::custom(format_args!(
                                "unknown transport scenario field {other:?}"
                            )))
                        }
                    }
                }
                Ok(t)
            }
        }
        deserializer.deserialize_any(V)
    }
}

/// The observability layer of a Clos scenario: which deterministic probes
/// ([`obs::ObsConfig`]) the run arms before slot 0. The default arms
/// nothing, and an all-off scenario leaves the run byte-identical to an
/// unarmed one (the same discipline as an empty fault plan).
///
/// The flight-recorder flow filter is not an experiment axis — a scenario
/// either records every flow inside the slot window or none; per-flow
/// filtering stays a programmatic [`obs::TraceFilter`] concern.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ObsScenario {
    /// Arm end-to-end latency histograms (and first-injection latency under
    /// transport).
    pub latency_hist: bool,
    /// Arm per-VOQ backlog and per-link credit-occupancy histograms.
    pub occupancy_hist: bool,
    /// Time-series sampling stride in slots; 0 disables the series probes.
    pub series_stride: u64,
    /// Maximum samples kept per stage series ring.
    pub series_capacity: usize,
    /// Flight-recorder ring capacity per stage; 0 disables the recorder.
    pub trace_capacity: usize,
    /// First slot (inclusive) the flight recorder is armed for.
    pub trace_from_slot: u64,
    /// Last slot (inclusive) the flight recorder is armed for.
    pub trace_to_slot: u64,
}

impl Default for ObsScenario {
    fn default() -> Self {
        let c = obs::ObsConfig::off();
        ObsScenario {
            latency_hist: c.latency_hist,
            occupancy_hist: c.occupancy_hist,
            series_stride: c.series_stride,
            series_capacity: c.series_capacity,
            trace_capacity: c.trace_capacity,
            trace_from_slot: c.trace_from_slot,
            trace_to_slot: c.trace_to_slot,
        }
    }
}

impl ObsScenario {
    /// The histogram + series preset ([`obs::ObsConfig::standard`]).
    pub fn standard() -> Self {
        let c = obs::ObsConfig::standard();
        ObsScenario {
            latency_hist: c.latency_hist,
            occupancy_hist: c.occupancy_hist,
            series_stride: c.series_stride,
            series_capacity: c.series_capacity,
            trace_capacity: c.trace_capacity,
            trace_from_slot: c.trace_from_slot,
            trace_to_slot: c.trace_to_slot,
        }
    }

    /// The obs-crate probe configuration (every flow admitted).
    pub fn to_config(self) -> obs::ObsConfig {
        obs::ObsConfig {
            latency_hist: self.latency_hist,
            occupancy_hist: self.occupancy_hist,
            series_stride: self.series_stride,
            series_capacity: self.series_capacity,
            trace_capacity: self.trace_capacity,
            trace_flows: Vec::new(),
            trace_from_slot: self.trace_from_slot,
            trace_to_slot: self.trace_to_slot,
        }
    }

    /// True when no probe is armed (the scenario is then a no-op).
    pub fn is_off(self) -> bool {
        self.to_config().is_off()
    }
}

impl Serialize for ObsScenario {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        use serde::ser::SerializeStruct as _;
        let mut st = serializer.serialize_struct("ObsScenario", 7)?;
        st.serialize_field("latency_hist", &self.latency_hist)?;
        st.serialize_field("occupancy_hist", &self.occupancy_hist)?;
        st.serialize_field("series_stride", &self.series_stride)?;
        st.serialize_field("series_capacity", &self.series_capacity)?;
        st.serialize_field("trace_capacity", &self.trace_capacity)?;
        st.serialize_field("trace_from_slot", &self.trace_from_slot)?;
        st.serialize_field("trace_to_slot", &self.trace_to_slot)?;
        st.end()
    }
}

impl<'de> Deserialize<'de> for ObsScenario {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct V;
        impl<'de> de::Visitor<'de> for V {
            type Value = ObsScenario;
            fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str("an observability scenario object")
            }
            fn visit_map<A: de::MapAccess<'de>>(self, mut map: A) -> Result<ObsScenario, A::Error> {
                let mut o = ObsScenario::default();
                while let Some(key) = map.next_key::<String>()? {
                    match key.as_str() {
                        "latency_hist" => o.latency_hist = map.next_value()?,
                        "occupancy_hist" => o.occupancy_hist = map.next_value()?,
                        "series_stride" => o.series_stride = map.next_value()?,
                        "series_capacity" => o.series_capacity = map.next_value()?,
                        "trace_capacity" => o.trace_capacity = map.next_value()?,
                        "trace_from_slot" => o.trace_from_slot = map.next_value()?,
                        "trace_to_slot" => o.trace_to_slot = map.next_value()?,
                        other => {
                            return Err(de::Error::custom(format_args!(
                                "unknown obs scenario field {other:?}"
                            )))
                        }
                    }
                }
                Ok(o)
            }
        }
        deserializer.deserialize_any(V)
    }
}

/// Why a Clos scenario is invalid.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClosScenarioError {
    /// Ingress/egress switches need radix ≥ 2.
    BadRadix(usize),
    /// A Clos needs at least 2 ingress switches.
    TooFewIngress(usize),
    /// The middle stage must satisfy `1 ≤ m ≤ N`.
    BadMiddle(usize, usize),
    /// Offered load must stay in (0, 100] percent.
    BadLoad(u64),
    /// Inter-stage links need at least one credit.
    BadLinkCapacity(usize),
    /// A per-stage buffer configuration is invalid.
    Config(ConfigError),
    /// The fault plan does not fit the geometry or is malformed.
    Faults(FaultPlanError),
    /// Closed-loop transport needs cut-through stage buffers (a RADS-family
    /// design with `rads_granularity = 1`).
    TransportNeedsCutThrough,
    /// The incast target must be an external port of the geometry.
    BadIncastTarget(u32, usize),
}

impl fmt::Display for ClosScenarioError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClosScenarioError::BadRadix(n) => {
                write!(f, "ingress/egress switches need radix >= 2, got {n}")
            }
            ClosScenarioError::TooFewIngress(r) => {
                write!(f, "a Clos needs at least 2 ingress switches, got {r}")
            }
            ClosScenarioError::BadMiddle(m, n) => {
                write!(
                    f,
                    "middle switches must satisfy 1 <= m <= N, got m={m}, N={n}"
                )
            }
            ClosScenarioError::BadLoad(pct) => {
                write!(f, "offered load must be in (0, 100] percent, got {pct}")
            }
            ClosScenarioError::BadLinkCapacity(c) => {
                write!(f, "inter-stage links need at least one credit, got {c}")
            }
            ClosScenarioError::Config(e) => write!(f, "stage buffer configuration: {e}"),
            ClosScenarioError::Faults(e) => write!(f, "fault plan: {e}"),
            ClosScenarioError::TransportNeedsCutThrough => {
                write!(
                    f,
                    "closed-loop transport needs cut-through stage buffers: a RADS-family \
                     design with rads_granularity = 1 (batched writeback parks sub-batch \
                     tails as permanent residents that a reliable sender would retransmit \
                     forever)"
                )
            }
            ClosScenarioError::BadIncastTarget(t, ext) => {
                write!(
                    f,
                    "incast target {t} is not an external port of the geometry (0..{ext})"
                )
            }
        }
    }
}

impl std::error::Error for ClosScenarioError {}

/// A fully specified Clos run: one expanded point of a [`ClosSpec`], or a
/// hand-built one-off.
#[derive(Debug, Clone, PartialEq)]
pub struct ClosScenario {
    /// Radix `N` of each ingress/egress switch; external ports = `r·N`.
    pub radix: usize,
    /// Number `r` of ingress (= egress) switches.
    pub ingress_switches: usize,
    /// Number `m` of middle switches (`1 ≤ m ≤ N`).
    pub middle_switches: usize,
    /// Per-stage buffer design ([`FabricDesign::Mixed`] alternates CFDS and
    /// RADS over the build order).
    pub design: FabricDesign,
    /// External traffic matrix, over `r·N` global destinations.
    pub workload: FabricWorkload,
    /// Ingress load-balancing policy.
    pub dispatch: DispatchChoice,
    /// Crossbar arbiter of every switch of every stage.
    pub arbiter: ArbiterChoice,
    /// iSLIP iterations per slot (`0` = auto).
    pub islip_iterations: u64,
    /// Line rate of every port.
    pub line_rate: LineRate,
    /// CFDS granularity `b` of CFDS buffers.
    pub granularity: usize,
    /// RADS granularity `B` (all designs).
    pub rads_granularity: usize,
    /// DRAM banks `M` of CFDS buffers.
    pub num_banks: usize,
    /// Offered load per external ingress port, percent of the line rate.
    pub load_percent: u64,
    /// Slots per transmitted cell at each external output (1 = line rate).
    pub egress_period: u64,
    /// Cells (= credits) per inter-stage link FIFO.
    pub link_capacity: usize,
    /// One-way inter-stage link latency, slots.
    pub link_latency: u64,
    /// Slots of the live-arrival phase (the drain runs until delivery).
    pub arrival_slots: u64,
    /// Base RNG seed; the port `i` of ingress switch `s` seeds its
    /// generator with [`traffic::plane_seed`]`(seed, s, i)`.
    pub seed: u64,
    /// Worker threads of the per-run execution schedule (1 = serial; the
    /// report is byte-identical for any value).
    pub workers: usize,
    /// Configuration knobs applied to every stage buffer.
    pub overrides: ConfigOverrides,
    /// Deterministic fault plan armed before slot 0 (empty = fault-free; an
    /// empty plan leaves the run byte-identical to an unarmed one).
    pub faults: FaultPlan,
    /// Closed-loop reliable transport (`None` = open-loop; the run is then
    /// byte-identical to a pre-transport one). When present, the open-loop
    /// `workload`, `load_percent` and `seed` axes are ignored.
    pub transport: Option<TransportScenario>,
    /// Deterministic probes armed before slot 0 (`None` or all-off leaves
    /// the run byte-identical to an unarmed one).
    pub obs: Option<ObsScenario>,
}

impl ClosScenario {
    /// A small RADS Clos useful as a smoke test: `N = r = m = 4`
    /// (16 external ports), uniform traffic at 80% load, 3 000 active slots.
    pub fn small() -> Self {
        ClosScenario {
            radix: 4,
            ingress_switches: 4,
            middle_switches: 4,
            design: FabricDesign::Fixed(DesignKind::Rads),
            workload: FabricWorkload::Uniform,
            dispatch: DispatchChoice::Spray,
            arbiter: ArbiterChoice::Islip,
            islip_iterations: 0,
            line_rate: LineRate::Oc3072,
            granularity: 2,
            rads_granularity: 8,
            num_banks: 16,
            load_percent: 80,
            egress_period: 1,
            link_capacity: 8,
            link_latency: 1,
            arrival_slots: 3_000,
            seed: 1,
            workers: 1,
            overrides: ConfigOverrides::none(),
            faults: FaultPlan::none(),
            transport: None,
            obs: None,
        }
    }

    /// The [`ClosScenario::small`] geometry rebuilt for closed-loop
    /// transport: cut-through RADS buffers (`rads_granularity = 1`) and a
    /// default sweep-mode [`TransportScenario`].
    pub fn small_transport() -> Self {
        ClosScenario {
            rads_granularity: 1,
            transport: Some(TransportScenario::default()),
            ..ClosScenario::small()
        }
    }

    /// External (line-side) port count `r·N`.
    pub fn external_ports(&self) -> usize {
        self.ingress_switches * self.radix
    }

    /// Offered load per external port as a fraction.
    pub fn load(&self) -> f64 {
        (self.load_percent as f64 / 100.0).clamp(0.0, 1.0)
    }

    /// VOQ count of a buffer serving `stage`: `N` at the edges, `r` in the
    /// middle.
    pub fn stage_queue_count(&self, stage: ClosStage) -> usize {
        match stage {
            ClosStage::Middle => self.ingress_switches,
            ClosStage::Ingress | ClosStage::Egress => self.radix,
        }
    }

    /// The RADS configuration of a `num_queues`-VOQ stage buffer, with the
    /// same fabric lookahead margin as
    /// [`crate::fabric::FabricScenario::rads_config`]: `B` slots on top of
    /// the ECQF minimum, because a crossbar arbiter can land a due request
    /// inside the DRAM in-flight window.
    pub fn rads_config(&self, num_queues: usize) -> RadsConfig {
        let ecqf_minimum = num_queues * (self.rads_granularity - 1) + 1;
        self.overrides.apply_rads(RadsConfig {
            line_rate: self.line_rate,
            num_queues,
            granularity: self.rads_granularity,
            lookahead: Some(ecqf_minimum + self.rads_granularity),
            dram: DramTiming::paper_design_point(),
        })
    }

    /// The CFDS configuration of a `num_queues`-VOQ stage buffer, or the
    /// reason it is invalid (same margins and oversubscription as
    /// [`crate::fabric::FabricScenario::try_cfds_config`]).
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] when the parameters violate the CFDS
    /// constraints (sweeps may produce such combinations; the spec layer
    /// skips them).
    pub fn try_cfds_config(&self, num_queues: usize) -> Result<CfdsConfig, ConfigError> {
        let ecqf_minimum = num_queues * (self.granularity - 1) + 1;
        self.overrides
            .apply_cfds(
                CfdsConfig::builder()
                    .line_rate(self.line_rate)
                    .num_queues(num_queues)
                    .physical_queue_factor(2)
                    .granularity(self.granularity)
                    .rads_granularity(self.rads_granularity)
                    .num_banks(self.num_banks)
                    .lookahead(ecqf_minimum + self.rads_granularity),
            )
            .build()
    }

    /// The fabric-crate Clos configuration (geometry, dispatch, links,
    /// arbiter; always credit flow control — the lossy drop-on-full mode is
    /// requested through [`fabric::FaultKind::DropOnFull`] in the
    /// scenario's fault plan, not an experiment axis).
    pub fn clos_config(&self) -> ClosConfig {
        ClosConfig {
            radix: self.radix,
            ingress_switches: self.ingress_switches,
            middle_switches: self.middle_switches,
            dispatch: self.dispatch.to_policy(),
            link_capacity: self.link_capacity,
            link_latency: self.link_latency,
            egress_period: self.egress_period.max(1),
            arbiter: self.arbiter.to_kind(self.islip_iterations as usize),
        }
    }

    /// Checks that the scenario can be built and run.
    ///
    /// # Errors
    ///
    /// Returns [`ClosScenarioError`] when the geometry, load, link
    /// provisioning or any stage buffer configuration is invalid.
    pub fn validate(&self) -> Result<(), ClosScenarioError> {
        if self.radix < 2 {
            return Err(ClosScenarioError::BadRadix(self.radix));
        }
        if self.ingress_switches < 2 {
            return Err(ClosScenarioError::TooFewIngress(self.ingress_switches));
        }
        if !(1..=self.radix).contains(&self.middle_switches) {
            return Err(ClosScenarioError::BadMiddle(
                self.middle_switches,
                self.radix,
            ));
        }
        if self.load_percent == 0 || self.load_percent > 100 {
            return Err(ClosScenarioError::BadLoad(self.load_percent));
        }
        if self.link_capacity < 1 {
            return Err(ClosScenarioError::BadLinkCapacity(self.link_capacity));
        }
        self.faults
            .validate(self.radix, self.ingress_switches, self.middle_switches)
            .map_err(ClosScenarioError::Faults)?;
        if let Some(t) = &self.transport {
            let cutthrough = matches!(
                self.design,
                FabricDesign::Fixed(DesignKind::Rads) | FabricDesign::Fixed(DesignKind::DramOnly)
            ) && self.rads_granularity == 1;
            if !cutthrough {
                return Err(ClosScenarioError::TransportNeedsCutThrough);
            }
            if t.mode == TransportMode::Incast && t.incast_target as usize >= self.external_ports()
            {
                return Err(ClosScenarioError::BadIncastTarget(
                    t.incast_target,
                    self.external_ports(),
                ));
            }
        }
        let needs = |kind: DesignKind, queues: usize| -> Result<(), ClosScenarioError> {
            match kind {
                DesignKind::Cfds => self
                    .try_cfds_config(queues)
                    .map(drop)
                    .map_err(ClosScenarioError::Config),
                DesignKind::DramOnly | DesignKind::Rads => self
                    .rads_config(queues)
                    .validate()
                    .map_err(ClosScenarioError::Config),
            }
        };
        for queues in [self.radix, self.ingress_switches] {
            match self.design {
                FabricDesign::Fixed(kind) => needs(kind, queues)?,
                FabricDesign::Mixed => {
                    needs(DesignKind::Cfds, queues)?;
                    needs(DesignKind::Rads, queues)?;
                }
            }
        }
        Ok(())
    }

    /// Runs the scenario to completion with the scenario's own worker count.
    ///
    /// # Panics
    ///
    /// Panics when [`ClosScenario::validate`] would return an error.
    pub fn run(&self) -> ClosRunReport {
        self.run_with_workers(self.workers)
    }

    /// Runs the scenario with an explicit worker count (the report is
    /// byte-identical for any value — pinned by the fabric crate's
    /// differential tests and re-checked here).
    ///
    /// # Panics
    ///
    /// Panics when [`ClosScenario::validate`] would return an error.
    pub fn run_with_workers(&self, workers: usize) -> ClosRunReport {
        self.dispatch_design(RunMode::Workers(workers.max(1)))
    }

    /// Runs the skip-free single-threaded reference twin
    /// ([`ClosFabric::run_reference`]).
    ///
    /// # Panics
    ///
    /// Panics when [`ClosScenario::validate`] would return an error.
    pub fn run_reference(&self) -> ClosRunReport {
        self.dispatch_design(RunMode::Reference)
    }

    fn build_port(&self, kind: DesignKind, queues: usize) -> PortBuffer {
        match kind {
            DesignKind::DramOnly => pktbuf::DramOnlyBuffer::new(self.rads_config(queues)).into(),
            DesignKind::Rads => pktbuf::RadsBuffer::new(self.rads_config(queues)).into(),
            DesignKind::Cfds => pktbuf::CfdsBuffer::new(
                self.try_cfds_config(queues)
                    .expect("validated CFDS configuration"),
            )
            .into(),
        }
    }

    fn dispatch_design(&self, mode: RunMode) -> ClosRunReport {
        match self.design {
            FabricDesign::Fixed(DesignKind::DramOnly) => self.run_clos(mode, |scenario, queues| {
                pktbuf::DramOnlyBuffer::new(scenario.rads_config(queues))
            }),
            FabricDesign::Fixed(DesignKind::Rads) => self.run_clos(mode, |scenario, queues| {
                pktbuf::RadsBuffer::new(scenario.rads_config(queues))
            }),
            FabricDesign::Fixed(DesignKind::Cfds) => self.run_clos(mode, |scenario, queues| {
                pktbuf::CfdsBuffer::new(
                    scenario
                        .try_cfds_config(queues)
                        .expect("validated CFDS configuration"),
                )
            }),
            FabricDesign::Mixed => {
                // Alternate CFDS and RADS over the deterministic build order
                // (per switch, per port), the Clos analogue of the mixed
                // single-switch fabric.
                let mut next = 0usize;
                self.run_clos(mode, move |scenario, queues| {
                    let kind = if next.is_multiple_of(2) {
                        DesignKind::Cfds
                    } else {
                        DesignKind::Rads
                    };
                    next += 1;
                    scenario.build_port(kind, queues)
                })
            }
        }
    }

    fn run_clos<B, F>(&self, mode: RunMode, mut build: F) -> ClosRunReport
    where
        B: PacketBuffer + Send,
        F: FnMut(&ClosScenario, usize) -> B,
    {
        let mut fabric = ClosFabric::new(self.clos_config(), |stage| {
            build(self, self.stage_queue_count(stage))
        });
        if !self.faults.is_empty() {
            fabric.arm_faults(&self.faults);
        }
        if let Some(o) = &self.obs {
            fabric.arm_obs(&o.to_config());
        }
        let ext = self.external_ports();
        if let Some(t) = &self.transport {
            // Closed-loop demand is deterministic, so the skip-free
            // reference twin is simply the serial schedule.
            fabric.enable_transport(t.to_config());
            let workers = match mode {
                RunMode::Workers(workers) => workers,
                RunMode::Reference => 1,
            };
            return fabric.run_transport(&mut t.sources(ext), self.arrival_slots, workers);
        }
        let n = self.radix as u64;
        let load = self.load();
        let seed_for = |g: usize| plane_seed(self.seed, g as u64 / n, g as u64 % n);
        macro_rules! drive {
            ($arrivals:expr) => {{
                let mut arrivals = $arrivals;
                match mode {
                    RunMode::Workers(workers) => {
                        fabric.run(&mut arrivals, self.arrival_slots, workers)
                    }
                    RunMode::Reference => fabric.run_reference(&mut arrivals, self.arrival_slots),
                }
            }};
        }
        match self.workload {
            FabricWorkload::Uniform => drive!((0..ext)
                .map(|g| UniformArrivals::new(ext, load, seed_for(g)))
                .collect::<Vec<_>>()),
            FabricWorkload::Hotspot => drive!((0..ext)
                .map(|g| HotspotArrivals::new(
                    ext,
                    load,
                    hot_output_count(ext),
                    FABRIC_HOT_FRACTION,
                    seed_for(g),
                ))
                .collect::<Vec<_>>()),
            FabricWorkload::Incast => {
                let fraction = IncastArrivals::admissible_fraction(ext, load);
                drive!((0..ext)
                    .map(|g| IncastArrivals::new(ext, load, 0, fraction, seed_for(g)))
                    .collect::<Vec<_>>())
            }
            FabricWorkload::Bursty => {
                let gap = FABRIC_BURST_CELLS * (1.0 - load) / load.max(f64::MIN_POSITIVE);
                drive!((0..ext)
                    .map(|g| BurstyArrivals::new(ext, FABRIC_BURST_CELLS, gap, seed_for(g)))
                    .collect::<Vec<_>>())
            }
        }
    }
}

/// Which execution engine a scenario run uses.
#[derive(Debug, Clone, Copy)]
enum RunMode {
    /// The production engine at a given worker count.
    Workers(usize),
    /// The skip-free single-threaded reference twin.
    Reference,
}

// Hand-written serde: a scenario is a flat JSON object; only `radix` is
// required, everything else takes the `small()` defaults.
impl Serialize for ClosScenario {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        use serde::ser::SerializeStruct as _;
        let mut st = serializer.serialize_struct("ClosScenario", 21)?;
        st.serialize_field("radix", &self.radix)?;
        st.serialize_field("ingress_switches", &self.ingress_switches)?;
        st.serialize_field("middle_switches", &self.middle_switches)?;
        st.serialize_field("design", &self.design)?;
        st.serialize_field("workload", &self.workload)?;
        st.serialize_field("dispatch", &self.dispatch)?;
        st.serialize_field("arbiter", &self.arbiter)?;
        st.serialize_field("islip_iterations", &self.islip_iterations)?;
        st.serialize_field("line_rate", &self.line_rate)?;
        st.serialize_field("granularity", &self.granularity)?;
        st.serialize_field("rads_granularity", &self.rads_granularity)?;
        st.serialize_field("num_banks", &self.num_banks)?;
        st.serialize_field("load_percent", &self.load_percent)?;
        st.serialize_field("egress_period", &self.egress_period)?;
        st.serialize_field("link_capacity", &self.link_capacity)?;
        st.serialize_field("link_latency", &self.link_latency)?;
        st.serialize_field("arrival_slots", &self.arrival_slots)?;
        st.serialize_field("seed", &self.seed)?;
        st.serialize_field("workers", &self.workers)?;
        st.serialize_field("overrides", &self.overrides)?;
        if !self.faults.is_empty() {
            st.serialize_field("faults", &self.faults)?;
        }
        if let Some(transport) = &self.transport {
            st.serialize_field("transport", transport)?;
        }
        if let Some(obs) = &self.obs {
            st.serialize_field("obs", obs)?;
        }
        st.end()
    }
}

impl<'de> Deserialize<'de> for ClosScenario {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct V;
        impl<'de> de::Visitor<'de> for V {
            type Value = ClosScenario;
            fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str("a Clos scenario object")
            }
            fn visit_map<A: de::MapAccess<'de>>(
                self,
                mut map: A,
            ) -> Result<ClosScenario, A::Error> {
                let mut scenario = ClosScenario::small();
                let mut saw_radix = false;
                while let Some(key) = map.next_key::<String>()? {
                    match key.as_str() {
                        "radix" => {
                            scenario.radix = map.next_value()?;
                            saw_radix = true;
                        }
                        "ingress_switches" => scenario.ingress_switches = map.next_value()?,
                        "middle_switches" => scenario.middle_switches = map.next_value()?,
                        "design" => scenario.design = map.next_value()?,
                        "workload" => scenario.workload = map.next_value()?,
                        "dispatch" => scenario.dispatch = map.next_value()?,
                        "arbiter" => scenario.arbiter = map.next_value()?,
                        "islip_iterations" => scenario.islip_iterations = map.next_value()?,
                        "line_rate" => scenario.line_rate = map.next_value()?,
                        "granularity" => scenario.granularity = map.next_value()?,
                        "rads_granularity" => scenario.rads_granularity = map.next_value()?,
                        "num_banks" => scenario.num_banks = map.next_value()?,
                        "load_percent" => scenario.load_percent = map.next_value()?,
                        "egress_period" => scenario.egress_period = map.next_value()?,
                        "link_capacity" => scenario.link_capacity = map.next_value()?,
                        "link_latency" => scenario.link_latency = map.next_value()?,
                        "arrival_slots" => scenario.arrival_slots = map.next_value()?,
                        "seed" => scenario.seed = map.next_value()?,
                        "workers" => scenario.workers = map.next_value()?,
                        "overrides" => scenario.overrides = map.next_value()?,
                        "faults" => scenario.faults = map.next_value()?,
                        "transport" => scenario.transport = Some(map.next_value()?),
                        "obs" => scenario.obs = Some(map.next_value()?),
                        other => {
                            return Err(de::Error::custom(format_args!(
                                "unknown Clos scenario field {other:?}"
                            )))
                        }
                    }
                }
                if !saw_radix {
                    return Err(de::Error::custom("missing field \"radix\""));
                }
                Ok(scenario)
            }
        }
        deserializer.deserialize_any(V)
    }
}

/// A declarative, serializable Clos experiment: designs × workloads ×
/// dispatches × arbiters × swept geometry/provisioning × seeds, expanded
/// into [`ClosScenario`]s.
#[derive(Debug, Clone, PartialEq)]
pub struct ClosSpec {
    /// Experiment name (used in reports and file names).
    pub name: String,
    /// Per-stage design choices to cross (outermost axis).
    pub designs: Vec<FabricDesign>,
    /// Traffic matrices to cross.
    pub workloads: Vec<FabricWorkload>,
    /// Ingress dispatch policies to cross.
    pub dispatches: Vec<DispatchChoice>,
    /// Arbiters to cross.
    pub arbiters: Vec<ArbiterChoice>,
    /// Line rate shared by every run.
    pub line_rate: LineRate,
    /// Sweep of the switch radix `N`.
    pub radix: Sweep,
    /// Sweep of the ingress (= egress) switch count `r`.
    pub ingress_switches: Sweep,
    /// Sweep of the middle switch count `m` (combinations with `m > N` are
    /// skipped).
    pub middle_switches: Sweep,
    /// Sweep of the per-port offered load, percent.
    pub load_percent: Sweep,
    /// Sweep of the inter-stage link capacity (credits per link).
    pub link_capacity: Sweep,
    /// CFDS granularity `b` shared by every run.
    pub granularity: u64,
    /// RADS granularity `B` shared by every run.
    pub rads_granularity: u64,
    /// DRAM banks `M` shared by every run.
    pub num_banks: u64,
    /// iSLIP iterations per slot (`0` = auto).
    pub islip_iterations: u64,
    /// Slots per transmitted cell at each external output.
    pub egress_period: u64,
    /// One-way inter-stage link latency, slots.
    pub link_latency: u64,
    /// Live-arrival slots per run.
    pub arrival_slots: u64,
    /// Per-run worker threads (the lab already shards across runs, so 1 is
    /// the right default; the report is worker-count-invariant regardless).
    pub workers: u64,
    /// Seeds to cross (innermost axis).
    pub seeds: Vec<u64>,
    /// Configuration knobs applied to every stage buffer.
    pub overrides: ConfigOverrides,
    /// Fault plan armed in every expanded run (empty = fault-free;
    /// combinations whose geometry the plan does not fit are skipped like
    /// any other invalid point).
    pub faults: FaultPlan,
    /// Closed-loop transport layered over every expanded run (`None` =
    /// open-loop; combinations without cut-through buffers are skipped like
    /// any other invalid point).
    pub transport: Option<TransportScenario>,
    /// Deterministic probes armed in every expanded run (`None` or all-off
    /// leaves each run byte-identical to an unarmed one).
    pub obs: Option<ObsScenario>,
}

impl ClosSpec {
    /// Starts a builder with smoke-test defaults (the
    /// [`ClosScenario::small`] geometry, uniform spray traffic at 80% load
    /// under iSLIP, 3 000 live slots, seed 1).
    pub fn builder() -> ClosSpecBuilder {
        ClosSpecBuilder::default()
    }

    /// Expands the spec into the cartesian product of its axes, in a fixed
    /// documented order: designs ▸ workloads ▸ dispatches ▸ arbiters ▸
    /// radix ▸ ingress switches ▸ middle switches ▸ load ▸ link capacity ▸
    /// seeds (left outermost). Invalid combinations (e.g. `m > N` from
    /// crossed geometry sweeps) are skipped and counted.
    ///
    /// # Errors
    ///
    /// Returns [`SpecError`] when an axis is empty or malformed, or when
    /// every combination is invalid.
    pub fn expand(&self) -> Result<ClosExpansion, SpecError> {
        if self.designs.is_empty() {
            return Err(SpecError::EmptyAxis("designs"));
        }
        if self.workloads.is_empty() {
            return Err(SpecError::EmptyAxis("workloads"));
        }
        if self.dispatches.is_empty() {
            return Err(SpecError::EmptyAxis("dispatches"));
        }
        if self.arbiters.is_empty() {
            return Err(SpecError::EmptyAxis("arbiters"));
        }
        if self.seeds.is_empty() {
            return Err(SpecError::EmptyAxis("seeds"));
        }
        let radixes = self.radix.values()?;
        let ingresses = self.ingress_switches.values()?;
        let middles = self.middle_switches.values()?;
        let loads = self.load_percent.values()?;
        let capacities = self.link_capacity.values()?;
        let mut runs = Vec::new();
        let mut skipped_invalid = 0usize;
        for design in &self.designs {
            for workload in &self.workloads {
                for dispatch in &self.dispatches {
                    for arbiter in &self.arbiters {
                        for n in &radixes {
                            for r in &ingresses {
                                for m in &middles {
                                    for load in &loads {
                                        for capacity in &capacities {
                                            for seed in &self.seeds {
                                                let scenario = ClosScenario {
                                                    radix: *n as usize,
                                                    ingress_switches: *r as usize,
                                                    middle_switches: *m as usize,
                                                    design: *design,
                                                    workload: *workload,
                                                    dispatch: *dispatch,
                                                    arbiter: *arbiter,
                                                    islip_iterations: self.islip_iterations,
                                                    line_rate: self.line_rate,
                                                    granularity: self.granularity as usize,
                                                    rads_granularity: self.rads_granularity
                                                        as usize,
                                                    num_banks: self.num_banks as usize,
                                                    load_percent: *load,
                                                    egress_period: self.egress_period,
                                                    link_capacity: *capacity as usize,
                                                    link_latency: self.link_latency,
                                                    arrival_slots: self.arrival_slots,
                                                    seed: *seed,
                                                    workers: self.workers.max(1) as usize,
                                                    overrides: self.overrides,
                                                    faults: self.faults.clone(),
                                                    transport: self.transport,
                                                    obs: self.obs,
                                                };
                                                if scenario.validate().is_ok() {
                                                    runs.push(scenario);
                                                } else {
                                                    skipped_invalid += 1;
                                                }
                                            }
                                        }
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
        if runs.is_empty() {
            return Err(SpecError::NoValidRuns);
        }
        Ok(ClosExpansion {
            runs,
            skipped_invalid,
        })
    }

    /// Renders the spec as pretty JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("a Clos spec always serializes")
    }

    /// Parses a spec from JSON text.
    ///
    /// # Errors
    ///
    /// Returns [`SpecError::Json`] on malformed JSON or unknown/ill-typed
    /// fields.
    pub fn from_json(text: &str) -> Result<Self, SpecError> {
        serde_json::from_str(text).map_err(|e| SpecError::Json(e.to_string()))
    }
}

/// The result of expanding a Clos spec.
#[derive(Debug, Clone, PartialEq)]
pub struct ClosExpansion {
    /// The valid runs, in expansion order.
    pub runs: Vec<ClosScenario>,
    /// Combinations skipped because they were invalid.
    pub skipped_invalid: usize,
}

/// Builder for [`ClosSpec`].
#[derive(Debug, Clone)]
pub struct ClosSpecBuilder {
    spec: ClosSpec,
}

impl Default for ClosSpecBuilder {
    fn default() -> Self {
        ClosSpecBuilder {
            spec: ClosSpec {
                name: "clos".to_owned(),
                designs: vec![FabricDesign::Fixed(DesignKind::Rads)],
                workloads: vec![FabricWorkload::Uniform],
                dispatches: vec![DispatchChoice::Spray],
                arbiters: vec![ArbiterChoice::Islip],
                line_rate: LineRate::Oc3072,
                radix: Sweep::Fixed(4),
                ingress_switches: Sweep::Fixed(4),
                middle_switches: Sweep::Fixed(4),
                load_percent: Sweep::Fixed(80),
                link_capacity: Sweep::Fixed(8),
                granularity: 2,
                rads_granularity: 8,
                num_banks: 16,
                islip_iterations: 0,
                egress_period: 1,
                link_latency: 1,
                arrival_slots: 3_000,
                workers: 1,
                seeds: vec![1],
                overrides: ConfigOverrides::none(),
                faults: FaultPlan::none(),
                transport: None,
                obs: None,
            },
        }
    }
}

impl ClosSpecBuilder {
    /// Sets the experiment name.
    pub fn name(mut self, name: impl Into<String>) -> Self {
        self.spec.name = name.into();
        self
    }

    /// Sets the designs axis.
    pub fn designs(mut self, designs: impl IntoIterator<Item = FabricDesign>) -> Self {
        self.spec.designs = designs.into_iter().collect();
        self
    }

    /// Sets the workloads axis.
    pub fn workloads(mut self, workloads: impl IntoIterator<Item = FabricWorkload>) -> Self {
        self.spec.workloads = workloads.into_iter().collect();
        self
    }

    /// Sets the dispatch-policy axis.
    pub fn dispatches(mut self, dispatches: impl IntoIterator<Item = DispatchChoice>) -> Self {
        self.spec.dispatches = dispatches.into_iter().collect();
        self
    }

    /// Sets the arbiters axis.
    pub fn arbiters(mut self, arbiters: impl IntoIterator<Item = ArbiterChoice>) -> Self {
        self.spec.arbiters = arbiters.into_iter().collect();
        self
    }

    /// Sets the line rate.
    pub fn line_rate(mut self, rate: LineRate) -> Self {
        self.spec.line_rate = rate;
        self
    }

    /// Sets the switch-radix axis.
    pub fn radix(mut self, sweep: Sweep) -> Self {
        self.spec.radix = sweep;
        self
    }

    /// Sets the ingress-switch-count axis.
    pub fn ingress_switches(mut self, sweep: Sweep) -> Self {
        self.spec.ingress_switches = sweep;
        self
    }

    /// Sets the middle-switch-count axis.
    pub fn middle_switches(mut self, sweep: Sweep) -> Self {
        self.spec.middle_switches = sweep;
        self
    }

    /// Sets the offered-load axis (percent).
    pub fn load_percent(mut self, sweep: Sweep) -> Self {
        self.spec.load_percent = sweep;
        self
    }

    /// Sets the inter-stage link capacity axis.
    pub fn link_capacity(mut self, sweep: Sweep) -> Self {
        self.spec.link_capacity = sweep;
        self
    }

    /// Sets the CFDS granularity `b`.
    pub fn granularity(mut self, granularity: u64) -> Self {
        self.spec.granularity = granularity;
        self
    }

    /// Sets the RADS granularity `B`.
    pub fn rads_granularity(mut self, granularity: u64) -> Self {
        self.spec.rads_granularity = granularity;
        self
    }

    /// Sets the DRAM bank count `M`.
    pub fn num_banks(mut self, banks: u64) -> Self {
        self.spec.num_banks = banks;
        self
    }

    /// Sets the iSLIP iteration count (`0` = auto).
    pub fn islip_iterations(mut self, iterations: u64) -> Self {
        self.spec.islip_iterations = iterations;
        self
    }

    /// Sets the egress period (slots per transmitted cell).
    pub fn egress_period(mut self, period: u64) -> Self {
        self.spec.egress_period = period;
        self
    }

    /// Sets the one-way inter-stage link latency (slots).
    pub fn link_latency(mut self, latency: u64) -> Self {
        self.spec.link_latency = latency;
        self
    }

    /// Sets the number of live-arrival slots.
    pub fn arrival_slots(mut self, slots: u64) -> Self {
        self.spec.arrival_slots = slots;
        self
    }

    /// Sets the per-run worker-thread count.
    pub fn workers(mut self, workers: u64) -> Self {
        self.spec.workers = workers;
        self
    }

    /// Sets the seeds axis.
    pub fn seeds(mut self, seeds: impl IntoIterator<Item = u64>) -> Self {
        self.spec.seeds = seeds.into_iter().collect();
        self
    }

    /// Sets the configuration overrides applied to every stage buffer.
    pub fn overrides(mut self, overrides: ConfigOverrides) -> Self {
        self.spec.overrides = overrides;
        self
    }

    /// Sets the fault plan armed in every expanded run.
    pub fn faults(mut self, faults: FaultPlan) -> Self {
        self.spec.faults = faults;
        self
    }

    /// Layers closed-loop transport over every expanded run.
    pub fn transport(mut self, transport: TransportScenario) -> Self {
        self.spec.transport = Some(transport);
        self
    }

    /// Arms deterministic probes in every expanded run.
    pub fn obs(mut self, obs: ObsScenario) -> Self {
        self.spec.obs = Some(obs);
        self
    }

    /// Finalises the spec, checking that it expands to at least one run.
    ///
    /// # Errors
    ///
    /// Propagates any [`SpecError`] from [`ClosSpec::expand`].
    pub fn build(self) -> Result<ClosSpec, SpecError> {
        self.spec.expand()?;
        Ok(self.spec)
    }
}

impl Serialize for ClosSpec {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        use serde::ser::SerializeStruct as _;
        let mut st = serializer.serialize_struct("ClosSpec", 22)?;
        st.serialize_field("name", &self.name)?;
        st.serialize_field("designs", &self.designs)?;
        st.serialize_field("workloads", &self.workloads)?;
        st.serialize_field("dispatches", &self.dispatches)?;
        st.serialize_field("arbiters", &self.arbiters)?;
        st.serialize_field("line_rate", &self.line_rate)?;
        st.serialize_field("radix", &self.radix)?;
        st.serialize_field("ingress_switches", &self.ingress_switches)?;
        st.serialize_field("middle_switches", &self.middle_switches)?;
        st.serialize_field("load_percent", &self.load_percent)?;
        st.serialize_field("link_capacity", &self.link_capacity)?;
        st.serialize_field("granularity", &self.granularity)?;
        st.serialize_field("rads_granularity", &self.rads_granularity)?;
        st.serialize_field("num_banks", &self.num_banks)?;
        st.serialize_field("islip_iterations", &self.islip_iterations)?;
        st.serialize_field("egress_period", &self.egress_period)?;
        st.serialize_field("link_latency", &self.link_latency)?;
        st.serialize_field("arrival_slots", &self.arrival_slots)?;
        st.serialize_field("workers", &self.workers)?;
        st.serialize_field("seeds", &self.seeds)?;
        st.serialize_field("overrides", &self.overrides)?;
        if !self.faults.is_empty() {
            st.serialize_field("faults", &self.faults)?;
        }
        if let Some(transport) = &self.transport {
            st.serialize_field("transport", transport)?;
        }
        if let Some(obs) = &self.obs {
            st.serialize_field("obs", obs)?;
        }
        st.serialize_field("kind", &"clos")?;
        st.end()
    }
}

impl<'de> Deserialize<'de> for ClosSpec {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct V;
        impl<'de> de::Visitor<'de> for V {
            type Value = ClosSpec;
            fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str("a Clos-spec object")
            }
            fn visit_map<A: de::MapAccess<'de>>(self, mut map: A) -> Result<ClosSpec, A::Error> {
                // Unknown fields are rejected; omitted fields keep the
                // builder defaults, so a minimal spec file stays minimal.
                let mut spec = ClosSpecBuilder::default().spec;
                while let Some(key) = map.next_key::<String>()? {
                    match key.as_str() {
                        "name" => spec.name = map.next_value()?,
                        "designs" => spec.designs = map.next_value()?,
                        "workloads" => spec.workloads = map.next_value()?,
                        "dispatches" => spec.dispatches = map.next_value()?,
                        "arbiters" => spec.arbiters = map.next_value()?,
                        "line_rate" => spec.line_rate = map.next_value()?,
                        "radix" => spec.radix = map.next_value()?,
                        "ingress_switches" => spec.ingress_switches = map.next_value()?,
                        "middle_switches" => spec.middle_switches = map.next_value()?,
                        "load_percent" => spec.load_percent = map.next_value()?,
                        "link_capacity" => spec.link_capacity = map.next_value()?,
                        "granularity" => spec.granularity = map.next_value()?,
                        "rads_granularity" => spec.rads_granularity = map.next_value()?,
                        "num_banks" => spec.num_banks = map.next_value()?,
                        "islip_iterations" => spec.islip_iterations = map.next_value()?,
                        "egress_period" => spec.egress_period = map.next_value()?,
                        "link_latency" => spec.link_latency = map.next_value()?,
                        "arrival_slots" => spec.arrival_slots = map.next_value()?,
                        "workers" => spec.workers = map.next_value()?,
                        "seeds" => spec.seeds = map.next_value()?,
                        "overrides" => spec.overrides = map.next_value()?,
                        "faults" => spec.faults = map.next_value()?,
                        "transport" => spec.transport = Some(map.next_value()?),
                        "obs" => spec.obs = Some(map.next_value()?),
                        "kind" => {
                            let kind: String = map.next_value()?;
                            if kind != "clos" {
                                return Err(de::Error::custom(format_args!(
                                    "not a Clos spec (kind {kind:?})"
                                )));
                            }
                        }
                        other => {
                            return Err(de::Error::custom(format_args!(
                                "unknown Clos spec field {other:?}"
                            )))
                        }
                    }
                }
                Ok(spec)
            }
        }
        deserializer.deserialize_any(V)
    }
}

/// One executed Clos run.
#[derive(Debug, Clone, PartialEq)]
pub struct ClosRunRecord {
    /// Index of this run in the spec's expansion order.
    pub index: usize,
    /// The exact parameters of the run.
    pub scenario: ClosScenario,
    /// The Clos outcome.
    pub report: ClosRunReport,
}

impl Serialize for ClosRunRecord {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        use serde::ser::SerializeStruct as _;
        let mut st = serializer.serialize_struct("ClosRunRecord", 3)?;
        st.serialize_field("index", &self.index)?;
        st.serialize_field("scenario", &self.scenario)?;
        st.serialize_field("report", &self.report)?;
        st.end()
    }
}

/// Aggregate statistics over every run of a Clos experiment.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ClosAggregate {
    /// Number of runs executed.
    pub runs: u64,
    /// Runs that lost no cell anywhere in the fabric.
    pub zero_loss_runs: u64,
    /// Whether every run was zero-loss.
    pub all_zero_loss: bool,
    /// Runs whose fabric-wide conservation check held.
    pub conserving_runs: u64,
    /// Whether every run conserved cells.
    pub all_conserving: bool,
    /// Total cells offered across runs.
    pub total_arrivals: u64,
    /// Total cells delivered on external output lines across runs.
    pub total_delivered: u64,
    /// Total cells lost across runs (must stay 0).
    pub total_lost_cells: u64,
    /// Total reordered deliveries across runs (spray dispatch only).
    pub total_reordered_cells: u64,
    /// Total output-slots spent gated awaiting a link credit.
    pub total_credit_stall_slots: u64,
    /// Deepest any inter-stage link FIFO got in any run.
    pub peak_link_depth: u64,
    /// Largest external end-to-end latency any run saw (slots).
    pub max_latency_slots: u64,
    /// Mean of the runs' mean end-to-end latencies (unweighted, slots).
    pub mean_latency_slots: f64,
}

impl Serialize for ClosAggregate {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        use serde::ser::SerializeStruct as _;
        let mut st = serializer.serialize_struct("ClosAggregate", 13)?;
        st.serialize_field("runs", &self.runs)?;
        st.serialize_field("zero_loss_runs", &self.zero_loss_runs)?;
        st.serialize_field("all_zero_loss", &self.all_zero_loss)?;
        st.serialize_field("conserving_runs", &self.conserving_runs)?;
        st.serialize_field("all_conserving", &self.all_conserving)?;
        st.serialize_field("total_arrivals", &self.total_arrivals)?;
        st.serialize_field("total_delivered", &self.total_delivered)?;
        st.serialize_field("total_lost_cells", &self.total_lost_cells)?;
        st.serialize_field("total_reordered_cells", &self.total_reordered_cells)?;
        st.serialize_field("total_credit_stall_slots", &self.total_credit_stall_slots)?;
        st.serialize_field("peak_link_depth", &self.peak_link_depth)?;
        st.serialize_field("max_latency_slots", &self.max_latency_slots)?;
        st.serialize_field("mean_latency_slots", &self.mean_latency_slots)?;
        st.end()
    }
}

/// The structured result of executing a whole [`ClosSpec`].
#[derive(Debug, Clone, PartialEq)]
pub struct ClosLabReport {
    /// The spec that was executed.
    pub spec: ClosSpec,
    /// Combinations skipped during expansion.
    pub skipped_invalid: usize,
    /// Per-run results, in expansion order.
    pub runs: Vec<ClosRunRecord>,
    /// Aggregates over `runs`.
    pub aggregate: ClosAggregate,
}

impl Serialize for ClosLabReport {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        use serde::ser::SerializeStruct as _;
        let mut st = serializer.serialize_struct("ClosLabReport", 4)?;
        st.serialize_field("spec", &self.spec)?;
        st.serialize_field("skipped_invalid", &self.skipped_invalid)?;
        st.serialize_field("aggregate", &self.aggregate)?;
        st.serialize_field("runs", &self.runs)?;
        st.end()
    }
}

impl ClosLabReport {
    /// Renders the report as pretty JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("a Clos report always serializes")
    }

    /// Renders one CSV row per run (with a header).
    pub fn to_csv(&self) -> String {
        let mut table = crate::report::TextTable::new(vec![
            "index",
            "radix",
            "ingress_switches",
            "middle_switches",
            "external_ports",
            "design",
            "workload",
            "dispatch",
            "arbiter",
            "load_percent",
            "link_capacity",
            "seed",
            "slots",
            "arrivals",
            "delivered",
            "lost_cells",
            "resident_cells",
            "link_resident_cells",
            "reordered_cells",
            "credit_stall_slots",
            "peak_link_depth",
            "mean_latency_slots",
            "max_latency_slots",
            "latency_p50_slots",
            "latency_p95_slots",
            "latency_p99_slots",
            "zero_loss",
            "conserving",
        ]);
        for run in &self.runs {
            let s = &run.scenario;
            let r = &run.report;
            // Percentile columns are empty unless the run armed the latency
            // probes (obs is an opt-in axis, not a default cost).
            let latency = r.obs.as_ref().and_then(|o| o.latency.as_ref());
            let pct = |f: fn(&::fabric::HistogramReport) -> u64| {
                latency.map(|h| f(h).to_string()).unwrap_or_default()
            };
            table.push_row(vec![
                run.index.to_string(),
                s.radix.to_string(),
                s.ingress_switches.to_string(),
                s.middle_switches.to_string(),
                r.external_ports.to_string(),
                s.design.to_string(),
                s.workload.to_string(),
                s.dispatch.to_string(),
                s.arbiter.to_string(),
                s.load_percent.to_string(),
                s.link_capacity.to_string(),
                s.seed.to_string(),
                r.slots.to_string(),
                r.arrivals.to_string(),
                r.delivered.to_string(),
                r.lost_cells.to_string(),
                r.resident_cells.to_string(),
                r.link_resident_cells.to_string(),
                r.reordered_cells.to_string(),
                r.credit_stall_slots.to_string(),
                r.peak_link_depth.to_string(),
                format!("{:.3}", r.mean_latency_slots),
                r.max_latency_slots.to_string(),
                pct(|h| h.p50),
                pct(|h| h.p95),
                pct(|h| h.p99),
                r.zero_loss.to_string(),
                r.conservation_holds().to_string(),
            ]);
        }
        table.to_csv()
    }
}

impl LabRunner {
    /// Expands `spec` and executes every Clos run, exactly like
    /// [`LabRunner::run_fabric`]: runs shard over the worker threads through
    /// an atomic cursor and results are stored by index, so the report is
    /// identical whatever the worker count.
    ///
    /// # Errors
    ///
    /// Returns [`SpecError`] when the spec does not expand.
    ///
    /// # Panics
    ///
    /// Panics if a worker thread panics.
    pub fn run_clos(&self, spec: &ClosSpec) -> Result<ClosLabReport, SpecError> {
        let expansion = spec.expand()?;
        let runs = run_sharded(self.threads(), expansion.runs.len(), |index| {
            let scenario = expansion.runs[index].clone();
            let report = scenario.run();
            ClosRunRecord {
                index,
                scenario,
                report,
            }
        });
        let aggregate = aggregate_clos(&runs);
        Ok(ClosLabReport {
            spec: spec.clone(),
            skipped_invalid: expansion.skipped_invalid,
            runs,
            aggregate,
        })
    }
}

fn aggregate_clos(runs: &[ClosRunRecord]) -> ClosAggregate {
    let mut agg = ClosAggregate {
        all_zero_loss: true,
        all_conserving: true,
        ..ClosAggregate::default()
    };
    let mut latency_sum = 0.0f64;
    for run in runs {
        let r = &run.report;
        agg.runs += 1;
        if r.zero_loss {
            agg.zero_loss_runs += 1;
        } else {
            agg.all_zero_loss = false;
        }
        if r.conservation_holds() {
            agg.conserving_runs += 1;
        } else {
            agg.all_conserving = false;
        }
        agg.total_arrivals += r.arrivals;
        agg.total_delivered += r.delivered;
        agg.total_lost_cells += r.lost_cells;
        agg.total_reordered_cells += r.reordered_cells;
        agg.total_credit_stall_slots += r.credit_stall_slots;
        agg.peak_link_depth = agg.peak_link_depth.max(r.peak_link_depth);
        agg.max_latency_slots = agg.max_latency_slots.max(r.max_latency_slots);
        latency_sum += r.mean_latency_slots;
    }
    if agg.runs > 0 {
        agg.mean_latency_slots = latency_sum / agg.runs as f64;
    }
    agg
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> ClosScenario {
        ClosScenario {
            radix: 3,
            ingress_switches: 3,
            middle_switches: 3,
            arrival_slots: 1_200,
            load_percent: 70,
            ..ClosScenario::small()
        }
    }

    #[test]
    fn small_clos_scenario_is_zero_loss_and_conserving() {
        let report = ClosScenario::small().run();
        assert!(report.zero_loss, "{report:?}");
        assert!(report.conservation_holds());
        assert_eq!(report.external_ports, 16);
        assert!(report.arrivals > 10_000);
        assert_eq!(report.delivered + report.resident_cells, report.arrivals);
    }

    #[test]
    fn every_design_and_dispatch_runs_zero_loss() {
        for design in FabricDesign::all() {
            for dispatch in DispatchChoice::all() {
                let scenario = ClosScenario {
                    design,
                    dispatch,
                    ..quick()
                };
                let report = scenario.run();
                assert!(
                    report.conservation_holds(),
                    "{design}/{dispatch}: {report:?}"
                );
                // The DRAM-only baseline misses under back-to-back requests
                // — that is its point; every worst-case design must not.
                if design != FabricDesign::Fixed(DesignKind::DramOnly) {
                    assert!(report.zero_loss, "{design}/{dispatch}: {report:?}");
                }
                if dispatch == DispatchChoice::FlowHash {
                    assert_eq!(report.reordered_cells, 0, "{design}: pinned flows");
                }
            }
        }
    }

    #[test]
    fn every_workload_runs_conserving() {
        for workload in FabricWorkload::all() {
            let scenario = ClosScenario {
                workload,
                ..quick()
            };
            let report = scenario.run();
            assert!(
                report.zero_loss && report.conservation_holds(),
                "{workload}: {report:?}"
            );
        }
    }

    #[test]
    fn worker_counts_and_reference_agree() {
        let scenario = quick();
        let reference = scenario.run_reference();
        for workers in [1usize, 2, 3] {
            let report = scenario.run_with_workers(workers);
            assert_eq!(report, reference, "workers={workers} diverged");
        }
        assert!(reference.zero_loss);
    }

    #[test]
    fn dispatch_names_round_trip() {
        for dispatch in DispatchChoice::all() {
            let text = dispatch.to_string();
            assert_eq!(text.parse::<DispatchChoice>().unwrap(), dispatch, "{text}");
        }
        assert_eq!(
            "occupancy-spray".parse::<DispatchChoice>().unwrap(),
            DispatchChoice::OccupancySpray
        );
        assert!("shotgun".parse::<DispatchChoice>().is_err());
    }

    #[test]
    fn transport_scenario_runs_conserving_across_schedules() {
        let scenario = ClosScenario {
            radix: 3,
            ingress_switches: 3,
            middle_switches: 3,
            arrival_slots: 1_200,
            ..ClosScenario::small_transport()
        };
        assert!(scenario.validate().is_ok());
        let reference = scenario.run_reference();
        let transport = reference.transport.as_ref().expect("transport report");
        assert!(transport.injected_cells > 1_000, "{transport:?}");
        assert_eq!(transport.duplicate_deliveries, 0);
        assert!(reference.transport_conservation_holds());
        assert!(reference.conservation_holds());
        for workers in [1usize, 3] {
            assert_eq!(scenario.run_with_workers(workers), reference);
        }
    }

    #[test]
    fn transport_requires_cut_through_buffers() {
        // The plain small() geometry batches writebacks (B = 8): layering
        // transport over it must be refused, not run pathologically.
        let batched = ClosScenario {
            transport: Some(TransportScenario::default()),
            ..ClosScenario::small()
        };
        assert_eq!(
            batched.validate().unwrap_err(),
            ClosScenarioError::TransportNeedsCutThrough
        );
        let cfds = ClosScenario {
            design: FabricDesign::Fixed(DesignKind::Cfds),
            ..ClosScenario::small_transport()
        };
        assert_eq!(
            cfds.validate().unwrap_err(),
            ClosScenarioError::TransportNeedsCutThrough
        );
        let bad_target = ClosScenario {
            transport: Some(TransportScenario {
                mode: TransportMode::Incast,
                incast_target: 99,
                ..TransportScenario::default()
            }),
            ..ClosScenario::small_transport()
        };
        assert_eq!(
            bad_target.validate().unwrap_err(),
            ClosScenarioError::BadIncastTarget(99, 16)
        );
    }

    #[test]
    fn transport_scenario_round_trips_through_json() {
        let scenario = ClosScenario {
            transport: Some(TransportScenario {
                mode: TransportMode::Incast,
                incast_target: 3,
                rto_initial: 16,
                ..TransportScenario::default()
            }),
            ..ClosScenario::small_transport()
        };
        let json = serde_json::to_string_pretty(&scenario).unwrap();
        assert!(json.contains("\"transport\""));
        assert!(json.contains("\"incast\""));
        let back: ClosScenario = serde_json::from_str(&json).unwrap();
        assert_eq!(back, scenario);
        // Open-loop scenarios keep their pre-transport shape on the wire.
        let open = serde_json::to_string_pretty(ClosScenario::small()).unwrap();
        assert!(!open.contains("\"transport\""));
        // And a spec carries the layer into every expanded run.
        let spec = ClosSpec::builder()
            .rads_granularity(1)
            .load_percent(Sweep::list([60, 85]))
            .arrival_slots(400)
            .transport(TransportScenario::default())
            .build()
            .unwrap();
        let spec_json = spec.to_json();
        assert_eq!(ClosSpec::from_json(&spec_json).unwrap(), spec);
        let expansion = spec.expand().unwrap();
        assert!(expansion
            .runs
            .iter()
            .all(|run| run.transport == spec.transport));
    }

    #[test]
    fn obs_scenario_round_trips_and_reaches_every_expanded_run() {
        let scenario = ClosScenario {
            obs: Some(ObsScenario {
                series_stride: 50,
                series_capacity: 32,
                ..ObsScenario::standard()
            }),
            ..quick()
        };
        let json = serde_json::to_string_pretty(&scenario).unwrap();
        assert!(json.contains("\"obs\""));
        let back: ClosScenario = serde_json::from_str(&json).unwrap();
        assert_eq!(back, scenario);
        // Unarmed scenarios keep their pre-obs shape on the wire.
        let unarmed = serde_json::to_string_pretty(ClosScenario::small()).unwrap();
        assert!(!unarmed.contains("\"obs\""));
        assert!(
            serde_json::from_str::<ClosScenario>("{\"radix\": 4, \"obs\": {\"x\": 1}}").is_err()
        );
        // A spec carries the probes into every expanded run.
        let spec = ClosSpec::builder()
            .load_percent(Sweep::list([60, 85]))
            .arrival_slots(400)
            .obs(ObsScenario::standard())
            .build()
            .unwrap();
        assert_eq!(ClosSpec::from_json(&spec.to_json()).unwrap(), spec);
        let expansion = spec.expand().unwrap();
        assert!(expansion.runs.iter().all(|run| run.obs == spec.obs));
    }

    #[test]
    fn armed_scenario_reports_probes_and_fills_the_csv_percentiles() {
        let armed = ClosScenario {
            obs: Some(ObsScenario::standard()),
            ..quick()
        };
        let report = armed.run();
        let obs = report.obs.as_ref().expect("armed run reports probes");
        let latency = obs.latency.as_ref().expect("latency histogram");
        assert_eq!(latency.count, report.delivered);
        assert!(latency.p50 <= latency.p95 && latency.p95 <= latency.p99);
        // An all-off obs layer leaves the run byte-identical to `None`.
        let off = ClosScenario {
            obs: Some(ObsScenario::default()),
            ..quick()
        };
        let baseline = quick().run();
        assert_eq!(off.run(), baseline);
        assert!(baseline.obs.is_none());
        // The lab CSV exposes the percentiles for armed runs and leaves the
        // columns empty for unarmed ones.
        let lab = ClosLabReport {
            spec: ClosSpec::builder().build().unwrap(),
            skipped_invalid: 0,
            runs: vec![
                ClosRunRecord {
                    index: 0,
                    scenario: armed,
                    report: report.clone(),
                },
                ClosRunRecord {
                    index: 1,
                    scenario: quick(),
                    report: baseline,
                },
            ],
            aggregate: ClosAggregate::default(),
        };
        let csv = lab.to_csv();
        let mut lines = csv.lines();
        let header = lines.next().unwrap();
        assert!(header.contains("latency_p50_slots,latency_p95_slots,latency_p99_slots"));
        let armed_row = lines.next().unwrap();
        assert!(armed_row.contains(&format!(
            ",{},{},{},",
            latency.p50, latency.p95, latency.p99
        )));
        let unarmed_row = lines.next().unwrap();
        assert!(unarmed_row.contains(",,,"));
    }

    #[test]
    fn scenario_validation_catches_bad_parameters() {
        assert!(ClosScenario::small().validate().is_ok());
        let bad = |s: ClosScenario| s.validate().unwrap_err();
        assert_eq!(
            bad(ClosScenario {
                radix: 1,
                ..ClosScenario::small()
            }),
            ClosScenarioError::BadRadix(1)
        );
        assert_eq!(
            bad(ClosScenario {
                ingress_switches: 1,
                ..ClosScenario::small()
            }),
            ClosScenarioError::TooFewIngress(1)
        );
        assert_eq!(
            bad(ClosScenario {
                middle_switches: 5,
                ..ClosScenario::small()
            }),
            ClosScenarioError::BadMiddle(5, 4)
        );
        assert_eq!(
            bad(ClosScenario {
                load_percent: 0,
                ..ClosScenario::small()
            }),
            ClosScenarioError::BadLoad(0)
        );
        assert_eq!(
            bad(ClosScenario {
                link_capacity: 0,
                ..ClosScenario::small()
            }),
            ClosScenarioError::BadLinkCapacity(0)
        );
        let bad_cfds = ClosScenario {
            design: FabricDesign::Fixed(DesignKind::Cfds),
            granularity: 3, // does not divide B = 8
            ..ClosScenario::small()
        };
        assert!(matches!(
            bad_cfds.validate(),
            Err(ClosScenarioError::Config(_))
        ));
    }

    #[test]
    fn spec_expansion_skips_invalid_geometry() {
        let spec = ClosSpec::builder()
            .radix(Sweep::list([3, 4]))
            .middle_switches(Sweep::list([3, 4]))
            .ingress_switches(Sweep::fixed(3))
            .arrival_slots(400)
            .build()
            .unwrap();
        let expansion = spec.expand().unwrap();
        // m = 4 > N = 3 is skipped; the other three combinations survive.
        assert_eq!(expansion.runs.len(), 3);
        assert_eq!(expansion.skipped_invalid, 1);
    }

    #[test]
    fn spec_round_trips_through_json() {
        let spec = ClosSpec::builder()
            .name("clos-sweep")
            .designs([
                FabricDesign::Fixed(DesignKind::Rads),
                FabricDesign::Fixed(DesignKind::Cfds),
            ])
            .dispatches(DispatchChoice::all())
            .arbiters(ArbiterChoice::all())
            .radix(Sweep::list([3, 4]))
            .load_percent(Sweep::list([60, 90]))
            .link_capacity(Sweep::list([2, 8]))
            .arrival_slots(500)
            .seeds([1, 101])
            .build()
            .unwrap();
        let json = spec.to_json();
        let back = ClosSpec::from_json(&json).unwrap();
        assert_eq!(back, spec);
        assert_eq!(back.to_json(), json);
        // A minimal spec takes the builder defaults.
        let minimal = ClosSpec::from_json("{\"name\": \"tiny\"}").unwrap();
        assert_eq!(minimal.name, "tiny");
        assert_eq!(minimal.radix, Sweep::Fixed(4));
        // Unknown fields and foreign kinds are rejected.
        assert!(ClosSpec::from_json("{\"mystery\": 1}").is_err());
        assert!(ClosSpec::from_json("{\"kind\": \"fabric\"}").is_err());
    }

    #[test]
    fn scenario_round_trips_through_json() {
        let scenario = ClosScenario {
            design: FabricDesign::Mixed,
            workload: FabricWorkload::Incast,
            dispatch: DispatchChoice::FlowHash,
            seed: 99,
            ..ClosScenario::small()
        };
        let json = serde_json::to_string_pretty(&scenario).unwrap();
        assert!(!json.contains("\"faults\""), "empty plan stays implicit");
        let back: ClosScenario = serde_json::from_str(&json).unwrap();
        assert_eq!(back, scenario);
        let minimal: ClosScenario = serde_json::from_str("{\"radix\": 8}").unwrap();
        assert_eq!(minimal.radix, 8);
        assert_eq!(minimal.dispatch, DispatchChoice::Spray);
        assert!(serde_json::from_str::<ClosScenario>("{}").is_err());
    }

    #[test]
    fn faulted_scenario_round_trips_and_validates_geometry() {
        use ::fabric::{FaultEvent, FaultKind, LinkBoundary};
        let scenario = ClosScenario {
            faults: FaultPlan::new([
                FaultEvent::windowed(FaultKind::MiddleDeath { switch: 1 }, 300, 200),
                FaultEvent::windowed(
                    FaultKind::LinkFlap {
                        boundary: LinkBoundary::MiddleEgress,
                        switch: 0,
                        output: 1,
                    },
                    600,
                    100,
                ),
            ]),
            ..quick()
        };
        assert!(scenario.validate().is_ok());
        let json = serde_json::to_string_pretty(&scenario).unwrap();
        assert!(json.contains("\"middle-death\""));
        let back: ClosScenario = serde_json::from_str(&json).unwrap();
        assert_eq!(back, scenario);
        // A plan that targets a middle switch the geometry lacks is caught
        // at validation, before any fabric is built.
        let misfit = ClosScenario {
            faults: FaultPlan::new([FaultEvent::permanent(
                FaultKind::MiddleDeath { switch: 9 },
                100,
            )]),
            ..quick()
        };
        assert!(matches!(
            misfit.validate(),
            Err(ClosScenarioError::Faults(_))
        ));
    }

    #[test]
    fn faulted_scenario_runs_conserving_with_a_ledger() {
        use ::fabric::{FaultEvent, FaultKind};
        let scenario = ClosScenario {
            faults: FaultPlan::new([FaultEvent::windowed(
                FaultKind::MiddleDeath { switch: 1 },
                300,
                250,
            )]),
            ..quick()
        };
        let reference = scenario.run_reference();
        assert!(reference.zero_loss, "{reference:?}");
        assert!(reference.conservation_holds(), "{reference:?}");
        let ledger = reference.faults.as_ref().expect("armed plans report");
        assert_eq!(ledger.events.len(), 1);
        assert!(ledger.stalled_cell_slots > 0, "{ledger:?}");
        for workers in [1usize, 3] {
            assert_eq!(scenario.run_with_workers(workers), reference);
        }
    }

    #[test]
    fn spec_faults_reach_every_expanded_run() {
        use ::fabric::{FaultEvent, FaultKind};
        let plan = FaultPlan::new([FaultEvent::windowed(
            FaultKind::MiddleDeath { switch: 0 },
            100,
            50,
        )]);
        let spec = ClosSpec::builder()
            .radix(Sweep::fixed(3))
            .ingress_switches(Sweep::fixed(3))
            .middle_switches(Sweep::fixed(3))
            .load_percent(Sweep::list([60, 85]))
            .arrival_slots(400)
            .faults(plan.clone())
            .build()
            .unwrap();
        let json = spec.to_json();
        assert_eq!(ClosSpec::from_json(&json).unwrap(), spec);
        let expansion = spec.expand().unwrap();
        assert_eq!(expansion.runs.len(), 2);
        assert!(expansion.runs.iter().all(|run| run.faults == plan));
        let report = LabRunner::new().with_threads(2).run_clos(&spec).unwrap();
        assert!(report.aggregate.all_conserving, "{:?}", report.aggregate);
        assert!(report.runs.iter().all(|run| run.report.faults.is_some()));
    }

    #[test]
    fn lab_runner_report_is_thread_count_invariant() {
        let spec = ClosSpec::builder()
            .dispatches(DispatchChoice::all())
            .load_percent(Sweep::list([60, 85]))
            .radix(Sweep::fixed(3))
            .ingress_switches(Sweep::fixed(3))
            .middle_switches(Sweep::fixed(3))
            .arrival_slots(600)
            .build()
            .unwrap();
        let single = LabRunner::new().with_threads(1).run_clos(&spec).unwrap();
        let multi = LabRunner::new().with_threads(4).run_clos(&spec).unwrap();
        assert_eq!(single, multi);
        assert_eq!(single.to_json(), multi.to_json());
        assert_eq!(single.to_csv(), multi.to_csv());
        assert_eq!(single.runs.len(), 6);
        assert!(single.aggregate.all_zero_loss);
        assert!(single.aggregate.all_conserving);
        let csv = single.to_csv();
        assert_eq!(csv.lines().count(), 1 + single.runs.len());
        assert!(csv.starts_with("index,radix,ingress_switches"));
    }
}
