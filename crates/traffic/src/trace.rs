//! Trace recording and replay.

use crate::arrivals::ArrivalGenerator;
use crate::requests::RequestGenerator;
use pktbuf_model::{Cell, LogicalQueueId};
use serde::{Deserialize, Serialize};

/// A recorded workload: per-slot arrivals and requests.
///
/// Traces make experiments exactly reproducible across designs: the same trace
/// can be replayed against RADS, CFDS and the DRAM-only baseline and the
/// delivered cell streams compared.
#[derive(Debug, Clone, Default, Serialize, Deserialize, PartialEq, Eq)]
pub struct RecordedTrace {
    /// Arrival at each slot (queue index), `None` for idle slots.
    pub arrivals: Vec<Option<u32>>,
    /// Request at each slot (queue index), `None` for idle slots.
    pub requests: Vec<Option<u32>>,
}

impl RecordedTrace {
    /// Creates an empty trace.
    pub fn new() -> Self {
        RecordedTrace::default()
    }

    /// Appends one slot.
    pub fn push(&mut self, arrival: Option<u32>, request: Option<u32>) {
        self.arrivals.push(arrival);
        self.requests.push(request);
    }

    /// Number of recorded slots.
    pub fn len(&self) -> usize {
        self.arrivals.len().max(self.requests.len())
    }

    /// Whether the trace holds no slots.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Replays the arrival side of a [`RecordedTrace`].
#[derive(Debug, Clone)]
pub struct TraceArrivals {
    trace: Vec<Option<u32>>,
    num_queues: usize,
    seq: crate::seq::SeqTracker,
}

impl TraceArrivals {
    /// Creates a replay source over `num_queues` queues.
    pub fn new(trace: &RecordedTrace, num_queues: usize) -> Self {
        TraceArrivals {
            trace: trace.arrivals.clone(),
            num_queues,
            seq: crate::seq::SeqTracker::new(num_queues),
        }
    }
}

impl ArrivalGenerator for TraceArrivals {
    fn next(&mut self, slot: u64) -> Option<Cell> {
        let entry = self.trace.get(slot as usize).copied().flatten()?;
        Some(self.seq.mint(LogicalQueueId::new(entry), slot))
    }

    fn num_queues(&self) -> usize {
        self.num_queues
    }

    fn name(&self) -> &'static str {
        "trace"
    }
}

/// Replays the request side of a [`RecordedTrace`].
///
/// A recorded request is only emitted when the buffer can still honour it; a
/// blocked request is retried at the next slot (the replay therefore never
/// violates the requestability rule even against a different design).
#[derive(Debug, Clone)]
pub struct TraceRequests {
    trace: Vec<Option<u32>>,
    cursor: usize,
}

impl TraceRequests {
    /// Creates a replay source.
    pub fn new(trace: &RecordedTrace) -> Self {
        TraceRequests {
            trace: trace.requests.clone(),
            cursor: 0,
        }
    }

    /// Whether every recorded request has been emitted.
    pub fn finished(&self) -> bool {
        self.cursor >= self.trace.len()
    }
}

impl RequestGenerator for TraceRequests {
    fn next(
        &mut self,
        _slot: u64,
        requestable: &dyn Fn(LogicalQueueId) -> u64,
    ) -> Option<LogicalQueueId> {
        // Skip over idle entries.
        while self.cursor < self.trace.len() && self.trace[self.cursor].is_none() {
            self.cursor += 1;
        }
        let entry = *self.trace.get(self.cursor)?;
        let q = LogicalQueueId::new(entry.expect("idle entries skipped above"));
        if requestable(q) > 0 {
            self.cursor += 1;
            Some(q)
        } else {
            None
        }
    }

    fn name(&self) -> &'static str {
        "trace"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_records_and_replays_arrivals() {
        let mut trace = RecordedTrace::new();
        trace.push(Some(1), None);
        trace.push(None, Some(1));
        trace.push(Some(1), Some(1));
        assert_eq!(trace.len(), 3);
        assert!(!trace.is_empty());

        let mut arr = TraceArrivals::new(&trace, 4);
        assert_eq!(arr.next(0).unwrap().queue().index(), 1);
        assert!(arr.next(1).is_none());
        let c = arr.next(2).unwrap();
        assert_eq!(c.seq(), 1, "second cell of queue 1");
        assert!(arr.next(3).is_none(), "past the end of the trace");
        assert_eq!(arr.name(), "trace");
        assert_eq!(arr.num_queues(), 4);
    }

    #[test]
    fn trace_requests_defer_until_requestable() {
        let mut trace = RecordedTrace::new();
        trace.push(None, Some(2));
        trace.push(None, Some(2));
        let mut reqs = TraceRequests::new(&trace);
        let empty = |_q: LogicalQueueId| 0u64;
        let ready = |_q: LogicalQueueId| 1u64;
        // Not requestable yet: the entry is retried, not lost.
        assert_eq!(reqs.next(0, &empty), None);
        assert!(!reqs.finished());
        assert_eq!(reqs.next(1, &ready).unwrap().index(), 2);
        assert_eq!(reqs.next(2, &ready).unwrap().index(), 2);
        assert!(reqs.finished());
        assert_eq!(reqs.next(3, &ready), None);
        assert_eq!(reqs.name(), "trace");
    }

    #[test]
    fn empty_trace_is_empty() {
        assert!(RecordedTrace::new().is_empty());
    }
}
