//! Trace recording and replay.

use crate::arrivals::ArrivalGenerator;
use crate::requests::RequestGenerator;
use pktbuf_model::{Cell, LogicalQueueId};
use serde::{Deserialize, Serialize};

/// A recorded workload: per-slot arrivals and requests.
///
/// Traces make experiments exactly reproducible across designs: the same trace
/// can be replayed against RADS, CFDS and the DRAM-only baseline and the
/// delivered cell streams compared.
#[derive(Debug, Clone, Default, Serialize, Deserialize, PartialEq, Eq)]
pub struct RecordedTrace {
    /// Arrival at each slot (queue index), `None` for idle slots.
    pub arrivals: Vec<Option<u32>>,
    /// Request at each slot (queue index), `None` for idle slots.
    pub requests: Vec<Option<u32>>,
}

impl RecordedTrace {
    /// Creates an empty trace.
    pub fn new() -> Self {
        RecordedTrace::default()
    }

    /// Appends one slot.
    pub fn push(&mut self, arrival: Option<u32>, request: Option<u32>) {
        self.arrivals.push(arrival);
        self.requests.push(request);
    }

    /// Number of recorded slots.
    pub fn len(&self) -> usize {
        self.arrivals.len().max(self.requests.len())
    }

    /// Whether the trace holds no slots.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Replays the arrival side of a [`RecordedTrace`].
#[derive(Debug, Clone)]
pub struct TraceArrivals {
    trace: Vec<Option<u32>>,
    num_queues: usize,
    seq: crate::seq::SeqTracker,
}

impl TraceArrivals {
    /// Creates a replay source over `num_queues` queues.
    pub fn new(trace: &RecordedTrace, num_queues: usize) -> Self {
        TraceArrivals {
            trace: trace.arrivals.clone(),
            num_queues,
            seq: crate::seq::SeqTracker::new(num_queues),
        }
    }
}

impl ArrivalGenerator for TraceArrivals {
    fn next(&mut self, slot: u64) -> Option<Cell> {
        let entry = self.trace.get(slot as usize).copied().flatten()?;
        Some(self.seq.mint(LogicalQueueId::new(entry), slot))
    }

    fn num_queues(&self) -> usize {
        self.num_queues
    }

    fn name(&self) -> &'static str {
        "trace"
    }
}

/// Replays the request side of a [`RecordedTrace`].
///
/// A recorded request is only emitted when the buffer can still honour it; a
/// blocked request is retried at the next slot (the replay therefore never
/// violates the requestability rule even against a different design).
#[derive(Debug, Clone)]
pub struct TraceRequests {
    trace: Vec<Option<u32>>,
    cursor: usize,
}

impl TraceRequests {
    /// Creates a replay source.
    pub fn new(trace: &RecordedTrace) -> Self {
        TraceRequests {
            trace: trace.requests.clone(),
            cursor: 0,
        }
    }

    /// Whether every recorded request has been emitted.
    pub fn finished(&self) -> bool {
        self.cursor >= self.trace.len()
    }
}

impl RequestGenerator for TraceRequests {
    fn next(
        &mut self,
        _slot: u64,
        requestable: &dyn Fn(LogicalQueueId) -> u64,
    ) -> Option<LogicalQueueId> {
        // Skip over idle entries.
        while self.cursor < self.trace.len() && self.trace[self.cursor].is_none() {
            self.cursor += 1;
        }
        let entry = *self.trace.get(self.cursor)?;
        let q = LogicalQueueId::new(entry.expect("idle entries skipped above"));
        if requestable(q) > 0 {
            self.cursor += 1;
            Some(q)
        } else {
            None
        }
    }

    fn name(&self) -> &'static str {
        "trace"
    }
}

/// A recorded *traffic matrix*: per-port, per-slot arrivals with explicit
/// destinations **and sequence numbers**.
///
/// [`RecordedTrace`] re-mints sequence numbers on replay, which is fine for
/// open-loop workloads where seqs are a per-queue counter. A closed-loop
/// transport reuses sequence numbers on retransmission, so its arrival
/// stream cannot be reproduced by re-minting — the matrix trace therefore
/// stores the exact `(dest, seq)` of every injected cell. Replaying one
/// through a fabric (from slot 0, with the same fault plan armed) must
/// reproduce the recorded run's delivery matrix bit-identically.
#[derive(Debug, Clone, Default, Serialize, Deserialize, PartialEq, Eq)]
pub struct MatrixTrace {
    /// `arrivals[port][slot]` is the cell injected at `port` in `slot` as
    /// `(dest, seq)`, or `None` for an idle slot.
    pub arrivals: Vec<Vec<Option<(u32, u64)>>>,
}

impl MatrixTrace {
    /// Creates an empty trace over `ports` external ports.
    pub fn new(ports: usize) -> Self {
        MatrixTrace {
            arrivals: vec![Vec::new(); ports],
        }
    }

    /// Appends one slot: `row[p]` is the cell injected at port `p`.
    ///
    /// # Panics
    /// If `row.len()` does not match the port count.
    pub fn record_slot(&mut self, row: &[Option<(u32, u64)>]) {
        assert_eq!(row.len(), self.arrivals.len(), "row width != port count");
        for (port, cell) in self.arrivals.iter_mut().zip(row) {
            port.push(*cell);
        }
    }

    /// Appends `slots` idle slots on every port (used when the recording
    /// run fast-forwards through a quiet gap).
    pub fn pad_idle(&mut self, slots: u64) {
        for port in &mut self.arrivals {
            port.extend(std::iter::repeat_n(None, slots as usize));
        }
    }

    /// Number of recorded slots.
    pub fn len(&self) -> usize {
        self.arrivals.first().map_or(0, Vec::len)
    }

    /// Whether the trace holds no slots.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of external ports.
    pub fn ports(&self) -> usize {
        self.arrivals.len()
    }

    /// Records `slots` slots of the given per-port generators by consuming
    /// them — the open-loop path into a matrix trace.
    pub fn record<A: ArrivalGenerator>(gens: &mut [A], slots: u64) -> MatrixTrace {
        let mut trace = MatrixTrace::new(gens.len());
        let mut row = vec![None; gens.len()];
        for slot in 0..slots {
            for (g, out) in gens.iter_mut().zip(row.iter_mut()) {
                *out = g.next(slot).map(|c| (c.queue().index(), c.seq()));
            }
            trace.record_slot(&row);
        }
        trace
    }

    /// Builds one replay generator per recorded port. Replays must start at
    /// fabric slot 0: entries are indexed by absolute slot.
    pub fn replay(&self) -> Vec<MatrixTraceArrivals> {
        (0..self.ports())
            .map(|p| MatrixTraceArrivals {
                trace: self.arrivals[p].clone(),
                num_queues: self.ports(),
            })
            .collect()
    }
}

/// Replays one port of a [`MatrixTrace`] verbatim — destinations *and*
/// sequence numbers come from the trace, nothing is re-minted.
#[derive(Debug, Clone)]
pub struct MatrixTraceArrivals {
    trace: Vec<Option<(u32, u64)>>,
    num_queues: usize,
}

impl ArrivalGenerator for MatrixTraceArrivals {
    fn next(&mut self, slot: u64) -> Option<Cell> {
        let (dest, seq) = self.trace.get(slot as usize).copied().flatten()?;
        Some(Cell::new(LogicalQueueId::new(dest), seq, slot))
    }

    fn num_queues(&self) -> usize {
        self.num_queues
    }

    fn name(&self) -> &'static str {
        "matrix-trace"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_records_and_replays_arrivals() {
        let mut trace = RecordedTrace::new();
        trace.push(Some(1), None);
        trace.push(None, Some(1));
        trace.push(Some(1), Some(1));
        assert_eq!(trace.len(), 3);
        assert!(!trace.is_empty());

        let mut arr = TraceArrivals::new(&trace, 4);
        assert_eq!(arr.next(0).unwrap().queue().index(), 1);
        assert!(arr.next(1).is_none());
        let c = arr.next(2).unwrap();
        assert_eq!(c.seq(), 1, "second cell of queue 1");
        assert!(arr.next(3).is_none(), "past the end of the trace");
        assert_eq!(arr.name(), "trace");
        assert_eq!(arr.num_queues(), 4);
    }

    #[test]
    fn trace_requests_defer_until_requestable() {
        let mut trace = RecordedTrace::new();
        trace.push(None, Some(2));
        trace.push(None, Some(2));
        let mut reqs = TraceRequests::new(&trace);
        let empty = |_q: LogicalQueueId| 0u64;
        let ready = |_q: LogicalQueueId| 1u64;
        // Not requestable yet: the entry is retried, not lost.
        assert_eq!(reqs.next(0, &empty), None);
        assert!(!reqs.finished());
        assert_eq!(reqs.next(1, &ready).unwrap().index(), 2);
        assert_eq!(reqs.next(2, &ready).unwrap().index(), 2);
        assert!(reqs.finished());
        assert_eq!(reqs.next(3, &ready), None);
        assert_eq!(reqs.name(), "trace");
    }

    #[test]
    fn empty_trace_is_empty() {
        assert!(RecordedTrace::new().is_empty());
        assert!(MatrixTrace::new(4).is_empty());
    }

    #[test]
    fn matrix_trace_replays_explicit_seqs_verbatim() {
        let mut trace = MatrixTrace::new(2);
        trace.record_slot(&[Some((1, 0)), None]);
        trace.record_slot(&[None, Some((0, 5))]);
        // A retransmission reuses seq 0 — a re-minting replay could not
        // reproduce this.
        trace.record_slot(&[Some((1, 0)), None]);
        trace.pad_idle(2);
        assert_eq!(trace.len(), 5);
        assert_eq!(trace.ports(), 2);

        let mut gens = trace.replay();
        assert_eq!(gens.len(), 2);
        let c = gens[0].next(0).unwrap();
        assert_eq!((c.queue().index(), c.seq(), c.arrival_slot()), (1, 0, 0));
        assert!(gens[0].next(1).is_none());
        let c = gens[1].next(1).unwrap();
        assert_eq!((c.queue().index(), c.seq()), (0, 5));
        let c = gens[0].next(2).unwrap();
        assert_eq!((c.queue().index(), c.seq()), (1, 0), "reused seq survives");
        assert!(gens[0].next(3).is_none());
        assert!(gens[0].next(4).is_none());
        assert!(gens[0].next(5).is_none(), "past the end");
        assert_eq!(gens[0].name(), "matrix-trace");
        assert_eq!(gens[0].num_queues(), 2);
    }

    #[test]
    fn matrix_trace_record_captures_open_loop_generators() {
        use crate::arrivals::UniformArrivals;
        let mk = || {
            (0..3)
                .map(|p| UniformArrivals::new(3, 0.6, crate::stream_seed(9, p)))
                .collect::<Vec<_>>()
        };
        let trace = MatrixTrace::record(&mut mk(), 500);
        assert_eq!(trace.len(), 500);
        // The replay stream matches a fresh run of the same generators.
        let mut fresh = mk();
        let mut replay = trace.replay();
        for slot in 0..500u64 {
            for p in 0..3 {
                let want = fresh[p].next(slot).map(|c| (c.queue().index(), c.seq()));
                let got = replay[p].next(slot).map(|c| (c.queue().index(), c.seq()));
                assert_eq!(got, want, "port {p} slot {slot}");
            }
        }
    }
}
