//! Per-queue sequence-number bookkeeping shared by the arrival generators.

use pktbuf_model::{Cell, LogicalQueueId};

/// Tracks the next per-queue sequence number and mints cells.
#[derive(Debug, Clone)]
pub struct SeqTracker {
    next: Vec<u64>,
}

impl SeqTracker {
    /// Creates a tracker starting every queue at sequence zero.
    pub fn new(num_queues: usize) -> Self {
        SeqTracker {
            next: vec![0; num_queues],
        }
    }

    /// Creates a tracker whose every queue starts at `offset` (used after
    /// preloading `offset` cells per queue).
    pub fn with_offset(num_queues: usize, offset: u64) -> Self {
        SeqTracker {
            next: vec![offset; num_queues],
        }
    }

    /// Number of queues tracked.
    pub fn num_queues(&self) -> usize {
        self.next.len()
    }

    /// Mints the next cell of `queue`, arriving at `slot`.
    pub fn mint(&mut self, queue: LogicalQueueId, slot: u64) -> Cell {
        let seq = self.next[queue.as_usize()];
        self.next[queue.as_usize()] += 1;
        Cell::new(queue, seq, slot)
    }

    /// Cells minted so far for `queue`.
    pub fn minted(&self, queue: LogicalQueueId) -> u64 {
        self.next[queue.as_usize()]
    }

    /// Total cells minted.
    pub fn total_minted(&self) -> u64 {
        self.next.iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mints_consecutive_sequences_per_queue() {
        let mut t = SeqTracker::new(2);
        let q0 = LogicalQueueId::new(0);
        let q1 = LogicalQueueId::new(1);
        assert_eq!(t.mint(q0, 0).seq(), 0);
        assert_eq!(t.mint(q0, 1).seq(), 1);
        assert_eq!(t.mint(q1, 2).seq(), 0);
        assert_eq!(t.minted(q0), 2);
        assert_eq!(t.total_minted(), 3);
        assert_eq!(t.num_queues(), 2);
    }

    #[test]
    fn offset_constructor_continues_numbering() {
        let mut t = SeqTracker::with_offset(1, 64);
        assert_eq!(t.mint(LogicalQueueId::new(0), 0).seq(), 64);
    }
}
