//! Cell arrival generators (line side).

use crate::seq::SeqTracker;
use pktbuf_model::{Cell, LogicalQueueId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A source of cells arriving from the transmission line, at most one per
/// slot.
pub trait ArrivalGenerator {
    /// Returns the cell arriving at `slot`, if any.
    fn next(&mut self, slot: u64) -> Option<Cell>;

    /// Fills `out` with the arrivals of `out.len()` consecutive slots starting
    /// at `base_slot` (entry `i` is the arrival of slot `base_slot + i`) and
    /// returns how many cells were produced.
    ///
    /// This is the batch entry point of the chunked simulation engine: one
    /// call produces a whole chunk of arrivals into a preallocated ring, so
    /// the generator's inner state stays in registers across the chunk
    /// instead of being reloaded once per slot. The default implementation is
    /// the per-slot reference — it delegates to [`ArrivalGenerator::next`]
    /// slot by slot, so batch and per-slot streams are identical by
    /// construction.
    fn fill_arrivals(&mut self, base_slot: u64, out: &mut [Option<Cell>]) -> usize {
        let mut produced = 0;
        for (i, slot) in out.iter_mut().enumerate() {
            *slot = self.next(base_slot + i as u64);
            produced += usize::from(slot.is_some());
        }
        produced
    }

    /// Number of queues this generator targets.
    fn num_queues(&self) -> usize;

    /// Generator name for reports.
    fn name(&self) -> &'static str;
}

/// Bernoulli arrivals: a cell arrives with probability `load` each slot, to a
/// uniformly random queue.
#[derive(Debug)]
pub struct UniformArrivals {
    seq: SeqTracker,
    load: f64,
    rng: StdRng,
}

impl UniformArrivals {
    /// Creates a uniform generator with the given offered load (0.0–1.0).
    pub fn new(num_queues: usize, load: f64, seed: u64) -> Self {
        UniformArrivals {
            seq: SeqTracker::new(num_queues),
            load: load.clamp(0.0, 1.0),
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Starts every queue's sequence numbers at `offset` (for use after a
    /// preload).
    pub fn with_seq_offset(mut self, offset: u64) -> Self {
        self.seq = SeqTracker::with_offset(self.seq.num_queues(), offset);
        self
    }
}

impl ArrivalGenerator for UniformArrivals {
    fn next(&mut self, slot: u64) -> Option<Cell> {
        if self.rng.gen::<f64>() >= self.load {
            return None;
        }
        let q = LogicalQueueId::new(self.rng.gen_range(0..self.seq.num_queues()) as u32);
        Some(self.seq.mint(q, slot))
    }

    fn fill_arrivals(&mut self, base_slot: u64, out: &mut [Option<Cell>]) -> usize {
        // Batch override: the RNG state stays in registers for the whole
        // chunk instead of round-tripping through `self` once per slot. The
        // draw sequence is identical to per-slot `next` by construction.
        let mut rng = self.rng.clone();
        let num_queues = self.seq.num_queues();
        let load = self.load;
        let mut produced = 0;
        for (i, slot) in out.iter_mut().enumerate() {
            *slot = if rng.gen::<f64>() >= load {
                None
            } else {
                let q = LogicalQueueId::new(rng.gen_range(0..num_queues) as u32);
                produced += 1;
                Some(self.seq.mint(q, base_slot + i as u64))
            };
        }
        self.rng = rng;
        produced
    }

    fn num_queues(&self) -> usize {
        self.seq.num_queues()
    }

    fn name(&self) -> &'static str {
        "uniform"
    }
}

/// Deterministic full-load arrivals cycling round-robin over the queues.
#[derive(Debug)]
pub struct RoundRobinArrivals {
    seq: SeqTracker,
    next_queue: u32,
}

impl RoundRobinArrivals {
    /// Creates a round-robin generator at full load.
    pub fn new(num_queues: usize) -> Self {
        RoundRobinArrivals {
            seq: SeqTracker::new(num_queues),
            next_queue: 0,
        }
    }

    /// Starts every queue's sequence numbers at `offset`.
    pub fn with_seq_offset(mut self, offset: u64) -> Self {
        self.seq = SeqTracker::with_offset(self.seq.num_queues(), offset);
        self
    }
}

impl ArrivalGenerator for RoundRobinArrivals {
    fn next(&mut self, slot: u64) -> Option<Cell> {
        let q = LogicalQueueId::new(self.next_queue);
        self.next_queue = (self.next_queue + 1) % self.seq.num_queues() as u32;
        Some(self.seq.mint(q, slot))
    }

    fn num_queues(&self) -> usize {
        self.seq.num_queues()
    }

    fn name(&self) -> &'static str {
        "round-robin"
    }
}

/// On/off (bursty) arrivals: during an "on" period all cells go to one queue;
/// periods alternate with geometrically distributed lengths.
#[derive(Debug)]
pub struct BurstyArrivals {
    seq: SeqTracker,
    rng: StdRng,
    mean_burst: f64,
    mean_idle: f64,
    current_queue: Option<LogicalQueueId>,
    remaining: u64,
}

impl BurstyArrivals {
    /// Creates a bursty generator with mean burst length `mean_burst` cells
    /// and mean idle gap `mean_idle` slots.
    pub fn new(num_queues: usize, mean_burst: f64, mean_idle: f64, seed: u64) -> Self {
        BurstyArrivals {
            seq: SeqTracker::new(num_queues),
            rng: StdRng::seed_from_u64(seed),
            mean_burst: mean_burst.max(1.0),
            mean_idle: mean_idle.max(0.0),
            current_queue: None,
            remaining: 0,
        }
    }

    fn geometric(rng: &mut StdRng, mean: f64) -> u64 {
        if mean <= 0.0 {
            return 0;
        }
        let p = 1.0 / mean;
        let u: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
        (u.ln() / (1.0 - p).max(f64::MIN_POSITIVE).ln())
            .ceil()
            .max(1.0) as u64
    }
}

impl ArrivalGenerator for BurstyArrivals {
    fn next(&mut self, slot: u64) -> Option<Cell> {
        if self.remaining == 0 {
            if self.current_queue.is_some() {
                // Burst ended: start an idle period.
                self.current_queue = None;
                self.remaining = Self::geometric(&mut self.rng, self.mean_idle);
                if self.remaining == 0 {
                    // Zero-length idle: fall through to a new burst below.
                } else {
                    self.remaining -= 1;
                    return None;
                }
            }
            // Start a new burst.
            let q = self.rng.gen_range(0..self.seq.num_queues()) as u32;
            self.current_queue = Some(LogicalQueueId::new(q));
            self.remaining = Self::geometric(&mut self.rng, self.mean_burst);
        }
        match self.current_queue {
            Some(q) => {
                self.remaining -= 1;
                Some(self.seq.mint(q, slot))
            }
            None => {
                self.remaining = self.remaining.saturating_sub(1);
                None
            }
        }
    }

    fn num_queues(&self) -> usize {
        self.seq.num_queues()
    }

    fn name(&self) -> &'static str {
        "bursty"
    }
}

/// Hotspot arrivals: a fraction of the traffic targets a small set of hot
/// queues, the rest is uniform.
#[derive(Debug)]
pub struct HotspotArrivals {
    seq: SeqTracker,
    rng: StdRng,
    load: f64,
    hot_queues: usize,
    hot_fraction: f64,
}

impl HotspotArrivals {
    /// Creates a hotspot generator: `hot_fraction` of arrivals go to the first
    /// `hot_queues` queues.
    pub fn new(
        num_queues: usize,
        load: f64,
        hot_queues: usize,
        hot_fraction: f64,
        seed: u64,
    ) -> Self {
        HotspotArrivals {
            seq: SeqTracker::new(num_queues),
            rng: StdRng::seed_from_u64(seed),
            load: load.clamp(0.0, 1.0),
            hot_queues: hot_queues.clamp(1, num_queues),
            hot_fraction: hot_fraction.clamp(0.0, 1.0),
        }
    }
}

impl ArrivalGenerator for HotspotArrivals {
    fn next(&mut self, slot: u64) -> Option<Cell> {
        if self.rng.gen::<f64>() >= self.load {
            return None;
        }
        let q = if self.rng.gen::<f64>() < self.hot_fraction {
            self.rng.gen_range(0..self.hot_queues)
        } else {
            self.rng.gen_range(0..self.seq.num_queues())
        };
        Some(self.seq.mint(LogicalQueueId::new(q as u32), slot))
    }

    fn num_queues(&self) -> usize {
        self.seq.num_queues()
    }

    fn name(&self) -> &'static str {
        "hotspot"
    }
}

/// Incast arrivals: sustained many-to-one pressure. A fraction of the
/// traffic converges on one *target* queue (in a fabric: the egress port
/// every ingress port is hammering), the rest spreads uniformly over the
/// remaining queues.
///
/// With `num_sources` generators at load `ρ` and incast fraction `f`, the
/// target absorbs an aggregate `num_sources · ρ · f` of its service rate —
/// [`IncastArrivals::admissible_fraction`] picks the largest `f` that keeps
/// that aggregate just under 1 (a single egress line), which is the
/// interesting regime: maximal contention without unbounded backlog.
#[derive(Debug)]
pub struct IncastArrivals {
    seq: SeqTracker,
    rng: StdRng,
    load: f64,
    target: u32,
    incast_fraction: f64,
}

impl IncastArrivals {
    /// Creates an incast generator: `incast_fraction` of arrivals go to
    /// `target`, the rest uniformly to the other queues.
    pub fn new(num_queues: usize, load: f64, target: u32, incast_fraction: f64, seed: u64) -> Self {
        assert!(
            (target as usize) < num_queues,
            "incast target must be a valid queue"
        );
        IncastArrivals {
            seq: SeqTracker::new(num_queues),
            rng: StdRng::seed_from_u64(seed),
            load: load.clamp(0.0, 1.0),
            target,
            incast_fraction: incast_fraction.clamp(0.0, 1.0),
        }
    }

    /// The largest incast fraction that keeps the target's aggregate load
    /// from `num_sources` synchronized senders at `load` each just below one
    /// service unit (here: `0.95`), floored at the uniform share — an
    /// admissible but maximally contended many-to-one pattern.
    pub fn admissible_fraction(num_sources: usize, load: f64) -> f64 {
        let aggregate = num_sources as f64 * load.max(f64::MIN_POSITIVE);
        let uniform_share = 1.0 / num_sources.max(1) as f64;
        (0.95 / aggregate).clamp(uniform_share.min(1.0), 1.0)
    }
}

impl ArrivalGenerator for IncastArrivals {
    fn next(&mut self, slot: u64) -> Option<Cell> {
        if self.rng.gen::<f64>() >= self.load {
            return None;
        }
        let n = self.seq.num_queues();
        let q = if n == 1 || self.rng.gen::<f64>() < self.incast_fraction {
            self.target
        } else {
            // Uniform over the non-target queues: draw from n-1 and skip the
            // target by shifting the tail up one.
            let draw = self.rng.gen_range(0..n - 1) as u32;
            if draw >= self.target {
                draw + 1
            } else {
                draw
            }
        };
        Some(self.seq.mint(LogicalQueueId::new(q), slot))
    }

    fn num_queues(&self) -> usize {
        self.seq.num_queues()
    }

    fn name(&self) -> &'static str {
        "incast"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_respects_load() {
        let mut g = UniformArrivals::new(8, 0.5, 1);
        let produced = (0..10_000).filter(|t| g.next(*t).is_some()).count();
        assert!(produced > 4_000 && produced < 6_000, "{produced}");
        assert_eq!(g.num_queues(), 8);
        assert_eq!(g.name(), "uniform");
    }

    #[test]
    fn uniform_sequences_are_fifo_per_queue() {
        let mut g = UniformArrivals::new(4, 1.0, 2);
        let mut last = [None::<u64>; 4];
        for t in 0..1_000 {
            if let Some(c) = g.next(t) {
                let qi = c.queue().as_usize();
                if let Some(prev) = last[qi] {
                    assert_eq!(c.seq(), prev + 1);
                }
                last[qi] = Some(c.seq());
            }
        }
    }

    #[test]
    fn round_robin_cycles_queues_at_full_load() {
        let mut g = RoundRobinArrivals::new(3).with_seq_offset(10);
        let cells: Vec<Cell> = (0..6).map(|t| g.next(t).unwrap()).collect();
        let queues: Vec<u32> = cells.iter().map(|c| c.queue().index()).collect();
        assert_eq!(queues, vec![0, 1, 2, 0, 1, 2]);
        assert_eq!(cells[0].seq(), 10);
        assert_eq!(cells[3].seq(), 11);
        assert_eq!(g.name(), "round-robin");
    }

    #[test]
    fn bursty_produces_runs_to_single_queues() {
        let mut g = BurstyArrivals::new(8, 16.0, 4.0, 3);
        let mut run_lengths = Vec::new();
        let mut current: Option<(u32, u64)> = None;
        for t in 0..20_000 {
            match g.next(t) {
                Some(c) => match current {
                    Some((q, len)) if q == c.queue().index() => current = Some((q, len + 1)),
                    Some((_, len)) => {
                        run_lengths.push(len);
                        current = Some((c.queue().index(), 1));
                    }
                    None => current = Some((c.queue().index(), 1)),
                },
                None => {
                    if let Some((_, len)) = current.take() {
                        run_lengths.push(len);
                    }
                }
            }
        }
        let mean: f64 = run_lengths.iter().sum::<u64>() as f64 / run_lengths.len() as f64;
        assert!(mean > 4.0, "bursts should be long on average, got {mean}");
        assert_eq!(g.name(), "bursty");
        assert_eq!(g.num_queues(), 8);
    }

    #[test]
    fn incast_converges_on_the_target() {
        let mut g = IncastArrivals::new(16, 1.0, 5, 0.6, 9);
        let mut on_target = 0u64;
        let mut off_target = [0u64; 16];
        let mut total = 0u64;
        for t in 0..20_000 {
            if let Some(c) = g.next(t) {
                total += 1;
                if c.queue().index() == 5 {
                    on_target += 1;
                } else {
                    off_target[c.queue().as_usize()] += 1;
                }
            }
        }
        let frac = on_target as f64 / total as f64;
        assert!((0.55..0.65).contains(&frac), "target fraction {frac}");
        assert_eq!(off_target[5], 0);
        assert!(
            off_target.iter().filter(|&&c| c > 0).count() == 15,
            "the rest spreads over every other queue"
        );
        assert_eq!(g.name(), "incast");
        assert_eq!(g.num_queues(), 16);
    }

    #[test]
    fn admissible_incast_fraction_keeps_the_target_under_one() {
        // 16 sources at load 0.6: f = 0.95 / 9.6 ≈ 0.099.
        let f = IncastArrivals::admissible_fraction(16, 0.6);
        assert!(16.0 * 0.6 * f <= 0.95 + 1e-9);
        assert!(f >= 1.0 / 16.0, "never below the uniform share");
        // 2 sources at low load: capped at 1.0 (everything may converge).
        assert_eq!(IncastArrivals::admissible_fraction(2, 0.1), 1.0);
    }

    #[test]
    fn hotspot_concentrates_traffic() {
        let mut g = HotspotArrivals::new(16, 1.0, 2, 0.8, 4);
        let mut hot = 0u64;
        let mut total = 0u64;
        for t in 0..20_000 {
            if let Some(c) = g.next(t) {
                total += 1;
                if c.queue().index() < 2 {
                    hot += 1;
                }
            }
        }
        let frac = hot as f64 / total as f64;
        assert!(frac > 0.7, "hot fraction {frac}");
        assert_eq!(g.name(), "hotspot");
        assert_eq!(g.num_queues(), 16);
    }
}
