//! Closed-loop reliable sources: per-flow sequence numbers, an AIMD
//! congestion window, and an RTO with exponential backoff.
//!
//! Every other generator in this crate is *open-loop*: it emits cells on a
//! fixed stochastic schedule and never hears back from the network. A
//! [`ClosedLoopSource`] instead models one external port of a multi-stage
//! fabric running a reliable transport:
//!
//! * each destination port is a *flow* with its own sequence-number space;
//! * an **AIMD window** (additive increase per ack, multiplicative decrease
//!   per timeout epoch) bounds the number of unacknowledged cells;
//! * every in-flight cell carries a **retransmission timeout** (RTO) seeded
//!   from a smoothed-RTT estimate and doubled on every retry up to a cap;
//! * cells that exhaust their retry budget are *abandoned* (counted, never
//!   forgotten: a late ack resurrects them so conservation still closes).
//!
//! The source is entirely deterministic — no RNG, integer arithmetic only —
//! so a fabric driven by closed-loop sources replays bit-identically.
//!
//! The driver contract is slot-synchronous and mirrors a switch ingress:
//! each slot the driver (1) delivers any acks visible this slot via
//! [`ClosedLoopSource::on_ack`], (2) calls
//! [`ClosedLoopSource::expire_timers`], and (3) calls
//! [`ClosedLoopSource::poll`] for at most one cell to inject. Acks are
//! `(dest, seq)` pairs; duplicate acks are ignored.

use obs::Log2Histogram;
use std::collections::{BTreeMap, VecDeque};

/// Fixed-point scale for the congestion window (10 fractional bits), so the
/// additive-increase step `1/cwnd` per ack needs no floating point.
const CWND_SCALE: u64 = 1024;

/// Fixed-point scale for the smoothed RTT (3 fractional bits): the classic
/// `srtt += (rtt - srtt) / 8` EWMA, kept as `srtt * 8`.
const SRTT_SCALE: u64 = 8;

/// Which destinations a closed-loop source offers traffic to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DemandPattern {
    /// Sweep all other external ports round-robin — the closed-loop analogue
    /// of a uniform matrix.
    Sweep,
    /// Send everything at one `target` port. With every source in the fabric
    /// aimed at the same target this is the incast stress: timeouts fire in
    /// lock-step across sources and the retry storm is synchronized.
    Incast {
        /// External port index that all demand is aimed at.
        target: u32,
    },
}

impl DemandPattern {
    /// Stable human-readable label (`sweep` / `incast`).
    pub fn label(&self) -> &'static str {
        match self {
            DemandPattern::Sweep => "sweep",
            DemandPattern::Incast { .. } => "incast",
        }
    }
}

/// Tuning knobs for a [`ClosedLoopSource`].
///
/// All times are in slots. The defaults suit the workspace's small Clos
/// geometries (round-trip times of a few slots, fault windows of a few
/// thousand).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClosedLoopConfig {
    /// RTO for the first transmission of a cell while no RTT estimate
    /// exists, and the lower clamp of the adaptive RTO. Minimum 1.
    pub rto_initial: u64,
    /// Upper bound on any (backed-off or adaptive) RTO.
    pub rto_cap: u64,
    /// Retransmission attempts before a cell is abandoned (counted in
    /// `gave_up`, resurrectable by a late ack).
    pub max_retries: u32,
    /// Initial congestion window, in cells.
    pub cwnd_init: u64,
    /// Upper bound on the congestion window, in cells.
    pub cwnd_max: u64,
}

impl Default for ClosedLoopConfig {
    fn default() -> Self {
        ClosedLoopConfig {
            rto_initial: 32,
            rto_cap: 1024,
            max_retries: 32,
            cwnd_init: 2,
            cwnd_max: 32,
        }
    }
}

impl ClosedLoopConfig {
    /// Returns the config with every field clamped into its valid range
    /// (`rto_initial ≥ 1`, `rto_cap ≥ rto_initial`, `cwnd_init ≥ 1`,
    /// `cwnd_max ≥ cwnd_init`).
    pub fn normalized(self) -> Self {
        let rto_initial = self.rto_initial.max(1);
        let cwnd_init = self.cwnd_init.max(1);
        ClosedLoopConfig {
            rto_initial,
            rto_cap: self.rto_cap.max(rto_initial),
            max_retries: self.max_retries,
            cwnd_init,
            cwnd_max: self.cwnd_max.max(cwnd_init),
        }
    }
}

/// Book-keeping for one unacknowledged cell.
#[derive(Debug, Clone, Copy)]
struct Outstanding {
    /// Slot of the most recent (re)transmission.
    last_sent: u64,
    /// Slot of the *first* transmission — never re-stamped on a retry, so a
    /// retransmitted cell's transport-layer latency (first injection to ack)
    /// is measured over its whole recovery, not just the last copy.
    first_sent: u64,
    /// Current RTO; doubles on every retry, capped at `rto_cap`.
    rto: u64,
    /// Absolute slot at which the timer fires (`last_sent + rto`).
    deadline: u64,
    /// Retransmissions so far (0 for a fresh cell).
    retries: u32,
}

/// One external port's closed-loop reliable sender.
///
/// See the module docs above for the driver contract. Keyed state uses
/// `BTreeMap`/`BTreeSet` so iteration order — and therefore every emitted
/// cell — is deterministic.
#[derive(Debug, Clone)]
pub struct ClosedLoopSource {
    src: u32,
    ports: usize,
    pattern: DemandPattern,
    cfg: ClosedLoopConfig,
    /// Next destination in a [`DemandPattern::Sweep`] rotation.
    next_dest: u32,
    /// Next fresh sequence number per destination flow.
    next_seq: Vec<u64>,
    /// Congestion window, fixed-point with [`CWND_SCALE`].
    cwnd_fp: u64,
    /// Smoothed RTT, fixed-point with [`SRTT_SCALE`]; 0 until the first
    /// clean (retry-free) ack.
    srtt_fp: u64,
    /// Earliest slot at which another multiplicative decrease may trigger —
    /// one halving per RTT-scale epoch, not one per lost cell.
    next_decrease_ok: u64,
    /// Unacked cells with a live timer, keyed by `(dest, seq)`.
    in_flight: BTreeMap<(u32, u64), Outstanding>,
    /// Timed-out cells waiting for a retransmission slot.
    rq: VecDeque<(u32, u64, Outstanding)>,
    /// Cells that exhausted `max_retries`, mapped to their first-injection
    /// slot. A late ack removes the entry and decrements `gave_up`, so
    /// abandonment never double-counts a delivery.
    abandoned: BTreeMap<(u32, u64), u64>,
    injected: u64,
    retransmitted: u64,
    timeouts: u64,
    acked: u64,
    gave_up: u64,
    /// Transport-layer latency histogram (first injection to ack), armed by
    /// [`ClosedLoopSource::arm_latency_obs`]; `None` keeps the hot path free
    /// of histogram work.
    first_injection_hist: Option<Log2Histogram>,
}

impl ClosedLoopSource {
    /// Creates the sender for external port `src` of a fabric with `ports`
    /// external ports. The config is [normalized](ClosedLoopConfig::normalized).
    pub fn new(src: u32, ports: usize, pattern: DemandPattern, cfg: ClosedLoopConfig) -> Self {
        let cfg = cfg.normalized();
        ClosedLoopSource {
            src,
            ports,
            pattern,
            cfg,
            next_dest: 0,
            next_seq: vec![0; ports],
            cwnd_fp: cfg.cwnd_init * CWND_SCALE,
            srtt_fp: 0,
            next_decrease_ok: 0,
            in_flight: BTreeMap::new(),
            rq: VecDeque::new(),
            abandoned: BTreeMap::new(),
            injected: 0,
            retransmitted: 0,
            timeouts: 0,
            acked: 0,
            gave_up: 0,
            first_injection_hist: None,
        }
    }

    /// Arms the transport-layer latency histogram: every subsequent ack
    /// records `ack slot − first-injection slot`. Covers retransmitted and
    /// resurrected cells, which fabric-level (last-copy) latency
    /// under-counts. Off by default; arming changes no transport behaviour.
    pub fn arm_latency_obs(&mut self) {
        self.first_injection_hist = Some(Log2Histogram::new());
    }

    /// The armed transport-layer latency histogram, if any.
    pub fn first_injection_hist(&self) -> Option<&Log2Histogram> {
        self.first_injection_hist.as_ref()
    }

    fn record_latency(&mut self, first_sent: u64, slot: u64) {
        if let Some(hist) = self.first_injection_hist.as_mut() {
            hist.record(slot.saturating_sub(first_sent));
        }
    }

    /// Whether this source ever offers traffic (an incast source aimed at
    /// itself, or a fabric with fewer than two ports, never sends).
    fn sends(&self) -> bool {
        match self.pattern {
            DemandPattern::Sweep => self.ports >= 2,
            DemandPattern::Incast { target } => self.ports >= 2 && target != self.src,
        }
    }

    /// Congestion window in whole cells (≥ 1).
    pub fn cwnd(&self) -> u64 {
        (self.cwnd_fp / CWND_SCALE).max(1)
    }

    /// Smoothed RTT estimate in slots (0 until the first clean ack).
    pub fn srtt(&self) -> u64 {
        self.srtt_fp / SRTT_SCALE
    }

    fn grow_window(&mut self) {
        // Additive increase: +1/cwnd cells per ack, i.e. ~+1 cell per RTT.
        let next = self.cwnd_fp + CWND_SCALE * CWND_SCALE / self.cwnd_fp;
        self.cwnd_fp = next.min(self.cfg.cwnd_max * CWND_SCALE);
    }

    /// Processes an ack for `(dest, seq)` observed at `slot`. Duplicate acks
    /// are ignored; an ack for an abandoned cell resurrects it (the delivery
    /// counts, `gave_up` is decremented).
    pub fn on_ack(&mut self, dest: u32, seq: u64, slot: u64) {
        let key = (dest, seq);
        if let Some(out) = self.in_flight.remove(&key) {
            self.acked += 1;
            self.record_latency(out.first_sent, slot);
            if out.retries == 0 {
                // Karn's rule: only retry-free samples feed the RTT estimate.
                let rtt = slot.saturating_sub(out.last_sent).max(1);
                self.srtt_fp = if self.srtt_fp == 0 {
                    rtt * SRTT_SCALE
                } else {
                    self.srtt_fp - self.srtt_fp / SRTT_SCALE + rtt
                };
            }
            self.grow_window();
        } else if let Some(pos) = self.rq.iter().position(|&(d, s, _)| (d, s) == key) {
            // Acked while queued for retransmission: the original copy made
            // it after all. Drop the pending retry.
            if let Some((_, _, out)) = self.rq.remove(pos) {
                self.acked += 1;
                self.record_latency(out.first_sent, slot);
                self.grow_window();
            }
        } else if let Some(first_sent) = self.abandoned.remove(&key) {
            self.gave_up -= 1;
            self.acked += 1;
            self.record_latency(first_sent, slot);
        }
        // Otherwise: duplicate ack for an already-acked cell. Ignore.
    }

    /// Fires every timer with `deadline ≤ slot`: the cell moves to the
    /// retransmission queue (or to the abandoned set once `max_retries` is
    /// exhausted) and — at most once per RTT epoch — the window halves.
    pub fn expire_timers(&mut self, slot: u64) {
        let Self {
            in_flight,
            rq,
            abandoned,
            timeouts,
            gave_up,
            cfg,
            ..
        } = self;
        let mut fired = false;
        in_flight.retain(|&key, out| {
            if out.deadline > slot {
                return true;
            }
            *timeouts += 1;
            fired = true;
            if out.retries >= cfg.max_retries {
                abandoned.insert(key, out.first_sent);
                *gave_up += 1;
            } else {
                rq.push_back((key.0, key.1, *out));
            }
            false
        });
        if fired && slot >= self.next_decrease_ok {
            self.cwnd_fp = (self.cwnd_fp / 2).max(CWND_SCALE);
            self.next_decrease_ok = slot + self.srtt().max(self.cfg.rto_initial);
        }
    }

    /// Offers at most one cell for injection at `slot`: a pending
    /// retransmission first, else — if `allow_new` and the window has room —
    /// a fresh cell. Returns the `(dest, seq)` to inject, or `None`.
    ///
    /// Drivers pass `allow_new = false` during a tail/drain phase so the run
    /// winds down instead of generating forever.
    pub fn poll(&mut self, slot: u64, allow_new: bool) -> Option<(u32, u64)> {
        if let Some((dest, seq, mut out)) = self.rq.pop_front() {
            out.retries += 1;
            out.rto = (out.rto * 2).min(self.cfg.rto_cap);
            out.last_sent = slot;
            out.deadline = slot + out.rto;
            self.in_flight.insert((dest, seq), out);
            self.retransmitted += 1;
            return Some((dest, seq));
        }
        if !allow_new || !self.sends() {
            return None;
        }
        if (self.in_flight.len() + self.rq.len()) as u64 >= self.cwnd() {
            return None;
        }
        let dest = match self.pattern {
            DemandPattern::Sweep => {
                let mut d = self.next_dest;
                if d == self.src {
                    d = (d + 1) % self.ports as u32;
                }
                self.next_dest = (d + 1) % self.ports as u32;
                d
            }
            DemandPattern::Incast { target } => target,
        };
        let seq = self.next_seq[dest as usize];
        self.next_seq[dest as usize] += 1;
        let rto = if self.srtt_fp == 0 {
            self.cfg.rto_initial
        } else {
            (2 * self.srtt()).clamp(self.cfg.rto_initial, self.cfg.rto_cap)
        };
        self.in_flight.insert(
            (dest, seq),
            Outstanding {
                last_sent: slot,
                first_sent: slot,
                rto,
                deadline: slot + rto,
                retries: 0,
            },
        );
        self.injected += 1;
        Some((dest, seq))
    }

    /// The earliest future slot at which this source needs to act: now if a
    /// retransmission is queued, else the nearest timer deadline, else
    /// `None` (fully quiet). Lets a drain loop fast-forward idle gaps.
    pub fn next_action_slot(&self) -> Option<u64> {
        if !self.rq.is_empty() {
            return Some(0);
        }
        self.in_flight.values().map(|o| o.deadline).min()
    }

    /// True once nothing is in flight and nothing awaits retransmission.
    /// (Abandoned cells are quiet: their retry budget is spent.)
    pub fn is_quiet(&self) -> bool {
        self.in_flight.is_empty() && self.rq.is_empty()
    }

    /// External port this source sends from.
    pub fn src(&self) -> u32 {
        self.src
    }

    /// External port count of the fabric this source was built for.
    pub fn num_ports(&self) -> usize {
        self.ports
    }

    /// Fresh cells injected (first transmissions).
    pub fn injected(&self) -> u64 {
        self.injected
    }

    /// Retransmission copies sent.
    pub fn retransmitted(&self) -> u64 {
        self.retransmitted
    }

    /// Timer expiries fired (every retry and every abandonment starts here).
    pub fn timeouts(&self) -> u64 {
        self.timeouts
    }

    /// Unique cells acknowledged.
    pub fn acked(&self) -> u64 {
        self.acked
    }

    /// Cells currently abandoned (retry budget exhausted, no ack yet).
    pub fn gave_up(&self) -> u64 {
        self.gave_up
    }

    /// Cells with a live retransmission timer.
    pub fn in_flight_len(&self) -> usize {
        self.in_flight.len()
    }

    /// Cells queued for retransmission.
    pub fn rq_len(&self) -> usize {
        self.rq.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> ClosedLoopConfig {
        ClosedLoopConfig {
            rto_initial: 4,
            rto_cap: 64,
            max_retries: 3,
            cwnd_init: 2,
            cwnd_max: 8,
        }
    }

    #[test]
    fn config_normalization_clamps_degenerate_values() {
        let c = ClosedLoopConfig {
            rto_initial: 0,
            rto_cap: 0,
            max_retries: 0,
            cwnd_init: 0,
            cwnd_max: 0,
        }
        .normalized();
        assert_eq!(c.rto_initial, 1);
        assert!(c.rto_cap >= c.rto_initial);
        assert_eq!(c.cwnd_init, 1);
        assert!(c.cwnd_max >= c.cwnd_init);
    }

    #[test]
    fn sweep_rotates_destinations_and_skips_self() {
        let mut s = ClosedLoopSource::new(1, 4, DemandPattern::Sweep, cfg());
        let mut dests = Vec::new();
        for slot in 0..6 {
            if let Some((d, _)) = s.poll(slot, true) {
                dests.push(d);
                // Ack immediately so the window never blocks the sweep.
                s.on_ack(d, 0, slot + 1);
            }
        }
        assert!(!dests.contains(&1), "never sends to itself: {dests:?}");
        assert_eq!(&dests[..3], &[0, 2, 3]);
    }

    #[test]
    fn incast_targets_one_port_and_self_target_never_sends() {
        let mut s = ClosedLoopSource::new(0, 4, DemandPattern::Incast { target: 3 }, cfg());
        assert_eq!(s.poll(0, true), Some((3, 0)));
        assert_eq!(s.poll(1, true), Some((3, 1)));
        let mut own = ClosedLoopSource::new(3, 4, DemandPattern::Incast { target: 3 }, cfg());
        assert_eq!(own.poll(0, true), None);
        assert!(own.is_quiet());
    }

    #[test]
    fn window_blocks_fresh_cells_until_acked() {
        let mut s = ClosedLoopSource::new(0, 4, DemandPattern::Sweep, cfg());
        assert!(s.poll(0, true).is_some());
        assert!(s.poll(1, true).is_some());
        // cwnd_init = 2 ⇒ third fresh cell must wait.
        assert_eq!(s.poll(2, true), None);
        s.on_ack(1, 0, 2);
        assert!(s.poll(3, true).is_some());
    }

    #[test]
    fn aimd_grows_on_acks_and_halves_on_timeouts() {
        let mut s = ClosedLoopSource::new(0, 4, DemandPattern::Sweep, cfg());
        let start = s.cwnd();
        for slot in 0..40u64 {
            if let Some((d, q)) = s.poll(slot, true) {
                s.on_ack(d, q, slot + 1);
            }
        }
        assert!(s.cwnd() > start, "window must grow under clean acks");
        let grown = s.cwnd();
        // Now lose everything in flight once.
        let slot = 40;
        assert!(s.poll(slot, true).is_some());
        s.expire_timers(slot + 100);
        assert!(s.cwnd() <= grown / 2 + 1, "window must halve on a timeout");
        assert!(s.cwnd() >= 1);
    }

    #[test]
    fn rto_backs_off_exponentially_and_caps() {
        let mut s = ClosedLoopSource::new(0, 2, DemandPattern::Sweep, cfg());
        let (d, q) = s.poll(0, true).unwrap();
        let mut deadline_gap = Vec::new();
        let mut slot = 0;
        for _ in 0..6 {
            s.expire_timers(slot + 1000);
            slot += 1000;
            let got = s.poll(slot, false);
            if got.is_none() {
                break; // abandoned
            }
            assert_eq!(got, Some((d, q)));
            let out = s.in_flight.get(&(d, q)).unwrap();
            deadline_gap.push(out.deadline - slot);
        }
        // rto_initial=4 doubles: 8, 16, 32 then abandonment (max_retries=3).
        assert_eq!(deadline_gap, vec![8, 16, 32]);
        assert_eq!(s.gave_up(), 1);
        assert!(s.is_quiet());
    }

    #[test]
    fn abandoned_cells_resurrect_on_late_ack() {
        let mut s = ClosedLoopSource::new(0, 2, DemandPattern::Sweep, cfg());
        let (d, q) = s.poll(0, true).unwrap();
        let mut slot = 0;
        while !s.is_quiet() {
            s.expire_timers(slot + 1000);
            slot += 1000;
            let _ = s.poll(slot, false);
        }
        assert_eq!(s.gave_up(), 1);
        assert_eq!(s.acked(), 0);
        // The network delivers a stale copy after all.
        s.on_ack(d, q, slot + 1);
        assert_eq!(s.gave_up(), 0);
        assert_eq!(s.acked(), 1);
        // Conservation: injected = acked + in_flight + rq + gave_up.
        assert_eq!(
            s.injected(),
            s.acked() + s.in_flight_len() as u64 + s.rq_len() as u64 + s.gave_up()
        );
    }

    #[test]
    fn ack_while_queued_for_retransmit_cancels_the_retry() {
        let mut s = ClosedLoopSource::new(0, 2, DemandPattern::Sweep, cfg());
        let (d, q) = s.poll(0, true).unwrap();
        s.expire_timers(100);
        assert_eq!(s.rq_len(), 1);
        s.on_ack(d, q, 101);
        assert_eq!(s.rq_len(), 0);
        assert_eq!(s.acked(), 1);
        assert_eq!(s.retransmitted(), 0);
        assert!(s.is_quiet());
    }

    #[test]
    fn duplicate_acks_are_ignored() {
        let mut s = ClosedLoopSource::new(0, 2, DemandPattern::Sweep, cfg());
        let (d, q) = s.poll(0, true).unwrap();
        s.on_ack(d, q, 1);
        s.on_ack(d, q, 2);
        s.on_ack(d, q, 3);
        assert_eq!(s.acked(), 1);
    }

    #[test]
    fn karns_rule_skips_rtt_samples_from_retransmitted_cells() {
        let mut s = ClosedLoopSource::new(0, 2, DemandPattern::Sweep, cfg());
        let (d, q) = s.poll(0, true).unwrap();
        s.expire_timers(100);
        assert_eq!(s.poll(100, false), Some((d, q)));
        // Huge apparent RTT on a retransmitted cell: must not poison srtt.
        s.on_ack(d, q, 5_000);
        assert_eq!(s.srtt(), 0);
        // A clean cell seeds the estimator.
        let (d2, q2) = s.poll(6_000, true).unwrap();
        s.on_ack(d2, q2, 6_007);
        assert_eq!(s.srtt(), 7);
    }

    #[test]
    fn first_injection_latency_spans_retransmissions_and_resurrections() {
        let mut s = ClosedLoopSource::new(0, 2, DemandPattern::Sweep, cfg());
        s.arm_latency_obs();
        // Retransmitted cell: latency counts from the *first* copy.
        let (d, q) = s.poll(10, true).unwrap();
        s.expire_timers(100);
        assert_eq!(s.poll(100, false), Some((d, q)));
        s.on_ack(d, q, 110);
        let hist = s.first_injection_hist().unwrap();
        assert_eq!(hist.count(), 1);
        assert_eq!(hist.max(), 100, "110 − 10, not 110 − 100");
        // Clean cell: plain RTT.
        let (d2, q2) = s.poll(200, true).unwrap();
        s.on_ack(d2, q2, 205);
        assert_eq!(s.first_injection_hist().unwrap().min(), 5);
        // Abandoned-then-resurrected cell keeps its original injection slot.
        let mut a = ClosedLoopSource::new(0, 2, DemandPattern::Sweep, cfg());
        a.arm_latency_obs();
        let (d3, q3) = a.poll(0, true).unwrap();
        let mut slot = 0;
        while !a.is_quiet() {
            a.expire_timers(slot + 1000);
            slot += 1000;
            let _ = a.poll(slot, false);
        }
        assert_eq!(a.gave_up(), 1);
        a.on_ack(d3, q3, slot + 500);
        let hist = a.first_injection_hist().unwrap();
        assert_eq!(hist.count(), 1);
        assert_eq!(hist.max(), slot + 500);
    }

    #[test]
    fn unarmed_sources_behave_identically_to_armed_ones() {
        let run = |armed: bool| {
            let mut s = ClosedLoopSource::new(2, 8, DemandPattern::Sweep, cfg());
            if armed {
                s.arm_latency_obs();
            }
            let mut events = Vec::new();
            for slot in 0..2_000u64 {
                s.expire_timers(slot);
                if let Some((d, q)) = s.poll(slot, true) {
                    events.push((slot, d, q));
                    if !(d as u64 + q).is_multiple_of(7) {
                        s.on_ack(d, q, slot + 5);
                    }
                }
            }
            (events, s.injected(), s.retransmitted(), s.acked())
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn next_action_slot_tracks_nearest_deadline() {
        let mut s = ClosedLoopSource::new(0, 2, DemandPattern::Sweep, cfg());
        assert_eq!(s.next_action_slot(), None);
        let _ = s.poll(10, true).unwrap();
        assert_eq!(s.next_action_slot(), Some(14)); // rto_initial = 4
        s.expire_timers(14);
        assert_eq!(s.next_action_slot(), Some(0)); // retry pending: act now
    }

    #[test]
    fn source_is_deterministic_under_a_fixed_ack_schedule() {
        let run = || {
            let mut s = ClosedLoopSource::new(2, 8, DemandPattern::Sweep, cfg());
            let mut events = Vec::new();
            for slot in 0..2_000u64 {
                // Ack each cell 5 slots after sending; drop every 7th.
                s.expire_timers(slot);
                if let Some((d, q)) = s.poll(slot, true) {
                    events.push((slot, d, q));
                    if !(d as u64 + q).is_multiple_of(7) {
                        s.on_ack(d, q, slot + 5);
                    }
                }
            }
            (
                events,
                s.injected(),
                s.retransmitted(),
                s.acked(),
                s.gave_up(),
            )
        };
        assert_eq!(run(), run());
    }
}
