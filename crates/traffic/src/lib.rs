//! Workload generators for packet-buffer experiments.
//!
//! Two sides of a packet buffer are driven externally and this crate provides
//! generators for both:
//!
//! * **Arrivals** ([`ArrivalGenerator`]): cells coming from the transmission
//!   line, at most one per slot. Uniform, bursty (on/off), hotspot and
//!   deterministic round-robin patterns are provided, plus trace replay.
//! * **Requests** ([`RequestGenerator`]): the switch-fabric arbiter asking for
//!   one cell per slot. The most important pattern is
//!   [`AdversarialRoundRobin`], the worst case of the ECQF analysis (§3): the
//!   scheduler drains all queues in lock-step so that they all run dry at the
//!   same time, putting maximum pressure on the MMA.
//!
//! Request generators receive a `requestable` oracle so that they never ask
//! for a cell that is not in the buffer's head path — the system-model
//! assumption the paper (and any real switch fabric) operates under.
//!
//! # Example
//!
//! ```
//! use traffic::{AdversarialRoundRobin, RequestGenerator};
//! use pktbuf_model::LogicalQueueId;
//!
//! let mut gen = AdversarialRoundRobin::new(4);
//! // All queues have cells available: requests cycle 0, 1, 2, 3, 0, …
//! let all = |_q: LogicalQueueId| 1u64;
//! assert_eq!(gen.next(0, &all).unwrap().index(), 0);
//! assert_eq!(gen.next(1, &all).unwrap().index(), 1);
//! assert_eq!(gen.next(2, &all).unwrap().index(), 2);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod arrivals;
mod requests;
mod seq;
mod trace;

pub use arrivals::{
    ArrivalGenerator, BurstyArrivals, HotspotArrivals, RoundRobinArrivals, UniformArrivals,
};
pub use requests::{
    AdversarialRoundRobin, GreedyQueueDrain, HotspotRequests, RequestGenerator,
    UniformRandomRequests,
};
pub use seq::SeqTracker;
pub use trace::{RecordedTrace, TraceArrivals, TraceRequests};

/// Builds a preload set: `cells_per_queue` cells for each of `num_queues`
/// queues, with sequence numbers starting at zero. Use together with
/// [`SeqTracker::with_offset`] (or the generators' `with_seq_offset`
/// constructors) so that subsequent arrivals continue the numbering.
pub fn preload_cells(
    num_queues: usize,
    cells_per_queue: u64,
) -> Vec<(pktbuf_model::LogicalQueueId, Vec<pktbuf_model::Cell>)> {
    (0..num_queues as u32)
        .map(|q| {
            let queue = pktbuf_model::LogicalQueueId::new(q);
            let cells = (0..cells_per_queue)
                .map(|s| pktbuf_model::Cell::new(queue, s, 0))
                .collect();
            (queue, cells)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preload_cells_builds_per_queue_sequences() {
        let sets = preload_cells(3, 4);
        assert_eq!(sets.len(), 3);
        for (q, cells) in &sets {
            assert_eq!(cells.len(), 4);
            for (i, c) in cells.iter().enumerate() {
                assert_eq!(c.queue(), *q);
                assert_eq!(c.seq(), i as u64);
            }
        }
    }
}
