//! Workload generators for packet-buffer experiments.
//!
//! Two sides of a packet buffer are driven externally and this crate provides
//! generators for both:
//!
//! * **Arrivals** ([`ArrivalGenerator`]): cells coming from the transmission
//!   line, at most one per slot. Uniform, bursty (on/off), hotspot and
//!   deterministic round-robin patterns are provided, plus trace replay.
//! * **Closed-loop sources** ([`ClosedLoopSource`]): reliable senders with
//!   per-flow sequence numbers, an AIMD congestion window and an RTO with
//!   exponential backoff — the reactive workloads that let a fabric prove it
//!   *recovers* from injected faults, not just degrades. Their exact arrival
//!   matrices can be recorded and replayed via [`MatrixTrace`].
//! * **Requests** ([`RequestGenerator`]): the switch-fabric arbiter asking for
//!   one cell per slot. The most important pattern is
//!   [`AdversarialRoundRobin`], the worst case of the ECQF analysis (§3): the
//!   scheduler drains all queues in lock-step so that they all run dry at the
//!   same time, putting maximum pressure on the MMA.
//!
//! Request generators receive a `requestable` oracle so that they never ask
//! for a cell that is not in the buffer's head path — the system-model
//! assumption the paper (and any real switch fabric) operates under.
//!
//! # Example
//!
//! ```
//! use traffic::{AdversarialRoundRobin, RequestGenerator};
//! use pktbuf_model::LogicalQueueId;
//!
//! let mut gen = AdversarialRoundRobin::new(4);
//! // All queues have cells available: requests cycle 0, 1, 2, 3, 0, …
//! let all = |_q: LogicalQueueId| 1u64;
//! assert_eq!(gen.next(0, &all).unwrap().index(), 0);
//! assert_eq!(gen.next(1, &all).unwrap().index(), 1);
//! assert_eq!(gen.next(2, &all).unwrap().index(), 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod arrivals;
mod closedloop;
mod requests;
mod seq;
mod trace;

pub use arrivals::{
    ArrivalGenerator, BurstyArrivals, HotspotArrivals, IncastArrivals, RoundRobinArrivals,
    UniformArrivals,
};
pub use closedloop::{ClosedLoopConfig, ClosedLoopSource, DemandPattern};
pub use requests::{
    AdversarialRoundRobin, GreedyQueueDrain, HotspotRequests, RequestGenerator,
    UniformRandomRequests,
};
pub use seq::SeqTracker;
pub use trace::{MatrixTrace, MatrixTraceArrivals, RecordedTrace, TraceArrivals, TraceRequests};

/// Derives the RNG seed for one stochastic stream of a workload from the
/// workload's base seed.
///
/// Every stochastic generator in this crate takes an explicit seed — there is
/// no hidden global state (`thread_rng`-style) anywhere — so a workload that
/// drives several independent streams (arrivals and requests, say) needs a
/// convention for deriving per-stream seeds from one base value. This is that
/// convention: stream `k` uses `base + k`. The workspace RNG seeds its
/// SplitMix64-style state through `SeedableRng::seed_from_u64`, for which
/// adjacent seeds produce statistically independent streams.
///
/// Arrival generators conventionally use stream 0 and request generators
/// stream 1, which is also what `sim`'s scenario layer does.
///
/// Note the corollary: *adjacent* base seeds overlap across roles
/// (`stream_seed(1, 1) == stream_seed(2, 0)`), so a multi-seed sweep that
/// wants fully independent replications should space its base seeds by more
/// than the number of streams in use — e.g. `[1, 101, 201]` rather than
/// `[1, 2, 3]`.
pub fn stream_seed(base: u64, stream: u64) -> u64 {
    base.wrapping_add(stream)
}

/// Derives the RNG seed for stream `stream` of *plane* `plane` — two-level
/// [`stream_seed`] for systems with whole groups of independent streams.
///
/// A multi-stage fabric has one stream per external port of every ingress
/// switch: flat `stream_seed(base, k)` indexing would make "switch 0,
/// port 1" collide with "switch 1, port 0" whenever the caller also sweeps
/// the geometry. Planes space their stream blocks `2³²` apart, so any
/// realistic per-plane stream count stays collision-free while plane 0
/// stream `k` remains exactly `stream_seed(base, k)` (existing single-plane
/// workloads are unchanged).
pub fn plane_seed(base: u64, plane: u64, stream: u64) -> u64 {
    base.wrapping_add(plane.wrapping_shl(32))
        .wrapping_add(stream)
}

/// Builds a preload set: `cells_per_queue` cells for each of `num_queues`
/// queues, with sequence numbers starting at zero. Use together with
/// [`SeqTracker::with_offset`] (or the generators' `with_seq_offset`
/// constructors) so that subsequent arrivals continue the numbering.
pub fn preload_cells(
    num_queues: usize,
    cells_per_queue: u64,
) -> Vec<(pktbuf_model::LogicalQueueId, Vec<pktbuf_model::Cell>)> {
    (0..num_queues as u32)
        .map(|q| {
            let queue = pktbuf_model::LogicalQueueId::new(q);
            let cells = (0..cells_per_queue)
                .map(|s| pktbuf_model::Cell::new(queue, s, 0))
                .collect();
            (queue, cells)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preload_cells_builds_per_queue_sequences() {
        let sets = preload_cells(3, 4);
        assert_eq!(sets.len(), 3);
        for (q, cells) in &sets {
            assert_eq!(cells.len(), 4);
            for (i, c) in cells.iter().enumerate() {
                assert_eq!(c.queue(), *q);
                assert_eq!(c.seq(), i as u64);
            }
        }
    }

    #[test]
    fn stream_seeds_are_distinct_per_stream() {
        assert_eq!(stream_seed(7, 0), 7);
        assert_eq!(stream_seed(7, 1), 8);
        assert_ne!(stream_seed(7, 0), stream_seed(7, 1));
        // Wrapping, not panicking, at the top of the range.
        let _ = stream_seed(u64::MAX, 2);
    }

    #[test]
    fn plane_seeds_nest_stream_seeds_without_collisions() {
        // Plane 0 is plain stream seeding.
        assert_eq!(plane_seed(7, 0, 3), stream_seed(7, 3));
        // Distinct planes never collide for realistic stream counts.
        assert_ne!(plane_seed(7, 0, 1), plane_seed(7, 1, 0));
        assert_eq!(plane_seed(7, 1, 0) - plane_seed(7, 0, 0), 1 << 32);
        let _ = plane_seed(u64::MAX, u64::MAX, u64::MAX);
    }

    /// Every stochastic arrival generator must be bit-identical under the same
    /// seed and (overwhelmingly likely) different under different seeds.
    #[test]
    fn arrival_generators_are_deterministic_in_their_seed() {
        type Maker = fn(u64) -> Box<dyn ArrivalGenerator>;
        let makers: [(&str, Maker); 4] = [
            ("uniform", |s| Box::new(UniformArrivals::new(16, 0.7, s))),
            ("bursty", |s| {
                Box::new(BurstyArrivals::new(16, 24.0, 6.0, s))
            }),
            ("hotspot", |s| {
                Box::new(HotspotArrivals::new(16, 0.8, 2, 0.8, s))
            }),
            ("incast", |s| {
                Box::new(IncastArrivals::new(16, 0.8, 0, 0.5, s))
            }),
        ];
        for (name, make) in makers {
            let stream = |seed: u64| -> Vec<Option<(u32, u64)>> {
                let mut g = make(seed);
                (0..5_000)
                    .map(|t| g.next(t).map(|c| (c.queue().index(), c.seq())))
                    .collect()
            };
            assert_eq!(stream(42), stream(42), "{name}: same seed must replay");
            assert_ne!(stream(42), stream(43), "{name}: seeds must matter");
        }
    }

    /// The batch arrival API must replay the per-slot stream exactly — for
    /// the default `fill_arrivals` and for the RNG-batching override of
    /// `UniformArrivals` alike — regardless of chunk size or phase.
    #[test]
    fn fill_arrivals_matches_per_slot_stream() {
        type Maker = fn(u64) -> Box<dyn ArrivalGenerator>;
        let makers: [(&str, Maker); 5] = [
            ("uniform", |s| Box::new(UniformArrivals::new(16, 0.7, s))),
            ("bursty", |s| {
                Box::new(BurstyArrivals::new(16, 24.0, 6.0, s))
            }),
            ("hotspot", |s| {
                Box::new(HotspotArrivals::new(16, 0.8, 2, 0.8, s))
            }),
            ("incast", |s| {
                Box::new(IncastArrivals::new(16, 0.8, 0, 0.5, s))
            }),
            ("round-robin", |_| Box::new(RoundRobinArrivals::new(16))),
        ];
        for (name, make) in makers {
            for chunk in [1usize, 7, 97, 256] {
                let mut per_slot = make(42);
                let mut batched = make(42);
                let mut ring = vec![None; chunk];
                let mut base = 0u64;
                while base < 1_000 {
                    let produced = batched.fill_arrivals(base, &mut ring);
                    let mut seen = 0;
                    for (i, got) in ring.iter_mut().enumerate() {
                        let want = per_slot.next(base + i as u64);
                        seen += usize::from(got.is_some());
                        assert_eq!(
                            got.take(),
                            want,
                            "{name}: chunk {chunk}, slot {}",
                            base + i as u64
                        );
                    }
                    assert_eq!(produced, seen, "{name}: produced count");
                    base += chunk as u64;
                }
            }
        }
    }

    /// Same for the stochastic request generators (driven by a fully
    /// available oracle so the RNG is the only source of variation).
    #[test]
    fn request_generators_are_deterministic_in_their_seed() {
        type Maker = fn(u64) -> Box<dyn RequestGenerator>;
        let makers: [(&str, Maker); 2] = [
            ("uniform-random", |s| {
                Box::new(UniformRandomRequests::new(16, 0.7, s))
            }),
            ("hotspot", |s| Box::new(HotspotRequests::new(16, 2, 0.8, s))),
        ];
        let all = |_q: pktbuf_model::LogicalQueueId| 1u64;
        for (name, make) in makers {
            let stream = |seed: u64| -> Vec<Option<u32>> {
                let mut g = make(seed);
                (0..5_000)
                    .map(|t| g.next(t, &all).map(|q| q.index()))
                    .collect()
            };
            assert_eq!(stream(42), stream(42), "{name}: same seed must replay");
            assert_ne!(stream(42), stream(43), "{name}: seeds must matter");
        }
    }
}
