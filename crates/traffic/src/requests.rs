//! Arbiter request generators (switch-fabric side).

use pktbuf_model::LogicalQueueId;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A source of arbiter requests, at most one per slot.
///
/// `requestable` reports how many more cells of a queue the buffer can still
/// promise to the arbiter; generators must not request a queue whose count is
/// zero (the paper's system model: the scheduler only asks for cells that are
/// in the buffer).
pub trait RequestGenerator {
    /// Returns the queue requested at `slot`, if any.
    fn next(
        &mut self,
        slot: u64,
        requestable: &dyn Fn(LogicalQueueId) -> u64,
    ) -> Option<LogicalQueueId>;

    /// Monomorphizable variant of [`RequestGenerator::next`]: the oracle is a
    /// generic `Fn` instead of `&dyn Fn`, so when both the generator and the
    /// oracle are concrete (the chunked engine's fused slot loop) the whole
    /// probe sequence inlines down to direct array reads — no per-probe
    /// virtual dispatch.
    ///
    /// The default forwards to [`RequestGenerator::next`]; the hot generators
    /// in this crate implement the real logic here and make `next` the
    /// forwarding direction, so the two entry points cannot drift apart.
    fn next_inline<F>(&mut self, slot: u64, requestable: &F) -> Option<LogicalQueueId>
    where
        F: Fn(LogicalQueueId) -> u64 + ?Sized,
        Self: Sized,
    {
        self.next(slot, &|q| requestable(q))
    }

    /// Whether a call that returns `None` because *no queue has requestable
    /// cells* leaves the generator bit-identical (no RNG draw, no cursor
    /// move). The chunked engine may then skip such calls entirely during an
    /// idle fast-forward without changing any subsequent request. Stochastic
    /// generators that consume randomness on every call must return `false`
    /// (the default).
    fn idle_skippable(&self) -> bool {
        false
    }

    /// Generator name for reports.
    fn name(&self) -> &'static str;
}

/// The ECQF worst case (§3): drain all queues in strict round-robin order so
/// that every queue runs dry at roughly the same time.
#[derive(Debug, Clone)]
pub struct AdversarialRoundRobin {
    num_queues: usize,
    next: u32,
}

impl AdversarialRoundRobin {
    /// Creates the generator over `num_queues` queues.
    pub fn new(num_queues: usize) -> Self {
        AdversarialRoundRobin {
            num_queues,
            next: 0,
        }
    }
}

impl RequestGenerator for AdversarialRoundRobin {
    fn next(
        &mut self,
        slot: u64,
        requestable: &dyn Fn(LogicalQueueId) -> u64,
    ) -> Option<LogicalQueueId> {
        self.next_inline(slot, requestable)
    }

    fn next_inline<F>(&mut self, _slot: u64, requestable: &F) -> Option<LogicalQueueId>
    where
        F: Fn(LogicalQueueId) -> u64 + ?Sized,
    {
        // Try each queue once, starting from the round-robin pointer, and
        // request the first one that still has cells to give. The cursor
        // wraps by comparison — this runs once per slot and a division by
        // the (runtime) queue count would dominate the generator.
        let mut qi = self.next as usize;
        for _ in 0..self.num_queues {
            let q = LogicalQueueId::new(qi as u32);
            qi += 1;
            if qi == self.num_queues {
                qi = 0;
            }
            if requestable(q) > 0 {
                self.next = qi as u32;
                return Some(q);
            }
        }
        None
    }

    fn idle_skippable(&self) -> bool {
        // A fruitless scan leaves the cursor untouched and draws no RNG.
        true
    }

    fn name(&self) -> &'static str {
        "adversarial-round-robin"
    }
}

/// Requests a uniformly random queue among those that have cells available.
#[derive(Debug)]
pub struct UniformRandomRequests {
    num_queues: usize,
    load: f64,
    rng: StdRng,
}

impl UniformRandomRequests {
    /// Creates the generator with the given request load (0.0–1.0).
    pub fn new(num_queues: usize, load: f64, seed: u64) -> Self {
        UniformRandomRequests {
            num_queues,
            load: load.clamp(0.0, 1.0),
            rng: StdRng::seed_from_u64(seed),
        }
    }
}

impl RequestGenerator for UniformRandomRequests {
    fn next(
        &mut self,
        slot: u64,
        requestable: &dyn Fn(LogicalQueueId) -> u64,
    ) -> Option<LogicalQueueId> {
        self.next_inline(slot, requestable)
    }

    fn next_inline<F>(&mut self, _slot: u64, requestable: &F) -> Option<LogicalQueueId>
    where
        F: Fn(LogicalQueueId) -> u64 + ?Sized,
    {
        if self.rng.gen::<f64>() >= self.load {
            return None;
        }
        // Sample a starting point and walk forward to the first queue with
        // available cells — unbiased enough for workload purposes and O(Q)
        // worst case.
        let mut qi = self.rng.gen_range(0..self.num_queues);
        for _ in 0..self.num_queues {
            let q = LogicalQueueId::new(qi as u32);
            qi += 1;
            if qi == self.num_queues {
                qi = 0;
            }
            if requestable(q) > 0 {
                return Some(q);
            }
        }
        None
    }

    fn name(&self) -> &'static str {
        "uniform-random"
    }
}

/// Drains one queue completely before moving to the next — the opposite
/// extreme of the round-robin worst case, exercising long same-queue runs
/// (and hence consecutive accesses to the banks of a single group in CFDS).
#[derive(Debug, Clone)]
pub struct GreedyQueueDrain {
    num_queues: usize,
    current: u32,
}

impl GreedyQueueDrain {
    /// Creates the generator over `num_queues` queues.
    pub fn new(num_queues: usize) -> Self {
        GreedyQueueDrain {
            num_queues,
            current: 0,
        }
    }
}

impl RequestGenerator for GreedyQueueDrain {
    fn next(
        &mut self,
        slot: u64,
        requestable: &dyn Fn(LogicalQueueId) -> u64,
    ) -> Option<LogicalQueueId> {
        self.next_inline(slot, requestable)
    }

    fn next_inline<F>(&mut self, _slot: u64, requestable: &F) -> Option<LogicalQueueId>
    where
        F: Fn(LogicalQueueId) -> u64 + ?Sized,
    {
        let mut qi = self.current as usize;
        for _ in 0..self.num_queues {
            let q = LogicalQueueId::new(qi as u32);
            qi += 1;
            if qi == self.num_queues {
                qi = 0;
            }
            if requestable(q) > 0 {
                self.current = q.index();
                return Some(q);
            }
        }
        None
    }

    fn idle_skippable(&self) -> bool {
        // A fruitless scan leaves the cursor untouched and draws no RNG.
        true
    }

    fn name(&self) -> &'static str {
        "greedy-queue-drain"
    }
}

/// Requests concentrate on a few hot queues with some probability, otherwise
/// behave uniformly.
#[derive(Debug)]
pub struct HotspotRequests {
    num_queues: usize,
    hot_queues: usize,
    hot_fraction: f64,
    rng: StdRng,
}

impl HotspotRequests {
    /// Creates the generator: `hot_fraction` of requests target the first
    /// `hot_queues` queues.
    pub fn new(num_queues: usize, hot_queues: usize, hot_fraction: f64, seed: u64) -> Self {
        HotspotRequests {
            num_queues,
            hot_queues: hot_queues.clamp(1, num_queues),
            hot_fraction: hot_fraction.clamp(0.0, 1.0),
            rng: StdRng::seed_from_u64(seed),
        }
    }
}

impl RequestGenerator for HotspotRequests {
    fn next(
        &mut self,
        slot: u64,
        requestable: &dyn Fn(LogicalQueueId) -> u64,
    ) -> Option<LogicalQueueId> {
        self.next_inline(slot, requestable)
    }

    fn next_inline<F>(&mut self, _slot: u64, requestable: &F) -> Option<LogicalQueueId>
    where
        F: Fn(LogicalQueueId) -> u64 + ?Sized,
    {
        let (start, span) = if self.rng.gen::<f64>() < self.hot_fraction {
            (self.rng.gen_range(0..self.hot_queues), self.hot_queues)
        } else {
            (self.rng.gen_range(0..self.num_queues), self.num_queues)
        };
        let span = span.max(1);
        let mut qi = start % span;
        for _ in 0..self.num_queues {
            let q = LogicalQueueId::new(qi as u32);
            qi += 1;
            if qi == span {
                qi = 0;
            }
            if requestable(q) > 0 {
                return Some(q);
            }
        }
        None
    }

    fn name(&self) -> &'static str {
        "hotspot"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q(i: u32) -> LogicalQueueId {
        LogicalQueueId::new(i)
    }

    #[test]
    fn adversarial_round_robin_cycles() {
        let mut g = AdversarialRoundRobin::new(3);
        let all = |_q: LogicalQueueId| 5u64;
        let order: Vec<u32> = (0..6).map(|t| g.next(t, &all).unwrap().index()).collect();
        assert_eq!(order, vec![0, 1, 2, 0, 1, 2]);
        assert_eq!(g.name(), "adversarial-round-robin");
    }

    #[test]
    fn adversarial_skips_empty_queues() {
        let mut g = AdversarialRoundRobin::new(3);
        let only_two = |qq: LogicalQueueId| if qq.index() == 2 { 3 } else { 0 };
        assert_eq!(g.next(0, &only_two), Some(q(2)));
        assert_eq!(g.next(1, &only_two), Some(q(2)));
        let none = |_qq: LogicalQueueId| 0u64;
        assert_eq!(g.next(2, &none), None);
    }

    #[test]
    fn greedy_drain_sticks_to_a_queue() {
        let mut g = GreedyQueueDrain::new(4);
        let mut remaining = [3u64, 2, 0, 1];
        for _ in 0..6 {
            let counts = remaining;
            let pick = g
                .next(0, &|qq: LogicalQueueId| counts[qq.as_usize()])
                .unwrap();
            remaining[pick.as_usize()] -= 1;
        }
        assert_eq!(remaining, [0, 0, 0, 0]);
        assert_eq!(g.name(), "greedy-queue-drain");
    }

    #[test]
    fn uniform_random_only_requests_available_queues() {
        let mut g = UniformRandomRequests::new(8, 1.0, 7);
        let avail = |qq: LogicalQueueId| if qq.index().is_multiple_of(2) { 1 } else { 0 };
        for t in 0..200 {
            if let Some(picked) = g.next(t, &avail) {
                assert_eq!(picked.index() % 2, 0);
            }
        }
        assert_eq!(g.name(), "uniform-random");
    }

    #[test]
    fn uniform_random_respects_load() {
        let mut g = UniformRandomRequests::new(4, 0.25, 9);
        let all = |_qq: LogicalQueueId| 1u64;
        let issued = (0..10_000).filter(|t| g.next(*t, &all).is_some()).count();
        assert!(issued > 1_800 && issued < 3_200, "{issued}");
    }

    #[test]
    fn hotspot_requests_prefer_hot_queues() {
        let mut g = HotspotRequests::new(16, 2, 0.9, 11);
        let all = |_qq: LogicalQueueId| 1u64;
        let mut hot = 0;
        let mut total = 0;
        for t in 0..10_000 {
            if let Some(picked) = g.next(t, &all) {
                total += 1;
                if picked.index() < 2 {
                    hot += 1;
                }
            }
        }
        assert!(hot as f64 / total as f64 > 0.8);
        assert_eq!(g.name(), "hotspot");
    }
}
