//! The head-MMA policy interface.

use crate::counters::OccupancyCounters;
use crate::lookahead::LookaheadRegister;
use pktbuf_model::LogicalQueueId;
use serde::{Deserialize, Serialize};

/// A head Memory Management Algorithm: every granularity period it selects the
/// queue whose SRAM contents should be replenished from DRAM.
pub trait HeadMma {
    /// Selects the queue to replenish, given the current occupancy counters
    /// and the lookahead contents. Returns `None` when no queue needs (or can
    /// use) a replenishment.
    fn select(
        &mut self,
        counters: &OccupancyCounters,
        lookahead: &LookaheadRegister,
    ) -> Option<LogicalQueueId>;

    /// Granularity (cells per replenishment) this policy was configured with.
    fn granularity(&self) -> usize;

    /// Human-readable policy name (for reports and ablations).
    fn name(&self) -> &'static str;

    /// Notifies the policy that `queue`'s counter or pending-request set just
    /// changed. [`crate::HeadMmaSubsystem`] calls this after every mutation so
    /// that incremental policies (ECQF's critical-position tree) can update
    /// their state; the default is a no-op and stateless policies may ignore
    /// it.
    fn note_queue_changed(
        &mut self,
        queue: LogicalQueueId,
        counters: &OccupancyCounters,
        lookahead: &LookaheadRegister,
    ) {
        let _ = (queue, counters, lookahead);
    }
}

// A boxed policy is itself a policy, so [`crate::HeadMmaSubsystem`] can stay
// generic over the policy type (monomorphized hot paths) while the
// enum-driven constructor keeps handing out type-erased boxes.
impl HeadMma for Box<dyn HeadMma + Send> {
    fn select(
        &mut self,
        counters: &OccupancyCounters,
        lookahead: &LookaheadRegister,
    ) -> Option<LogicalQueueId> {
        (**self).select(counters, lookahead)
    }

    fn granularity(&self) -> usize {
        (**self).granularity()
    }

    fn name(&self) -> &'static str {
        (**self).name()
    }

    fn note_queue_changed(
        &mut self,
        queue: LogicalQueueId,
        counters: &OccupancyCounters,
        lookahead: &LookaheadRegister,
    ) {
        (**self).note_queue_changed(queue, counters, lookahead);
    }
}

/// Enumerates the available head-MMA policies (for configuration files and
/// ablation benchmarks).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum HeadMmaPolicy {
    /// Earliest Critical Queue First (minimum SRAM, maximum lookahead).
    Ecqf,
    /// Most Deficit Queue First (any lookahead, larger SRAM).
    Mdqf,
}

impl HeadMmaPolicy {
    /// All policies.
    pub fn all() -> [HeadMmaPolicy; 2] {
        [HeadMmaPolicy::Ecqf, HeadMmaPolicy::Mdqf]
    }

    /// Instantiates the policy with the given granularity.
    pub fn instantiate(self, granularity: usize) -> Box<dyn HeadMma + Send> {
        match self {
            HeadMmaPolicy::Ecqf => Box::new(crate::EcqfMma::new(granularity)),
            HeadMmaPolicy::Mdqf => Box::new(crate::MdqfMma::new(granularity)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn policies_instantiate_with_granularity() {
        for p in HeadMmaPolicy::all() {
            let mma = p.instantiate(8);
            assert_eq!(mma.granularity(), 8);
            assert!(!mma.name().is_empty());
        }
    }
}
