//! Memory Management Algorithms (MMAs) for hybrid SRAM/DRAM packet buffers.
//!
//! This crate implements the MMA subsystem of §3 of the paper (shared by the
//! RADS baseline and by CFDS, which merely changes the granularity it works
//! at):
//!
//! * [`LookaheadRegister`] — the shift register holding the next `L` arbiter
//!   requests, which lets the head MMA anticipate which queue will become
//!   *critical* first.
//! * [`OccupancyCounters`] — the per-queue virtual occupancy counters:
//!   incremented by the transfer granularity when a replenishment is ordered,
//!   decremented when a request leaves the lookahead.
//! * [`EcqfMma`] — Earliest Critical Queue First, the head MMA that minimises
//!   SRAM size (requires the full lookahead `Q·(B−1)+1`).
//! * [`MdqfMma`] — Most Deficit Queue First, which works with any lookahead
//!   (including none) at the price of a larger SRAM.
//! * [`ThresholdTailMma`] — the simple tail MMA: write back any queue whose
//!   tail-SRAM occupancy reached the granularity.
//! * [`sizing`] — the RADS dimensioning formulas used by the evaluation
//!   (minimum lookahead, SRAM size as a function of the lookahead).
//!
//! # Example
//!
//! ```
//! use mma::{EcqfMma, HeadMma, LookaheadRegister, OccupancyCounters};
//! use pktbuf_model::LogicalQueueId;
//!
//! // Q = 4 queues, granularity B = 3, lookahead of 6 slots (the example of
//! // Figure 3 in the paper).
//! let mut lookahead = LookaheadRegister::new(6);
//! let mut counters = OccupancyCounters::new(4);
//! // SRAM occupancies: Q1 = 1, Q2 = 3, Q3 = 1, Q4 = 1.
//! for (q, occ) in [(0, 1), (1, 3), (2, 1), (3, 1)] {
//!     counters.add(LogicalQueueId::new(q), occ);
//! }
//! // Lookahead (head → tail): 1 1 1 3 3 6 → queue indices 0,0,0,2,2,(empty).
//! for q in [0u32, 0, 0, 2, 2] {
//!     lookahead.push(Some(LogicalQueueId::new(q)));
//! }
//! lookahead.push(None);
//! let mut ecqf = EcqfMma::new(3);
//! let decision = ecqf.select(&counters, &lookahead).expect("a critical queue");
//! // Queue 1 of the paper (index 0 here) is the earliest critical queue.
//! assert_eq!(decision.index(), 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod counters;
mod ecqf;
mod lookahead;
mod mdqf;
pub mod sizing;
mod subsystem;
mod tail;
mod traits;

pub use counters::OccupancyCounters;
pub use ecqf::EcqfMma;
pub use lookahead::LookaheadRegister;
pub use mdqf::MdqfMma;
pub use subsystem::{HeadMmaSubsystem, MmaEvent};
pub use tail::{TailMma, ThresholdTailMma};
pub use traits::{HeadMma, HeadMmaPolicy};
