//! RADS dimensioning formulas (§3 and reference \[13\] of the paper).
//!
//! The exact closed form of `rads_sram_size(L, Q, B)` is given in the Iyer,
//! Kompella, McKeown technical report that the paper references; the paper
//! itself only quotes its endpoints. We reconstruct the curve from those
//! endpoints and the known asymptotics:
//!
//! * at the ECQF maximum lookahead `L_max = Q·(B−1)+1` the SRAM needs
//!   `Q·(B−1)` cells (plus the in-flight batch);
//! * as the lookahead shrinks towards zero the requirement grows towards
//!   `Q·B·(ln Q)`-class sizes (the MDQF bound);
//! * in between the requirement decreases logarithmically in the lookahead.
//!
//! The interpolation `Q·(B−1) + B + Q·B·ln(L_max/L)` reproduces both endpoints
//! (6.2 MB → 1.0 MB at OC-3072, 300 kB → 64 kB at OC-768 within the fidelity
//! the paper quotes) and the shape of Figure 8's x-axis.

use pktbuf_model::CELL_BYTES;

/// ECQF minimum lookahead `Q·(B−1)+1` in slots.
pub fn min_lookahead(num_queues: usize, granularity: usize) -> usize {
    num_queues * (granularity.saturating_sub(1)) + 1
}

/// SRAM size (cells) needed by ECQF at the full lookahead:
/// `Q·(B−1)` steady-state cells plus one in-flight batch of `B` cells.
pub fn ecqf_min_sram_cells(num_queues: usize, granularity: usize) -> usize {
    num_queues * (granularity.saturating_sub(1)) + granularity
}

/// Head-SRAM size (cells) required to guarantee zero misses with a lookahead
/// of `lookahead` slots, `num_queues` queues and granularity `granularity`
/// (the paper's `rads_sram_size(L, Q, B)`).
///
/// The lookahead is clamped to `[1, Q·(B−1)+1]`; larger lookaheads do not
/// reduce the SRAM any further.
pub fn rads_sram_size_cells(lookahead: usize, num_queues: usize, granularity: usize) -> usize {
    if num_queues == 0 || granularity == 0 {
        return 0;
    }
    let l_max = min_lookahead(num_queues, granularity);
    let l = lookahead.clamp(1, l_max);
    let base = ecqf_min_sram_cells(num_queues, granularity);
    let extra = (num_queues as f64) * (granularity as f64) * ((l_max as f64) / (l as f64)).ln();
    base + extra.ceil() as usize
}

/// Same as [`rads_sram_size_cells`] but in bytes (64-byte cells).
pub fn rads_sram_size_bytes(lookahead: usize, num_queues: usize, granularity: usize) -> usize {
    rads_sram_size_cells(lookahead, num_queues, granularity) * CELL_BYTES
}

/// Scheduler-visible delay (in slots) introduced by a RADS lookahead.
pub fn rads_delay_slots(lookahead: usize) -> usize {
    lookahead
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn min_lookahead_formula() {
        assert_eq!(min_lookahead(4, 3), 9);
        assert_eq!(min_lookahead(512, 32), 15873);
        assert_eq!(min_lookahead(128, 8), 897);
        assert_eq!(min_lookahead(16, 1), 1);
    }

    #[test]
    fn sram_at_full_lookahead_matches_paper_endpoints() {
        // OC-3072: Q = 512, B = 32 → ~15.9k cells ≈ 1.0 MB.
        let cells = rads_sram_size_cells(min_lookahead(512, 32), 512, 32);
        let mb = cells as f64 * 64.0 / 1e6;
        assert!(mb > 0.9 && mb < 1.2, "OC-3072 max-lookahead SRAM = {mb} MB");
        // OC-768: Q = 128, B = 8 → ~0.9k cells ≈ 58 kB ("64 kB" in the paper).
        let cells = rads_sram_size_cells(min_lookahead(128, 8), 128, 8);
        let kb = cells as f64 * 64.0 / 1e3;
        assert!(
            kb > 50.0 && kb < 70.0,
            "OC-768 max-lookahead SRAM = {kb} kB"
        );
    }

    #[test]
    fn sram_at_short_lookahead_is_megabytes_class() {
        // OC-3072 with a very short lookahead: several MB (paper quotes
        // 6.2 MB for the minimum plotted lookahead).
        let bytes = rads_sram_size_bytes(64, 512, 32);
        let mb = bytes as f64 / 1e6;
        assert!(mb > 4.0 && mb < 10.0, "short-lookahead SRAM = {mb} MB");
        // OC-768: a few hundred kB (paper quotes 300 kB).
        let kb = rads_sram_size_bytes(16, 128, 8) as f64 / 1e3;
        assert!(kb > 150.0 && kb < 500.0, "short-lookahead SRAM = {kb} kB");
    }

    #[test]
    fn sram_size_is_monotone_decreasing_in_lookahead() {
        let mut last = usize::MAX;
        for l in (1..=15873).step_by(500) {
            let s = rads_sram_size_cells(l, 512, 32);
            assert!(s <= last, "lookahead {l}: {s} > {last}");
            last = s;
        }
    }

    #[test]
    fn lookahead_is_clamped() {
        let at_max = rads_sram_size_cells(15873, 512, 32);
        let beyond = rads_sram_size_cells(1_000_000, 512, 32);
        assert_eq!(at_max, beyond);
        let at_one = rads_sram_size_cells(1, 512, 32);
        let at_zero = rads_sram_size_cells(0, 512, 32);
        assert_eq!(at_one, at_zero);
    }

    #[test]
    fn degenerate_parameters() {
        assert_eq!(rads_sram_size_cells(10, 0, 32), 0);
        assert_eq!(rads_sram_size_cells(10, 512, 0), 0);
        assert_eq!(ecqf_min_sram_cells(512, 1), 1);
        assert_eq!(rads_delay_slots(42), 42);
    }

    #[test]
    fn granularity_one_needs_almost_no_sram() {
        // With B = 1 the DRAM keeps up with the line rate on its own.
        let cells = rads_sram_size_cells(1, 512, 1);
        assert_eq!(cells, 1);
    }
}
