//! Earliest Critical Queue First (ECQF) head MMA.

use crate::counters::OccupancyCounters;
use crate::lookahead::LookaheadRegister;
use crate::traits::HeadMma;
use pktbuf_model::LogicalQueueId;

/// The ECQF policy (§3): walk the lookahead from head to tail, decrementing a
/// copy of the occupancy counters; the first queue whose copied counter drops
/// below zero is the *earliest critical* queue and is replenished.
///
/// With a lookahead of `Q·(B−1)+1` slots there is always at least one critical
/// queue whenever the system is busy, and the SRAM never needs to hold more
/// than `Q·(B−1) + B` cells.
#[derive(Debug, Clone)]
pub struct EcqfMma {
    granularity: usize,
    /// Scratch copy of the counters, kept allocated across calls.
    scratch: Vec<i64>,
}

impl EcqfMma {
    /// Creates an ECQF policy replenishing `granularity` cells at a time.
    pub fn new(granularity: usize) -> Self {
        EcqfMma {
            granularity: granularity.max(1),
            scratch: Vec::new(),
        }
    }
}

impl HeadMma for EcqfMma {
    fn select(
        &mut self,
        counters: &OccupancyCounters,
        lookahead: &LookaheadRegister,
    ) -> Option<LogicalQueueId> {
        self.scratch.clear();
        self.scratch.extend_from_slice(&counters.snapshot());
        for request in lookahead.iter() {
            let Some(queue) = request else { continue };
            let c = &mut self.scratch[queue.as_usize()];
            *c -= 1;
            if *c < 0 {
                return Some(queue);
            }
        }
        None
    }

    fn granularity(&self) -> usize {
        self.granularity
    }

    fn name(&self) -> &'static str {
        "ECQF"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q(i: u32) -> LogicalQueueId {
        LogicalQueueId::new(i)
    }

    /// The worked example of Figure 3: Q = 4, B = 3, L = 6, occupancies
    /// (1, 3, 1, 1), lookahead = Q1 Q1 Q1 Q3 Q3 Q6(empty). ECQF must pick Q1.
    #[test]
    fn figure3_example_selects_queue_1() {
        let mut counters = OccupancyCounters::new(4);
        counters.add(q(0), 1);
        counters.add(q(1), 3);
        counters.add(q(2), 1);
        counters.add(q(3), 1);
        let mut l = LookaheadRegister::new(6);
        for i in [0u32, 0, 0, 2, 2] {
            l.push(Some(q(i)));
        }
        l.push(None);
        let mut ecqf = EcqfMma::new(3);
        assert_eq!(ecqf.select(&counters, &l), Some(q(0)));
    }

    #[test]
    fn no_critical_queue_returns_none() {
        let mut counters = OccupancyCounters::new(2);
        counters.add(q(0), 5);
        counters.add(q(1), 5);
        let mut l = LookaheadRegister::new(4);
        for i in [0u32, 1, 0, 1] {
            l.push(Some(q(i)));
        }
        let mut ecqf = EcqfMma::new(3);
        assert_eq!(ecqf.select(&counters, &l), None);
    }

    #[test]
    fn earliest_not_most_starved_queue_wins() {
        // Queue 1 will go critical at lookahead position 2; queue 0 would go
        // critical later even though it has more pending requests overall.
        let mut counters = OccupancyCounters::new(2);
        counters.add(q(0), 3);
        counters.add(q(1), 1);
        let mut l = LookaheadRegister::new(8);
        for i in [0u32, 1, 1, 0, 0, 0, 0, 0] {
            l.push(Some(q(i)));
        }
        let mut ecqf = EcqfMma::new(4);
        assert_eq!(ecqf.select(&counters, &l), Some(q(1)));
    }

    #[test]
    fn idle_slots_are_skipped() {
        let mut counters = OccupancyCounters::new(1);
        counters.add(q(0), 1);
        let mut l = LookaheadRegister::new(4);
        l.push(None);
        l.push(None);
        l.push(Some(q(0)));
        l.push(Some(q(0)));
        let mut ecqf = EcqfMma::new(2);
        assert_eq!(ecqf.select(&counters, &l), Some(q(0)));
        assert_eq!(ecqf.name(), "ECQF");
        assert_eq!(ecqf.granularity(), 2);
    }

    #[test]
    fn zero_granularity_is_clamped() {
        let ecqf = EcqfMma::new(0);
        assert_eq!(ecqf.granularity(), 1);
    }
}
