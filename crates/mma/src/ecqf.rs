//! Earliest Critical Queue First (ECQF) head MMA.

use crate::counters::OccupancyCounters;
use crate::lookahead::LookaheadRegister;
use crate::traits::HeadMma;
use pktbuf_model::LogicalQueueId;

/// The ECQF policy (§3): the queue whose occupancy counter is exhausted
/// *earliest* by the requests in the lookahead is replenished.
///
/// Definitionally this is a head-to-tail walk decrementing a copy of the
/// occupancy counters until one drops below zero. Implementation-wise the
/// same answer falls out of the lookahead's per-queue position index: queue
/// `q` with counter `c` goes critical exactly at its `(max(c, 0) + 1)`-th
/// pending request, so the earliest critical queue is the one whose
/// `(max(c, 0))`-th indexed position is smallest. That turns an O(L) walk
/// (plus an O(Q) counter snapshot) per granularity period into a single O(Q)
/// scan with no copying — the selected queue is identical.
///
/// With a lookahead of `Q·(B−1)+1` slots there is always at least one critical
/// queue whenever the system is busy, and the SRAM never needs to hold more
/// than `Q·(B−1) + B` cells.
///
/// # Incremental selection
///
/// When driven through [`crate::HeadMmaSubsystem`] (which reports every
/// counter/lookahead mutation via [`HeadMma::note_queue_changed`]), the policy
/// maintains a min tournament tree over the per-queue critical positions:
/// each mutation updates one leaf in O(log Q) and selection reads the root in
/// O(1). Used standalone — without change notifications — it falls back to a
/// per-call scan. Both paths compute the identical selection (the tree path
/// `debug_assert`s itself against the scan).
#[derive(Debug, Clone)]
pub struct EcqfMma {
    granularity: usize,
    /// 1-indexed implicit min tree of length `2·leaves`; empty until the
    /// first change notification arrives.
    tree: Vec<u64>,
    leaves: usize,
    /// Queues whose critical position may have moved since the last select.
    /// Change notifications only append here (a few entries per granularity
    /// period); the leaves are refreshed lazily at selection time.
    dirty: Vec<u32>,
    /// Bitmask mirror of `dirty` (bit `q % 64` of word `q / 64`): the same
    /// queue is typically touched several times per granularity period (a
    /// request pushed, one due, a replenishment credited), and deduplicating
    /// at notification time keeps the per-select leaf refresh at one
    /// `critical_position` probe per *distinct* queue.
    dirty_mask: Vec<u64>,
}

/// Sentinel for "this queue has no critical request in the lookahead".
const NO_CRITICAL: u64 = u64::MAX;

impl EcqfMma {
    /// Creates an ECQF policy replenishing `granularity` cells at a time.
    pub fn new(granularity: usize) -> Self {
        EcqfMma {
            granularity: granularity.max(1),
            tree: Vec::new(),
            leaves: 0,
            dirty: Vec::new(),
            dirty_mask: Vec::new(),
        }
    }

    /// Stream position at which `queue_index` goes critical, or
    /// [`NO_CRITICAL`]: with counter `c`, the queue runs dry exactly at its
    /// `(max(c, 0) + 1)`-th pending request.
    fn critical_position(
        counters: &OccupancyCounters,
        lookahead: &LookaheadRegister,
        queue_index: usize,
    ) -> u64 {
        let k = counters.as_slice()[queue_index].max(0) as usize;
        lookahead
            .kth_pending_position(queue_index, k)
            .unwrap_or(NO_CRITICAL)
    }

    fn ensure_leaves(&mut self, num_queues: usize) {
        if self.leaves >= num_queues.max(1) {
            return;
        }
        let new_leaves = num_queues.max(1).next_power_of_two();
        let mut tree = vec![NO_CRITICAL; 2 * new_leaves]; // analyze: allow(hotpath-alloc) — tree regrowth on first sight of a larger queue index; settles during warmup
        for i in 0..self.leaves {
            tree[new_leaves + i] = self.tree[self.leaves + i];
        }
        for i in (1..new_leaves).rev() {
            tree[i] = tree[2 * i].min(tree[2 * i + 1]);
        }
        self.tree = tree;
        self.leaves = new_leaves;
    }

    fn set_leaf(&mut self, queue_index: usize, value: u64) {
        let mut i = self.leaves + queue_index;
        if self.tree[i] == value {
            return;
        }
        self.tree[i] = value;
        while i > 1 {
            i /= 2;
            let merged = self.tree[2 * i].min(self.tree[2 * i + 1]);
            if self.tree[i] == merged {
                break;
            }
            self.tree[i] = merged;
        }
    }

    fn tree_select(&self) -> Option<LogicalQueueId> {
        if self.tree[1] == NO_CRITICAL {
            return None;
        }
        let mut i = 1;
        while i < self.leaves {
            i = if self.tree[2 * i] <= self.tree[2 * i + 1] {
                2 * i
            } else {
                2 * i + 1
            };
        }
        Some(LogicalQueueId::new((i - self.leaves) as u32))
    }

    /// Reference selection: probe every queue's critical position. Used when
    /// the policy runs standalone (no change notifications) and to
    /// cross-check the tree in debug builds.
    fn scan_select(
        counters: &OccupancyCounters,
        lookahead: &LookaheadRegister,
    ) -> Option<LogicalQueueId> {
        if lookahead.pending_len() == 0 {
            return None;
        }
        let mut best: Option<(u64, usize)> = None;
        for qi in 0..counters.num_queues() {
            let position = Self::critical_position(counters, lookahead, qi);
            if position == NO_CRITICAL {
                continue;
            }
            if best.is_none_or(|(bp, _)| position < bp) {
                best = Some((position, qi));
            }
        }
        best.map(|(_, qi)| LogicalQueueId::new(qi as u32))
    }
}

impl HeadMma for EcqfMma {
    fn select(
        &mut self,
        counters: &OccupancyCounters,
        lookahead: &LookaheadRegister,
    ) -> Option<LogicalQueueId> {
        if self.dirty.is_empty() && self.tree.len() <= 1 {
            // Standalone use without change notifications.
            return Self::scan_select(counters, lookahead);
        }
        self.ensure_leaves(counters.num_queues());
        while let Some(qi) = self.dirty.pop() {
            self.dirty_mask[qi as usize / 64] &= !(1 << (qi % 64));
            let qi = qi as usize;
            self.set_leaf(qi, Self::critical_position(counters, lookahead, qi));
        }
        let picked = self.tree_select();
        debug_assert_eq!(
            picked,
            Self::scan_select(counters, lookahead),
            "ECQF tree diverged from the reference scan"
        );
        picked
    }

    fn granularity(&self) -> usize {
        self.granularity
    }

    fn name(&self) -> &'static str {
        "ECQF"
    }

    fn note_queue_changed(
        &mut self,
        queue: LogicalQueueId,
        _counters: &OccupancyCounters,
        _lookahead: &LookaheadRegister,
    ) {
        // Defer the leaf refresh to selection time: notifications arrive every
        // slot, selections once per granularity period. A queue already
        // marked dirty needs no second entry.
        let qi = queue.index();
        let word = qi as usize / 64;
        if word >= self.dirty_mask.len() {
            self.dirty_mask.resize(word + 1, 0);
        }
        let bit = 1u64 << (qi % 64);
        if self.dirty_mask[word] & bit == 0 {
            self.dirty_mask[word] |= bit;
            self.dirty.push(qi);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q(i: u32) -> LogicalQueueId {
        LogicalQueueId::new(i)
    }

    /// The worked example of Figure 3: Q = 4, B = 3, L = 6, occupancies
    /// (1, 3, 1, 1), lookahead = Q1 Q1 Q1 Q3 Q3 Q6(empty). ECQF must pick Q1.
    #[test]
    fn figure3_example_selects_queue_1() {
        let mut counters = OccupancyCounters::new(4);
        counters.add(q(0), 1);
        counters.add(q(1), 3);
        counters.add(q(2), 1);
        counters.add(q(3), 1);
        let mut l = LookaheadRegister::new(6);
        for i in [0u32, 0, 0, 2, 2] {
            l.push(Some(q(i)));
        }
        l.push(None);
        let mut ecqf = EcqfMma::new(3);
        assert_eq!(ecqf.select(&counters, &l), Some(q(0)));
    }

    #[test]
    fn no_critical_queue_returns_none() {
        let mut counters = OccupancyCounters::new(2);
        counters.add(q(0), 5);
        counters.add(q(1), 5);
        let mut l = LookaheadRegister::new(4);
        for i in [0u32, 1, 0, 1] {
            l.push(Some(q(i)));
        }
        let mut ecqf = EcqfMma::new(3);
        assert_eq!(ecqf.select(&counters, &l), None);
    }

    #[test]
    fn earliest_not_most_starved_queue_wins() {
        // Queue 1 will go critical at lookahead position 2; queue 0 would go
        // critical later even though it has more pending requests overall.
        let mut counters = OccupancyCounters::new(2);
        counters.add(q(0), 3);
        counters.add(q(1), 1);
        let mut l = LookaheadRegister::new(8);
        for i in [0u32, 1, 1, 0, 0, 0, 0, 0] {
            l.push(Some(q(i)));
        }
        let mut ecqf = EcqfMma::new(4);
        assert_eq!(ecqf.select(&counters, &l), Some(q(1)));
    }

    #[test]
    fn idle_slots_are_skipped() {
        let mut counters = OccupancyCounters::new(1);
        counters.add(q(0), 1);
        let mut l = LookaheadRegister::new(4);
        l.push(None);
        l.push(None);
        l.push(Some(q(0)));
        l.push(Some(q(0)));
        let mut ecqf = EcqfMma::new(2);
        assert_eq!(ecqf.select(&counters, &l), Some(q(0)));
        assert_eq!(ecqf.name(), "ECQF");
        assert_eq!(ecqf.granularity(), 2);
    }

    #[test]
    fn zero_granularity_is_clamped() {
        let ecqf = EcqfMma::new(0);
        assert_eq!(ecqf.granularity(), 1);
    }
}
