//! The assembled head-MMA subsystem: lookahead + counters + policy.

use crate::counters::OccupancyCounters;
use crate::lookahead::LookaheadRegister;
use crate::traits::{HeadMma, HeadMmaPolicy};
use pktbuf_model::LogicalQueueId;

/// Event produced by one slot of MMA operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MmaEvent {
    /// Request that left the lookahead this slot and must now be served from
    /// the SRAM (i.e. granted to the arbiter). `None` while the lookahead is
    /// still warming up or for idle slots.
    pub due: Option<LogicalQueueId>,
}

/// The head-MMA subsystem of Figure 3/Figure 5: a lookahead shift register, a
/// set of occupancy counters and a replenishment policy.
///
/// The owner drives it with one [`HeadMmaSubsystem::on_request`] call per slot
/// and one [`HeadMmaSubsystem::select_replenishment`] call every granularity
/// period.
///
/// The subsystem is generic over the policy type: the default parameter keeps
/// the type-erased `Box<dyn HeadMma>` form that [`HeadMmaSubsystem::new`]
/// constructs from the [`HeadMmaPolicy`] enum, while
/// [`HeadMmaSubsystem::with_policy`] takes a concrete policy so the buffer
/// front ends monomorphize the per-slot `note_queue_changed` notifications
/// (called once or twice every slot) instead of paying virtual dispatch.
pub struct HeadMmaSubsystem<P: HeadMma + Send = Box<dyn HeadMma + Send>> {
    lookahead: LookaheadRegister,
    counters: OccupancyCounters,
    policy: P,
}

impl<P: HeadMma + Send> std::fmt::Debug for HeadMmaSubsystem<P> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HeadMmaSubsystem")
            .field("policy", &self.policy.name())
            .field("granularity", &self.policy.granularity())
            .field("lookahead_capacity", &self.lookahead.capacity())
            .field("counters", &self.counters)
            .finish()
    }
}

impl HeadMmaSubsystem {
    /// Creates a subsystem with the given policy, lookahead length and number
    /// of queues.
    pub fn new(
        policy: HeadMmaPolicy,
        granularity: usize,
        lookahead: usize,
        num_queues: usize,
    ) -> Self {
        HeadMmaSubsystem::with_policy(policy.instantiate(granularity), lookahead, num_queues)
    }
}

impl<P: HeadMma + Send> HeadMmaSubsystem<P> {
    /// Creates a subsystem around a concrete policy instance (the
    /// monomorphized form used by the buffer front ends).
    pub fn with_policy(policy: P, lookahead: usize, num_queues: usize) -> Self {
        HeadMmaSubsystem {
            lookahead: LookaheadRegister::new(lookahead),
            counters: OccupancyCounters::new(num_queues),
            policy,
        }
    }

    /// Slot-level operation: push the arbiter's request of this slot (or
    /// `None` for an idle slot) into the lookahead. If the lookahead is full,
    /// the request shifted out at the head is *due* and is returned in the
    /// event; its occupancy counter is decremented.
    pub fn on_request(&mut self, request: Option<LogicalQueueId>) -> MmaEvent {
        let shifted = self.lookahead.push(request);
        let event = match shifted {
            Some(Some(due)) => {
                self.counters.take_one(due);
                MmaEvent { due: Some(due) }
            }
            _ => MmaEvent::default(),
        };
        // Report every touched queue so incremental policies stay in sync
        // (the due queue lost a pending request and a counter unit, the
        // pushed queue gained a pending request).
        if let Some(due) = event.due {
            self.policy
                .note_queue_changed(due, &self.counters, &self.lookahead);
        }
        if let Some(queue) = request {
            if event.due != Some(queue) {
                self.policy
                    .note_queue_changed(queue, &self.counters, &self.lookahead);
            }
        }
        event
    }

    /// Granularity-period operation: ask the policy which queue to replenish.
    /// If a queue is selected its counter is credited with the granularity and
    /// the queue is returned so the owner can schedule the DRAM transfer.
    pub fn select_replenishment(&mut self) -> Option<LogicalQueueId> {
        let choice = self.policy.select(&self.counters, &self.lookahead)?;
        self.counters.add(choice, self.policy.granularity() as i64);
        self.policy
            .note_queue_changed(choice, &self.counters, &self.lookahead);
        Some(choice)
    }

    /// Fast-forwards the subsystem by `slots` idle slots at once: exactly
    /// equivalent to `slots` calls of
    /// [`HeadMmaSubsystem::on_request`]`(None)` **while no request is
    /// pending in the lookahead**, but O(1). With an all-idle lookahead, each
    /// such call only rotates the shift register and can never produce a due
    /// request, touch a counter, or notify the policy.
    ///
    /// The caller is responsible for the pending-driven selection property:
    /// ECQF selects `None` whenever the lookahead holds no pending request,
    /// so skipped `select_replenishment` periods are unobservable for it.
    /// MDQF does *not* have this property (it can select on counter deficit
    /// alone) — owners driving MDQF must not skip its selection periods.
    ///
    /// # Panics
    ///
    /// Panics (debug builds) if a request is pending in the lookahead.
    pub fn advance_idle(&mut self, slots: u64) {
        debug_assert_eq!(
            self.lookahead.pending_len(),
            0,
            "advance_idle with pending requests in the lookahead"
        );
        self.lookahead.advance_idle(slots);
    }

    /// Credits `queue` with `cells` already present in the SRAM (used to
    /// initialise a warm buffer).
    pub fn preload(&mut self, queue: LogicalQueueId, cells: i64) {
        self.counters.add(queue, cells);
        self.policy
            .note_queue_changed(queue, &self.counters, &self.lookahead);
    }

    /// Read access to the occupancy counters (for verification).
    pub fn counters(&self) -> &OccupancyCounters {
        &self.counters
    }

    /// Read access to the lookahead register.
    pub fn lookahead(&self) -> &LookaheadRegister {
        &self.lookahead
    }

    /// Granularity of the underlying policy.
    pub fn granularity(&self) -> usize {
        self.policy.granularity()
    }

    /// Name of the underlying policy.
    pub fn policy_name(&self) -> &'static str {
        self.policy.name()
    }
}

#[cfg(test)]
mod debug_tests {
    use super::*;

    #[test]
    fn debug_is_nonempty() {
        let mma = HeadMmaSubsystem::new(HeadMmaPolicy::Ecqf, 2, 3, 2);
        let s = format!("{mma:?}");
        assert!(s.contains("ECQF"));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q(i: u32) -> LogicalQueueId {
        LogicalQueueId::new(i)
    }

    #[test]
    fn requests_become_due_after_lookahead_delay() {
        let mut mma = HeadMmaSubsystem::new(HeadMmaPolicy::Ecqf, 2, 3, 2);
        mma.preload(q(0), 2);
        assert_eq!(mma.on_request(Some(q(0))).due, None);
        assert_eq!(mma.on_request(Some(q(1))).due, None);
        assert_eq!(mma.on_request(Some(q(0))).due, None);
        // Fourth push shifts the first request out.
        assert_eq!(mma.on_request(None).due, Some(q(0)));
        assert_eq!(mma.counters().get(q(0)), 1);
    }

    #[test]
    fn replenishment_credits_counter() {
        let mut mma = HeadMmaSubsystem::new(HeadMmaPolicy::Ecqf, 4, 4, 2);
        for _ in 0..4 {
            mma.on_request(Some(q(1)));
        }
        let sel = mma.select_replenishment();
        assert_eq!(sel, Some(q(1)));
        assert_eq!(mma.counters().get(q(1)), 4);
        assert_eq!(mma.granularity(), 4);
        assert_eq!(mma.policy_name(), "ECQF");
        assert_eq!(mma.lookahead().capacity(), 4);
    }

    #[test]
    fn idle_slots_produce_no_due_request() {
        let mut mma = HeadMmaSubsystem::new(HeadMmaPolicy::Mdqf, 2, 2, 1);
        assert_eq!(mma.on_request(None).due, None);
        assert_eq!(mma.on_request(None).due, None);
        assert_eq!(mma.on_request(None).due, None);
        assert_eq!(mma.counters().get(q(0)), 0);
    }
}
