//! Most Deficit Queue First (MDQF) head MMA.

use crate::counters::OccupancyCounters;
use crate::lookahead::LookaheadRegister;
use crate::traits::HeadMma;
use pktbuf_model::LogicalQueueId;

/// The MDQF policy: replenish the queue with the largest *deficit*, defined as
/// pending requests in the lookahead minus the occupancy counter.
///
/// Unlike ECQF it does not need the full `Q·(B−1)+1` lookahead — it degrades
/// gracefully down to a lookahead of one slot — but it requires a larger SRAM
/// (on the order of `Q·B·ln Q` cells for zero lookahead, reference \[13\] of
/// the paper).
#[derive(Debug, Clone)]
pub struct MdqfMma {
    granularity: usize,
    scratch: Vec<i64>,
}

impl MdqfMma {
    /// Creates an MDQF policy replenishing `granularity` cells at a time.
    pub fn new(granularity: usize) -> Self {
        MdqfMma {
            granularity: granularity.max(1),
            scratch: Vec::new(),
        }
    }
}

impl HeadMma for MdqfMma {
    fn select(
        &mut self,
        counters: &OccupancyCounters,
        lookahead: &LookaheadRegister,
    ) -> Option<LogicalQueueId> {
        // deficit[q] = pending requests − counter.
        self.scratch.clear();
        self.scratch.extend(counters.as_slice().iter().map(|c| -c));
        for request in lookahead.iter().flatten() {
            self.scratch[request.as_usize()] += 1;
        }
        let (best_idx, best_deficit) = self
            .scratch
            .iter()
            .copied()
            .enumerate()
            .max_by_key(|(i, d)| (*d, std::cmp::Reverse(*i)))?;
        // Only replenish queues that actually have demand outstanding or are
        // running low; a queue with a large surplus never needs service.
        if best_deficit > -(self.granularity as i64) {
            Some(LogicalQueueId::new(best_idx as u32))
        } else {
            None
        }
    }

    fn granularity(&self) -> usize {
        self.granularity
    }

    fn name(&self) -> &'static str {
        "MDQF"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q(i: u32) -> LogicalQueueId {
        LogicalQueueId::new(i)
    }

    #[test]
    fn picks_largest_deficit() {
        let mut counters = OccupancyCounters::new(3);
        counters.add(q(0), 4);
        counters.add(q(1), 1);
        counters.add(q(2), 2);
        let mut l = LookaheadRegister::new(6);
        for i in [1u32, 1, 1, 2, 0, 2] {
            l.push(Some(q(i)));
        }
        // deficits: q0 = 1-4 = -3, q1 = 3-1 = 2, q2 = 2-2 = 0.
        let mut mdqf = MdqfMma::new(4);
        assert_eq!(mdqf.select(&counters, &l), Some(q(1)));
    }

    #[test]
    fn ties_break_towards_lower_index() {
        let counters = OccupancyCounters::new(3);
        let mut l = LookaheadRegister::new(4);
        for i in [1u32, 2, 1, 2] {
            l.push(Some(q(i)));
        }
        let mut mdqf = MdqfMma::new(2);
        assert_eq!(mdqf.select(&counters, &l), Some(q(1)));
    }

    #[test]
    fn saturated_queues_are_not_replenished() {
        let mut counters = OccupancyCounters::new(2);
        counters.add(q(0), 50);
        counters.add(q(1), 50);
        let mut l = LookaheadRegister::new(2);
        l.push(Some(q(0)));
        l.push(Some(q(1)));
        let mut mdqf = MdqfMma::new(4);
        assert_eq!(mdqf.select(&counters, &l), None);
        assert_eq!(mdqf.name(), "MDQF");
        assert_eq!(mdqf.granularity(), 4);
    }

    #[test]
    fn works_with_single_slot_lookahead() {
        let mut counters = OccupancyCounters::new(2);
        counters.add(q(1), 1);
        let mut l = LookaheadRegister::new(1);
        l.push(Some(q(0)));
        let mut mdqf = MdqfMma::new(2);
        assert_eq!(mdqf.select(&counters, &l), Some(q(0)));
    }
}
