//! Per-queue virtual occupancy counters.

use pktbuf_model::LogicalQueueId;

/// The occupancy counters consulted by the head MMA.
///
/// The counter of a queue does *not* necessarily equal the number of cells
/// physically present in the SRAM (§5.2): it is incremented as soon as a
/// replenishment is *ordered* and decremented when a request leaves the
/// lookahead, so it tracks "cells committed to this queue that the requests
/// currently in the lookahead may consume".
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OccupancyCounters {
    counters: Vec<i64>,
}

impl OccupancyCounters {
    /// Creates counters for `num_queues` queues, all zero.
    pub fn new(num_queues: usize) -> Self {
        OccupancyCounters {
            counters: vec![0; num_queues],
        }
    }

    /// Number of queues tracked.
    pub fn num_queues(&self) -> usize {
        self.counters.len()
    }

    /// Counter of `queue`.
    ///
    /// # Panics
    ///
    /// Panics if the queue is out of range.
    pub fn get(&self, queue: LogicalQueueId) -> i64 {
        self.counters[queue.as_usize()]
    }

    /// Adds `amount` cells to `queue` (a replenishment of the granularity, or
    /// initial SRAM contents).
    pub fn add(&mut self, queue: LogicalQueueId, amount: i64) {
        self.counters[queue.as_usize()] += amount;
    }

    /// Subtracts one cell from `queue` (a request left the lookahead).
    pub fn take_one(&mut self, queue: LogicalQueueId) {
        self.counters[queue.as_usize()] -= 1;
    }

    /// Direct read-only view of all counters (index = queue index).
    ///
    /// This is the hot-path accessor: the selection policies copy it into a
    /// preallocated scratch buffer instead of cloning a fresh `Vec` per
    /// granularity period.
    pub fn as_slice(&self) -> &[i64] {
        &self.counters
    }

    /// Snapshot of all counters (index = queue index).
    pub fn snapshot(&self) -> Vec<i64> {
        self.counters.clone()
    }

    /// Smallest counter value (useful to assert that no queue went negative,
    /// i.e. that no miss occurred).
    pub fn min(&self) -> i64 {
        self.counters.iter().copied().min().unwrap_or(0)
    }

    /// Sum of all counters.
    pub fn total(&self) -> i64 {
        self.counters.iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q(i: u32) -> LogicalQueueId {
        LogicalQueueId::new(i)
    }

    #[test]
    fn add_and_take() {
        let mut c = OccupancyCounters::new(3);
        c.add(q(0), 8);
        c.add(q(2), 4);
        c.take_one(q(0));
        assert_eq!(c.get(q(0)), 7);
        assert_eq!(c.get(q(1)), 0);
        assert_eq!(c.get(q(2)), 4);
        assert_eq!(c.total(), 11);
        assert_eq!(c.min(), 0);
        assert_eq!(c.num_queues(), 3);
        assert_eq!(c.snapshot(), vec![7, 0, 4]);
    }

    #[test]
    fn counters_may_go_negative_to_reveal_misses() {
        let mut c = OccupancyCounters::new(1);
        c.take_one(q(0));
        assert_eq!(c.get(q(0)), -1);
        assert_eq!(c.min(), -1);
    }

    #[test]
    #[should_panic]
    fn out_of_range_panics() {
        let c = OccupancyCounters::new(2);
        let _ = c.get(q(5));
    }
}
