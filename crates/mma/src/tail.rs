//! Tail-side Memory Management Algorithm.

use pktbuf_model::LogicalQueueId;

/// A tail MMA selects, every granularity period, a queue whose cells should be
/// written back from the tail SRAM to the DRAM.
pub trait TailMma {
    /// Selects a queue to write back given the tail-SRAM occupancy of every
    /// queue (in cells), or `None` when no queue has accumulated a full batch.
    fn select(&mut self, occupancies: &[usize]) -> Option<LogicalQueueId>;

    /// Cells moved per writeback.
    fn granularity(&self) -> usize;
}

/// The simple threshold tail MMA of §3: write back (a batch of `B` cells from)
/// any queue whose occupancy reached the granularity. Among eligible queues
/// the fullest one is chosen, which also minimises the tail-SRAM high-water
/// mark.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ThresholdTailMma {
    granularity: usize,
}

impl ThresholdTailMma {
    /// Creates a threshold tail MMA with the given granularity.
    pub fn new(granularity: usize) -> Self {
        ThresholdTailMma {
            granularity: granularity.max(1),
        }
    }

    /// Worst-case tail-SRAM size with this policy: `Q·(B−1) + B` cells
    /// (every queue may sit just below the threshold plus one full batch
    /// arriving before the next writeback opportunity).
    pub fn required_sram_cells(num_queues: usize, granularity: usize) -> usize {
        num_queues * (granularity - 1) + granularity
    }

    /// Like [`TailMma::select`], but visits only the queues whose bit is set
    /// in `eligible` (bit `q % 64` of word `q / 64`).
    ///
    /// When the mask marks exactly the queues at or above the threshold —
    /// the invariant the caller's occupancy tracker maintains — the result
    /// is identical to scanning every queue, at O(eligible) instead of O(Q).
    pub fn select_masked(&self, occupancies: &[usize], eligible: &[u64]) -> Option<LogicalQueueId> {
        let mut best: Option<(usize, usize)> = None;
        for (w, word) in eligible.iter().copied().enumerate() {
            let mut bits = word;
            while bits != 0 {
                let i = w * 64 + bits.trailing_zeros() as usize;
                bits &= bits - 1;
                let occ = occupancies[i];
                debug_assert!(occ >= self.granularity, "mask out of sync");
                if best.is_none_or(|(best_occ, _)| occ > best_occ) {
                    best = Some((occ, i));
                }
            }
        }
        best.map(|(_, i)| LogicalQueueId::new(i as u32))
    }
}

impl TailMma for ThresholdTailMma {
    fn select(&mut self, occupancies: &[usize]) -> Option<LogicalQueueId> {
        // Tight manual scan (this runs every granularity period): highest
        // occupancy wins, ties break towards the lower index — the same
        // ordering as maximising (occupancy, Reverse(index)).
        let mut best: Option<(usize, usize)> = None;
        for (i, occ) in occupancies.iter().copied().enumerate() {
            if occ < self.granularity {
                continue;
            }
            if best.is_none_or(|(best_occ, _)| occ > best_occ) {
                best = Some((occ, i));
            }
        }
        best.map(|(_, i)| LogicalQueueId::new(i as u32))
    }

    fn granularity(&self) -> usize {
        self.granularity
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn selects_fullest_eligible_queue() {
        let mut t = ThresholdTailMma::new(4);
        assert_eq!(t.select(&[3, 7, 5, 2]), Some(LogicalQueueId::new(1)));
        assert_eq!(t.select(&[3, 2, 1, 0]), None);
        assert_eq!(t.granularity(), 4);
    }

    #[test]
    fn ties_break_towards_lower_index() {
        let mut t = ThresholdTailMma::new(2);
        assert_eq!(t.select(&[5, 5, 5]), Some(LogicalQueueId::new(0)));
    }

    #[test]
    fn required_sram_matches_formula() {
        assert_eq!(ThresholdTailMma::required_sram_cells(4, 3), 4 * 2 + 3);
        assert_eq!(
            ThresholdTailMma::required_sram_cells(512, 32),
            512 * 31 + 32
        );
    }

    #[test]
    fn zero_granularity_is_clamped() {
        let t = ThresholdTailMma::new(0);
        assert_eq!(t.granularity(), 1);
    }
}
