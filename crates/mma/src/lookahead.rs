//! The lookahead shift register of arbiter requests.

use pktbuf_model::LogicalQueueId;
use std::collections::VecDeque;

/// A fixed-length shift register of arbiter requests.
///
/// Every slot the arbiter pushes one request (or an explicit idle slot) at the
/// tail; the request at the head is the one granted in the current slot. The
/// register therefore delays every request by its length, which is the price
/// paid for letting the MMA see `L` requests into the future.
#[derive(Debug, Clone)]
pub struct LookaheadRegister {
    slots: VecDeque<Option<LogicalQueueId>>,
    capacity: usize,
}

impl LookaheadRegister {
    /// Creates an empty lookahead of `capacity` slots.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero — a zero-length lookahead is expressed by
    /// not using a lookahead at all (see [`crate::MdqfMma`]).
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "lookahead must have at least one slot");
        LookaheadRegister {
            slots: VecDeque::with_capacity(capacity),
            capacity,
        }
    }

    /// Length of the register in slots.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of requests currently held (including idle slots).
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether the register holds no requests at all.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Whether the register is full, i.e. the next push will also pop.
    pub fn is_full(&self) -> bool {
        self.slots.len() >= self.capacity
    }

    /// Pushes a request (or an idle slot) at the tail. If the register was
    /// full, the head element is shifted out and returned (`Some(head)`),
    /// otherwise `None` is returned and nothing leaves the register yet.
    pub fn push(&mut self, request: Option<LogicalQueueId>) -> Option<Option<LogicalQueueId>> {
        self.slots.push_back(request);
        if self.slots.len() > self.capacity {
            self.slots.pop_front()
        } else {
            None
        }
    }

    /// The request at the head (the next to be granted), if the register is
    /// non-empty.
    pub fn head(&self) -> Option<Option<LogicalQueueId>> {
        self.slots.front().copied()
    }

    /// Iterates over the requests from head (granted soonest) to tail.
    pub fn iter(&self) -> impl Iterator<Item = Option<LogicalQueueId>> + '_ {
        self.slots.iter().copied()
    }

    /// Number of pending requests for `queue` currently in the register.
    pub fn pending_for(&self, queue: LogicalQueueId) -> usize {
        self.slots.iter().filter(|r| **r == Some(queue)).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q(i: u32) -> LogicalQueueId {
        LogicalQueueId::new(i)
    }

    #[test]
    fn push_fills_then_shifts() {
        let mut l = LookaheadRegister::new(3);
        assert!(l.is_empty());
        assert_eq!(l.push(Some(q(1))), None);
        assert_eq!(l.push(Some(q(2))), None);
        assert_eq!(l.push(None), None);
        assert!(l.is_full());
        assert_eq!(l.len(), 3);
        // Fourth push shifts the head out.
        assert_eq!(l.push(Some(q(3))), Some(Some(q(1))));
        assert_eq!(l.head(), Some(Some(q(2))));
        assert_eq!(l.capacity(), 3);
    }

    #[test]
    fn iteration_is_head_to_tail() {
        let mut l = LookaheadRegister::new(4);
        for i in 0..4 {
            l.push(Some(q(i)));
        }
        let order: Vec<u32> = l.iter().map(|r| r.unwrap().index()).collect();
        assert_eq!(order, vec![0, 1, 2, 3]);
    }

    #[test]
    fn pending_for_counts_matching_requests() {
        let mut l = LookaheadRegister::new(5);
        for i in [0u32, 1, 0, 2, 0] {
            l.push(Some(q(i)));
        }
        assert_eq!(l.pending_for(q(0)), 3);
        assert_eq!(l.pending_for(q(1)), 1);
        assert_eq!(l.pending_for(q(9)), 0);
    }

    #[test]
    #[should_panic(expected = "at least one slot")]
    fn zero_capacity_panics() {
        let _ = LookaheadRegister::new(0);
    }
}
