//! The lookahead shift register of arbiter requests.

use pktbuf_model::LogicalQueueId;
use std::collections::VecDeque;

/// Fixed-size ring storage: the register is a true shift register whose
/// occupancy only ever grows to `capacity` and then stays there, so a boxed
/// slice with a head cursor replaces push/pop pairs on a deque with a single
/// slot overwrite per slot.
#[derive(Debug, Clone)]
struct Ring {
    slots: Box<[Option<LogicalQueueId>]>,
    head: usize,
    len: usize,
}

impl Ring {
    fn new(capacity: usize) -> Self {
        Ring {
            slots: vec![None; capacity].into_boxed_slice(),
            head: 0,
            len: 0,
        }
    }

    fn index(&self, i: usize) -> usize {
        let idx = self.head + i;
        if idx >= self.slots.len() {
            idx - self.slots.len()
        } else {
            idx
        }
    }

    /// Appends at the tail; once full, overwrites and returns the head.
    fn shift(&mut self, entry: Option<LogicalQueueId>) -> Option<Option<LogicalQueueId>> {
        if self.len < self.slots.len() {
            let at = self.index(self.len);
            self.slots[at] = entry;
            self.len += 1;
            None
        } else {
            let out = std::mem::replace(&mut self.slots[self.head], entry);
            self.head = self.index(1);
            Some(out)
        }
    }

    fn get(&self, i: usize) -> Option<LogicalQueueId> {
        self.slots[self.index(i)]
    }
}

/// Per-queue window width of the flat position index (power of two). ECQF
/// only ever asks for the `counter`-th pending position, and counters hover
/// around the replenishment granularity, so a small window covers virtually
/// every lookup; deeper positions spill to a per-queue overflow deque.
const POS_WINDOW: usize = 16;

/// Flat per-queue index of the stream positions of pending requests.
///
/// The hot storage is one contiguous array of `num_queues × POS_WINDOW`
/// ring-buffered positions (plus small head/len arrays), so the ECQF
/// selection scan — which probes one position per queue per granularity
/// period — stays inside a few cache lines instead of chasing a heap pointer
/// per queue. Invariant: a queue's overflow deque is non-empty only while
/// its window is full, and the window always holds the queue's *oldest*
/// pending positions.
#[derive(Debug, Clone, Default)]
struct PositionIndex {
    window: Vec<u64>,
    head: Vec<u16>,
    len: Vec<u16>,
    overflow: Vec<VecDeque<u64>>,
}

impl PositionIndex {
    fn ensure_queue(&mut self, qi: usize) {
        if qi >= self.head.len() {
            self.window.resize((qi + 1) * POS_WINDOW, 0);
            self.head.resize(qi + 1, 0);
            self.len.resize(qi + 1, 0);
            self.overflow.resize_with(qi + 1, VecDeque::new); // analyze: allow(hotpath-alloc) — VecDeque::new does not allocate; the surrounding growth settles during warmup
        }
    }

    fn push_back(&mut self, qi: usize, position: u64) {
        self.ensure_queue(qi);
        let len = self.len[qi] as usize;
        if len < POS_WINDOW {
            let at = (self.head[qi] as usize + len) % POS_WINDOW;
            self.window[qi * POS_WINDOW + at] = position;
            self.len[qi] += 1;
        } else {
            self.overflow[qi].push_back(position);
        }
    }

    fn pop_front(&mut self, qi: usize) -> Option<u64> {
        let len = self.len[qi] as usize;
        if len == 0 {
            return None;
        }
        let head = self.head[qi] as usize;
        let position = self.window[qi * POS_WINDOW + head];
        self.head[qi] = ((head + 1) % POS_WINDOW) as u16;
        self.len[qi] -= 1;
        // Refill from the overflow so the window keeps the oldest positions.
        if let Some(spilled) = self.overflow[qi].pop_front() {
            let at = (self.head[qi] as usize + POS_WINDOW - 1) % POS_WINDOW;
            self.window[qi * POS_WINDOW + at] = spilled;
            self.len[qi] += 1;
        }
        Some(position)
    }

    fn get(&self, qi: usize, k: usize) -> Option<u64> {
        let len = *self.len.get(qi)? as usize;
        if k < len {
            let at = (self.head[qi] as usize + k) % POS_WINDOW;
            Some(self.window[qi * POS_WINDOW + at])
        } else {
            self.overflow[qi].get(k - len).copied()
        }
    }
}

/// A fixed-length shift register of arbiter requests.
///
/// Every slot the arbiter pushes one request (or an explicit idle slot) at the
/// tail; the request at the head is the one granted in the current slot. The
/// register therefore delays every request by its length, which is the price
/// paid for letting the MMA see `L` requests into the future.
#[derive(Debug, Clone)]
pub struct LookaheadRegister {
    slots: Ring,
    capacity: usize,
    /// Number of non-idle entries currently held, maintained on push/shift so
    /// the selection policies can skip scanning an all-idle register.
    pending: usize,
    /// Per-queue stream positions of the pending requests (front = oldest).
    /// This index lets ECQF locate each queue's k-th pending request in O(1)
    /// instead of walking the whole register every granularity period.
    positions: PositionIndex,
    /// Total requests ever pushed (the stream position of the next push).
    pushed: u64,
}

impl LookaheadRegister {
    /// Creates an empty lookahead of `capacity` slots.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero — a zero-length lookahead is expressed by
    /// not using a lookahead at all (see [`crate::MdqfMma`]).
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "lookahead must have at least one slot");
        LookaheadRegister {
            slots: Ring::new(capacity),
            capacity,
            pending: 0,
            positions: PositionIndex::default(),
            pushed: 0,
        }
    }

    /// Length of the register in slots.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of requests currently held (including idle slots).
    pub fn len(&self) -> usize {
        self.slots.len
    }

    /// Whether the register holds no requests at all.
    pub fn is_empty(&self) -> bool {
        self.slots.len == 0
    }

    /// Whether the register is full, i.e. the next push will also pop.
    pub fn is_full(&self) -> bool {
        self.slots.len >= self.capacity
    }

    /// Pushes a request (or an idle slot) at the tail. If the register was
    /// full, the head element is shifted out and returned (`Some(head)`),
    /// otherwise `None` is returned and nothing leaves the register yet.
    pub fn push(&mut self, request: Option<LogicalQueueId>) -> Option<Option<LogicalQueueId>> {
        if let Some(queue) = request {
            self.pending += 1;
            self.positions.push_back(queue.as_usize(), self.pushed);
        }
        self.pushed += 1;
        let shifted = self.slots.shift(request);
        if let Some(Some(queue)) = shifted {
            self.pending -= 1;
            let popped = self.positions.pop_front(queue.as_usize());
            debug_assert!(popped.is_some(), "position index out of sync");
        }
        shifted
    }

    /// Fast-forwards the register by `slots` idle pushes at once: exactly
    /// equivalent to calling [`LookaheadRegister::push`]`(None)` `slots`
    /// times, but O(1).
    ///
    /// Only legal while the register holds **no pending requests** — then
    /// every stored entry is an idle slot, so pushing more idle slots only
    /// moves the ring cursor (and, before the register first fills, its
    /// length); the untouched storage is already all-`None`.
    ///
    /// # Panics
    ///
    /// Panics (debug builds) if any request is pending.
    pub fn advance_idle(&mut self, slots: u64) {
        debug_assert_eq!(
            self.pending, 0,
            "advance_idle on a lookahead with pending requests"
        );
        self.pushed = self.pushed.wrapping_add(slots);
        let capacity = self.slots.slots.len();
        let fill = ((capacity - self.slots.len) as u64).min(slots) as usize;
        self.slots.len += fill;
        let remaining = slots - fill as u64;
        self.slots.head = (self.slots.head + (remaining % capacity as u64) as usize) % capacity;
    }

    /// The request at the head (the next to be granted), if the register is
    /// non-empty.
    pub fn head(&self) -> Option<Option<LogicalQueueId>> {
        if self.slots.len == 0 {
            None
        } else {
            Some(self.slots.get(0))
        }
    }

    /// Iterates over the requests from head (granted soonest) to tail.
    pub fn iter(&self) -> impl Iterator<Item = Option<LogicalQueueId>> + '_ {
        (0..self.slots.len).map(|i| self.slots.get(i))
    }

    /// Number of pending requests for `queue` currently in the register.
    pub fn pending_for(&self, queue: LogicalQueueId) -> usize {
        self.iter().filter(|r| *r == Some(queue)).count()
    }

    /// Total non-idle requests currently in the register (all queues).
    /// Maintained incrementally — O(1), used by the policies to skip scans of
    /// an all-idle register.
    pub fn pending_len(&self) -> usize {
        self.pending
    }

    /// Stream position of the `k`-th (0-based, oldest-first) pending request
    /// of the queue with index `queue_index`, or `None` when the queue has at
    /// most `k` requests in the register. Positions are comparable across
    /// queues: a smaller position is closer to the head. O(1).
    pub fn kth_pending_position(&self, queue_index: usize, k: usize) -> Option<u64> {
        self.positions.get(queue_index, k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q(i: u32) -> LogicalQueueId {
        LogicalQueueId::new(i)
    }

    #[test]
    fn push_fills_then_shifts() {
        let mut l = LookaheadRegister::new(3);
        assert!(l.is_empty());
        assert_eq!(l.push(Some(q(1))), None);
        assert_eq!(l.push(Some(q(2))), None);
        assert_eq!(l.push(None), None);
        assert!(l.is_full());
        assert_eq!(l.len(), 3);
        // Fourth push shifts the head out.
        assert_eq!(l.push(Some(q(3))), Some(Some(q(1))));
        assert_eq!(l.head(), Some(Some(q(2))));
        assert_eq!(l.capacity(), 3);
    }

    #[test]
    fn iteration_is_head_to_tail() {
        let mut l = LookaheadRegister::new(4);
        for i in 0..4 {
            l.push(Some(q(i)));
        }
        let order: Vec<u32> = l.iter().map(|r| r.unwrap().index()).collect();
        assert_eq!(order, vec![0, 1, 2, 3]);
    }

    #[test]
    fn pending_for_counts_matching_requests() {
        let mut l = LookaheadRegister::new(5);
        for i in [0u32, 1, 0, 2, 0] {
            l.push(Some(q(i)));
        }
        assert_eq!(l.pending_for(q(0)), 3);
        assert_eq!(l.pending_for(q(1)), 1);
        assert_eq!(l.pending_for(q(9)), 0);
    }

    #[test]
    #[should_panic(expected = "at least one slot")]
    fn zero_capacity_panics() {
        let _ = LookaheadRegister::new(0);
    }

    #[test]
    fn position_index_matches_iteration_order() {
        // Push enough same-queue requests to spill past the flat window and
        // check every k-th position against a naive recount, across shifts.
        let mut l = LookaheadRegister::new(64);
        for t in 0..200u64 {
            let request = match t % 3 {
                0 => Some(q(0)),
                1 => Some(q(1)),
                _ => {
                    if t % 6 == 2 {
                        None
                    } else {
                        Some(q(0))
                    }
                }
            };
            l.push(request);
            for queue in [0usize, 1, 2] {
                let naive: Vec<usize> = l
                    .iter()
                    .enumerate()
                    .filter(|(_, r)| *r == Some(q(queue as u32)))
                    .map(|(i, _)| i)
                    .collect();
                assert_eq!(l.pending_for(q(queue as u32)), naive.len());
                for k in 0..naive.len() + 2 {
                    let indexed = l.kth_pending_position(queue, k);
                    match naive.get(k) {
                        // Positions are stream offsets; compare by rank:
                        // the k-th indexed position must order identically.
                        Some(_) => assert!(indexed.is_some(), "t={t} q={queue} k={k}"),
                        None => assert!(indexed.is_none(), "t={t} q={queue} k={k}"),
                    }
                }
                // Cross-queue ordering: indexed positions of the naive walk
                // must be strictly increasing with k.
                if naive.len() >= 2 {
                    let p0 = l.kth_pending_position(queue, 0).unwrap();
                    let p1 = l.kth_pending_position(queue, 1).unwrap();
                    assert!(p0 < p1);
                }
            }
        }
    }
}
