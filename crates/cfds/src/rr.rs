//! The Requests Register (RR).

use dram_sim::{BankId, DramRequest};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// One entry of the Requests Register: a pending DRAM request together with
/// the bank it will access and bookkeeping for delay statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RrEntry {
    /// The pending request (queue, block ordinal, read/write).
    pub request: DramRequest,
    /// Bank the request will access (fixed at submit time by the block-cyclic
    /// mapping).
    pub bank: BankId,
    /// Slot at which the request entered the RR.
    pub submitted_slot: u64,
    /// Number of times the DSA has skipped over this entry so far.
    pub skips: u32,
}

/// The Requests Register: an age-ordered buffer of MMA requests that have not
/// been issued to the DRAM yet (§5.3).
///
/// The register behaves like the issue window of an out-of-order processor:
/// entries are kept in age order, the scheduler may remove an entry from any
/// position, and younger entries are compacted towards the head so that age
/// order is preserved.
#[derive(Debug, Clone, Default)]
pub struct RequestsRegister {
    entries: VecDeque<RrEntry>,
    peak_occupancy: usize,
    total_submitted: u64,
}

impl RequestsRegister {
    /// Creates an empty register.
    pub fn new() -> Self {
        RequestsRegister::default()
    }

    /// Number of pending requests.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the register is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Largest number of simultaneously pending requests observed.
    pub fn peak_occupancy(&self) -> usize {
        self.peak_occupancy
    }

    /// Total number of requests that have entered the register.
    pub fn total_submitted(&self) -> u64 {
        self.total_submitted
    }

    /// Appends a request at the tail (youngest position).
    pub fn push(&mut self, request: DramRequest, bank: BankId, now: u64) {
        self.entries.push_back(RrEntry {
            request,
            bank,
            submitted_slot: now,
            skips: 0,
        });
        self.total_submitted += 1;
        self.peak_occupancy = self.peak_occupancy.max(self.entries.len());
    }

    /// Iterates over the entries from oldest to youngest.
    pub fn iter(&self) -> impl Iterator<Item = &RrEntry> {
        self.entries.iter()
    }

    /// Removes and returns the entry at `position` (0 = oldest). All entries
    /// older than it have their skip counter incremented — they were passed
    /// over by a younger request.
    ///
    /// # Panics
    ///
    /// Panics if `position` is out of range.
    pub fn take(&mut self, position: usize) -> RrEntry {
        let entry = self
            .entries
            .remove(position)
            .expect("RequestsRegister::take position out of range"); // analyze: allow(panic-freedom) — documented # Panics contract: the scheduler passes positions from its own scan of this register
        for older in self.entries.iter_mut().take(position) {
            older.skips += 1;
        }
        entry
    }

    /// Maximum skip count among pending entries (for verifying the `d_max`
    /// bound of equation (2)).
    pub fn max_pending_skips(&self) -> u32 {
        self.entries.iter().map(|e| e.skips).max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pktbuf_model::PhysicalQueueId;

    fn req(q: u32, o: u64) -> DramRequest {
        DramRequest::read(PhysicalQueueId::new(q), o, 0)
    }

    #[test]
    fn push_take_preserves_age_order() {
        let mut rr = RequestsRegister::new();
        rr.push(req(0, 0), BankId::new(0), 0);
        rr.push(req(1, 0), BankId::new(1), 4);
        rr.push(req(2, 0), BankId::new(2), 8);
        assert_eq!(rr.len(), 3);
        // Take the middle entry.
        let e = rr.take(1);
        assert_eq!(e.request.queue.index(), 1);
        let remaining: Vec<u32> = rr.iter().map(|e| e.request.queue.index()).collect();
        assert_eq!(remaining, vec![0, 2]);
        assert_eq!(rr.peak_occupancy(), 3);
        assert_eq!(rr.total_submitted(), 3);
    }

    #[test]
    fn skip_counters_increment_for_passed_over_entries() {
        let mut rr = RequestsRegister::new();
        rr.push(req(0, 0), BankId::new(0), 0);
        rr.push(req(1, 0), BankId::new(1), 4);
        rr.push(req(2, 0), BankId::new(2), 8);
        // Taking position 2 skips over positions 0 and 1.
        rr.take(2);
        assert_eq!(rr.max_pending_skips(), 1);
        // Taking position 1 skips over position 0 again.
        rr.take(1);
        assert_eq!(rr.max_pending_skips(), 2);
        assert!(rr.iter().next().unwrap().skips == 2);
    }

    #[test]
    fn empty_register_reports_zero() {
        let rr = RequestsRegister::new();
        assert!(rr.is_empty());
        assert_eq!(rr.max_pending_skips(), 0);
        assert_eq!(rr.peak_occupancy(), 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn take_out_of_range_panics() {
        let mut rr = RequestsRegister::new();
        rr.push(req(0, 0), BankId::new(0), 0);
        rr.take(3);
    }
}
