//! Conflict-Free DRAM System (CFDS) building blocks — the paper's
//! contribution (§5, §6).
//!
//! The CFDS keeps the SRAM/MMA structure of the RADS baseline but interposes a
//! *DRAM Scheduler Subsystem* between the MMA and a banked DRAM, so that
//! transfers can use a granularity of `b` cells (instead of the full DRAM
//! random-access time worth of `B` cells) while still never hitting a busy
//! bank:
//!
//! * [`RequestsRegister`] / [`OngoingRequestsRegister`] / [`DramSchedulerAlgorithm`]
//!   — the issue-queue-like reorder stage (§5.3, §8.1).
//! * [`DramSchedulerSubsystem`] — the assembled DSS: submits MMA requests,
//!   assigns block ordinals and banks, and issues the oldest conflict-free
//!   request every `b` slots.
//! * [`LatencyRegister`] — the extra fixed delay that restores exact in-order
//!   delivery to the arbiter despite the reordering (§5.4).
//! * [`RenamingTable`] — logical→physical queue renaming that lets any logical
//!   queue use the whole DRAM despite the static queue→group assignment (§6).
//! * [`sizing`] — equations (1)–(4): RR size, worst-case skips, latency and
//!   SRAM size.
//!
//! # Example
//!
//! ```
//! use cfds::{DramSchedulerSubsystem, DsaPolicy};
//! use dram_sim::{AddressMapper, InterleavingConfig};
//! use pktbuf_model::PhysicalQueueId;
//!
//! let mapper = AddressMapper::new(InterleavingConfig::new(256, 8, 512).unwrap());
//! let mut dss = DramSchedulerSubsystem::new(mapper, 8, DsaPolicy::OldestFirst);
//! let q = PhysicalQueueId::new(3);
//! dss.submit_read(q, 0);
//! dss.submit_read(q, 0);
//! // Consecutive blocks of one queue live in different banks of its group,
//! // so both issue back to back without a conflict.
//! assert!(dss.issue(0).is_some());
//! assert!(dss.issue(4).is_some());
//! assert_eq!(dss.stats().stalls, 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod dsa;
mod latency;
mod orr;
mod renaming;
mod rr;
mod scheduler;
pub mod sizing;

pub use dsa::{
    DramSchedulerAlgorithm, DsaDispatch, DsaPolicy, FifoOnlyDsa, OldestFirstDsa, RandomEligibleDsa,
};
pub use latency::LatencyRegister;
pub use orr::OngoingRequestsRegister;
pub use renaming::{RenamingError, RenamingTable};
pub use rr::{RequestsRegister, RrEntry};
pub use scheduler::{DramSchedulerSubsystem, DssStats, IssuedRequest};
