//! The latency shift register (§5.4).

use pktbuf_model::LogicalQueueId;

/// A fixed-delay line inserted between the MMA lookahead and the SRAM read.
///
/// Because the DSS may delay and reorder the MMA's replenishment requests, a
/// request leaving the lookahead might ask for a cell whose block has not been
/// written into the SRAM yet. Delaying every grant by the worst-case DSS delay
/// (equation (3)) restores the zero-miss guarantee at the price of a fixed
/// additional latency and a slightly larger SRAM.
#[derive(Debug, Clone)]
pub struct LatencyRegister {
    /// Fixed ring: the delay line fills once and then every push overwrites
    /// the head slot in place (no deque push/pop pair on the slot path).
    slots: Box<[Option<LogicalQueueId>]>,
    head: usize,
    len: usize,
    capacity: usize,
}

impl LatencyRegister {
    /// Creates a delay line of `capacity` slots. A capacity of zero forwards
    /// requests immediately (the RADS degenerate case).
    pub fn new(capacity: usize) -> Self {
        LatencyRegister {
            slots: vec![None; capacity].into_boxed_slice(),
            head: 0,
            len: 0,
            capacity,
        }
    }

    /// Length of the delay line in slots.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of requests currently in flight inside the register.
    pub fn in_flight(&self) -> usize {
        self.slots.iter().filter(|r| r.is_some()).count()
    }

    /// Fast-forwards the delay line by `slots` idle pushes at once: exactly
    /// equivalent to calling [`LatencyRegister::push`]`(None)` `slots` times
    /// while **no request is in flight**, but O(1). With an all-idle line,
    /// pushes only rotate the ring cursor (and grow the fill length before
    /// the line first fills); every stored entry is already `None`.
    ///
    /// # Panics
    ///
    /// Panics (debug builds) if any request is in flight.
    pub fn advance_idle(&mut self, slots: u64) {
        if self.capacity == 0 {
            return;
        }
        debug_assert_eq!(
            self.in_flight(),
            0,
            "advance_idle on a latency register with requests in flight"
        );
        let fill = ((self.capacity - self.len) as u64).min(slots) as usize;
        self.len += fill;
        let remaining = slots - fill as u64;
        self.head = (self.head + (remaining % self.capacity as u64) as usize) % self.capacity;
    }

    /// Pushes the request leaving the lookahead this slot and returns the one
    /// that completed its extra delay (if the register is full).
    pub fn push(&mut self, request: Option<LogicalQueueId>) -> Option<LogicalQueueId> {
        if self.capacity == 0 {
            return request;
        }
        if self.len < self.capacity {
            let mut at = self.head + self.len;
            if at >= self.capacity {
                at -= self.capacity;
            }
            self.slots[at] = request;
            self.len += 1;
            None
        } else {
            let out = std::mem::replace(&mut self.slots[self.head], request);
            self.head += 1;
            if self.head >= self.capacity {
                self.head = 0;
            }
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q(i: u32) -> LogicalQueueId {
        LogicalQueueId::new(i)
    }

    #[test]
    fn zero_capacity_is_passthrough() {
        let mut l = LatencyRegister::new(0);
        assert_eq!(l.push(Some(q(3))), Some(q(3)));
        assert_eq!(l.push(None), None);
        assert_eq!(l.capacity(), 0);
        assert_eq!(l.in_flight(), 0);
    }

    #[test]
    fn requests_emerge_after_exactly_capacity_slots() {
        let mut l = LatencyRegister::new(3);
        assert_eq!(l.push(Some(q(1))), None);
        assert_eq!(l.push(Some(q(2))), None);
        assert_eq!(l.push(None), None);
        assert_eq!(l.in_flight(), 2);
        assert_eq!(l.push(Some(q(3))), Some(q(1)));
        assert_eq!(l.push(None), Some(q(2)));
        assert_eq!(l.push(None), None); // the idle slot emerges
        assert_eq!(l.push(None), Some(q(3)));
    }
}
