//! The DRAM Scheduler Subsystem (DSS).

use crate::dsa::{DramSchedulerAlgorithm, DsaDispatch, DsaPolicy};
use crate::orr::OngoingRequestsRegister;
use crate::rr::{RequestsRegister, RrEntry};
use dram_sim::{AccessKind, AddressMapper, BankId, DramRequest};
use pktbuf_model::PhysicalQueueId;

/// A request the DSS has decided to issue to the DRAM in the current issue
/// period.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IssuedRequest {
    /// The request (queue, ordinal, kind).
    pub request: DramRequest,
    /// Bank the access goes to.
    pub bank: BankId,
    /// Slot at which the request entered the RR.
    pub submitted_slot: u64,
    /// Slot at which the DSS issued it.
    pub issued_slot: u64,
    /// Times it was passed over by younger requests.
    pub skips: u32,
}

impl IssuedRequest {
    /// Queueing delay experienced inside the DSS, in slots.
    pub fn delay_slots(&self) -> u64 {
        self.issued_slot - self.submitted_slot
    }
}

/// Aggregate DSS statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DssStats {
    /// Requests issued.
    pub issued: u64,
    /// Issue opportunities with a non-empty RR in which no eligible request
    /// was found (never happens with the paper's sizing and the oldest-first
    /// DSA; counted for the ablation policies).
    pub stalls: u64,
    /// Largest per-request delay observed (slots).
    pub max_delay_slots: u64,
    /// Largest skip count observed.
    pub max_skips: u32,
    /// Sum of delays, for mean computation.
    pub total_delay_slots: u64,
}

impl DssStats {
    /// Mean queueing delay in slots.
    pub fn mean_delay_slots(&self) -> f64 {
        if self.issued == 0 {
            0.0
        } else {
            self.total_delay_slots as f64 / self.issued as f64
        }
    }
}

/// The DRAM Scheduler Subsystem (§5.3): hides the banked organisation from the
/// MMA by buffering its requests in the Requests Register and issuing them —
/// possibly out of order — so that no bank is ever accessed while busy.
pub struct DramSchedulerSubsystem {
    rr: RequestsRegister,
    orr: OngoingRequestsRegister,
    dsa: DsaDispatch,
    mapper: AddressMapper,
    /// Next block ordinal a *read* of each physical queue will fetch.
    next_read_ordinal: Vec<u64>,
    /// Next block ordinal a *write* of each physical queue will create.
    next_write_ordinal: Vec<u64>,
    stats: DssStats,
}

impl std::fmt::Debug for DramSchedulerSubsystem {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DramSchedulerSubsystem")
            .field("dsa", &self.dsa.name())
            .field("rr_len", &self.rr.len())
            .field("locked_banks", &self.orr.locked_banks())
            .field("stats", &self.stats)
            .finish()
    }
}

impl DramSchedulerSubsystem {
    /// Creates a DSS over the given block-cyclic mapping.
    ///
    /// `banks_per_group` is `B/b`; the ORR remembers the last `B/b − 1`
    /// issues.
    pub fn new(mapper: AddressMapper, banks_per_group: usize, policy: DsaPolicy) -> Self {
        let nq = mapper.config().num_physical_queues();
        DramSchedulerSubsystem {
            rr: RequestsRegister::new(),
            orr: OngoingRequestsRegister::new(banks_per_group.saturating_sub(1)),
            dsa: policy.instantiate_dispatch(),
            mapper,
            next_read_ordinal: vec![0; nq],
            next_write_ordinal: vec![0; nq],
            stats: DssStats::default(),
        }
    }

    /// Submits a read (DRAM → SRAM) request for the next pending block of
    /// `queue`. The block ordinal and hence the bank are assigned here so that
    /// two in-flight reads of the same queue target consecutive banks.
    pub fn submit_read(&mut self, queue: PhysicalQueueId, now: u64) -> DramRequest {
        let ordinal = self.next_read_ordinal[queue.as_usize()];
        self.next_read_ordinal[queue.as_usize()] += 1;
        let request = DramRequest::read(queue, ordinal, now);
        let bank = self.mapper.bank_for(queue, ordinal);
        self.rr.push(request, bank, now);
        request
    }

    /// Submits a write (SRAM → DRAM) request for the next block of `queue`.
    pub fn submit_write(&mut self, queue: PhysicalQueueId, now: u64) -> DramRequest {
        let ordinal = self.next_write_ordinal[queue.as_usize()];
        self.next_write_ordinal[queue.as_usize()] += 1;
        let request = DramRequest::write(queue, ordinal, now);
        let bank = self.mapper.bank_for(queue, ordinal);
        self.rr.push(request, bank, now);
        request
    }

    /// Aligns the ordinal counters of `queue` with externally known DRAM
    /// state (used when a buffer is initialised with pre-loaded queues).
    pub fn set_ordinals(&mut self, queue: PhysicalQueueId, next_read: u64, next_write: u64) {
        self.next_read_ordinal[queue.as_usize()] = next_read;
        self.next_write_ordinal[queue.as_usize()] = next_write;
    }

    /// One issue opportunity (every `b` slots): the DSA selects the oldest
    /// pending request whose bank is not locked, the request leaves the RR and
    /// its bank is recorded in the ORR.
    ///
    /// Returns `None` when the RR is empty or (for the ablation policies) when
    /// no pending request is eligible; the lock window still advances.
    pub fn issue(&mut self, now: u64) -> Option<IssuedRequest> {
        match self.dsa.choose(&self.rr, &self.orr) {
            Some(position) => {
                let RrEntry {
                    request,
                    bank,
                    submitted_slot,
                    skips,
                } = self.rr.take(position);
                self.orr.record_issue(bank);
                let issued = IssuedRequest {
                    request,
                    bank,
                    submitted_slot,
                    issued_slot: now,
                    skips,
                };
                self.stats.issued += 1;
                self.stats.max_delay_slots = self.stats.max_delay_slots.max(issued.delay_slots());
                self.stats.total_delay_slots += issued.delay_slots();
                self.stats.max_skips = self.stats.max_skips.max(skips);
                Some(issued)
            }
            None => {
                if !self.rr.is_empty() {
                    self.stats.stalls += 1;
                }
                self.orr.record_idle();
                None
            }
        }
    }

    /// Number of requests currently waiting in the RR.
    pub fn pending(&self) -> usize {
        self.rr.len()
    }

    /// Fast-forwards `opportunities` issue opportunities in which the RR is
    /// empty: exactly equivalent to that many [`DramSchedulerSubsystem::issue`]
    /// calls returning `None` (each of which only ages the ORR lock window —
    /// an empty RR never counts a stall), but bounded O(lock window) work.
    ///
    /// # Panics
    ///
    /// Panics (debug builds) if the RR is not empty.
    pub fn advance_idle(&mut self, opportunities: u64) {
        debug_assert!(
            self.rr.is_empty(),
            "advance_idle on a DSS with pending requests"
        );
        self.orr.advance_idle(opportunities);
    }

    /// Largest RR occupancy observed (to check equation (1) empirically).
    pub fn peak_rr_occupancy(&self) -> usize {
        self.rr.peak_occupancy()
    }

    /// Aggregate statistics.
    pub fn stats(&self) -> &DssStats {
        &self.stats
    }

    /// Banks currently locked by in-flight accesses.
    pub fn locked_banks(&self) -> Vec<BankId> {
        self.orr.locked_banks()
    }

    /// The mapper used for bank assignment.
    pub fn mapper(&self) -> &AddressMapper {
        &self.mapper
    }

    /// Name of the configured DSA policy.
    pub fn policy_name(&self) -> &'static str {
        self.dsa.name()
    }

    /// Kinds of the pending requests, oldest first (for debugging/tests).
    pub fn pending_kinds(&self) -> Vec<AccessKind> {
        self.rr.iter().map(|e| e.request.kind).collect() // analyze: allow(hotpath-alloc) — debugging/test accessor, never called from the slot loop
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dram_sim::InterleavingConfig;

    fn dss(policy: DsaPolicy) -> DramSchedulerSubsystem {
        // 16 banks, 4 per group (B/b = 4), 8 physical queues.
        let mapper = AddressMapper::new(InterleavingConfig::new(16, 4, 8).unwrap());
        DramSchedulerSubsystem::new(mapper, 4, policy)
    }

    #[test]
    fn consecutive_reads_of_one_queue_issue_back_to_back() {
        let mut d = dss(DsaPolicy::OldestFirst);
        let q = PhysicalQueueId::new(1);
        for i in 0..4 {
            d.submit_read(q, i);
        }
        // All four target distinct banks of the queue's group, so they issue
        // on four consecutive opportunities with no stall.
        let mut banks = Vec::new();
        for t in 0..4 {
            let issued = d.issue(t * 4).expect("eligible request");
            banks.push(issued.bank);
        }
        banks.dedup();
        assert_eq!(banks.len(), 4);
        assert_eq!(d.stats().stalls, 0);
        assert_eq!(d.stats().issued, 4);
        assert_eq!(d.pending(), 0);
    }

    #[test]
    fn same_bank_requests_are_reordered_around() {
        let mut d = dss(DsaPolicy::OldestFirst);
        let qa = PhysicalQueueId::new(0); // group 0
        let qb = PhysicalQueueId::new(4); // also group 0 (8 queues, 4 groups)
                                          // Both queues start at ordinal 0 → both target bank 0 of group 0.
        d.submit_read(qa, 0);
        d.submit_read(qb, 1);
        // And a queue in another group.
        let qc = PhysicalQueueId::new(1);
        d.submit_read(qc, 2);
        let first = d.issue(0).unwrap();
        assert_eq!(first.request.queue, qa);
        // qb's bank is now locked; the DSA skips to qc.
        let second = d.issue(4).unwrap();
        assert_eq!(second.request.queue, qc);
        assert_eq!(second.skips, 0);
        // qb had to wait and was skipped once.
        let third_opportunity = d.issue(8);
        // Bank 0 is still locked (lock window = 3 opportunities), so qb may
        // still be ineligible; keep issuing until it drains.
        let mut qb_issued = third_opportunity;
        let mut t = 12;
        while qb_issued.is_none() {
            qb_issued = d.issue(t);
            t += 4;
        }
        let qb_issued = qb_issued.unwrap();
        assert_eq!(qb_issued.request.queue, qb);
        assert!(qb_issued.skips >= 1);
        assert!(d.stats().max_skips >= 1);
    }

    #[test]
    fn fifo_policy_stalls_where_oldest_first_does_not() {
        let mut fifo = dss(DsaPolicy::FifoOnly);
        let qa = PhysicalQueueId::new(0);
        let qb = PhysicalQueueId::new(4);
        let qc = PhysicalQueueId::new(1);
        fifo.submit_read(qa, 0);
        fifo.submit_read(qb, 1);
        fifo.submit_read(qc, 2);
        fifo.issue(0).unwrap();
        // Head of RR is qb whose bank is locked → stall even though qc could go.
        assert!(fifo.issue(4).is_none());
        assert_eq!(fifo.stats().stalls, 1);
    }

    #[test]
    fn write_and_read_ordinals_are_independent() {
        let mut d = dss(DsaPolicy::OldestFirst);
        let q = PhysicalQueueId::new(2);
        let w0 = d.submit_write(q, 0);
        let w1 = d.submit_write(q, 1);
        let r0 = d.submit_read(q, 2);
        assert_eq!(w0.block_ordinal, 0);
        assert_eq!(w1.block_ordinal, 1);
        assert_eq!(r0.block_ordinal, 0);
        assert_eq!(d.pending_kinds().len(), 3);
        d.set_ordinals(q, 5, 7);
        assert_eq!(d.submit_read(q, 3).block_ordinal, 5);
        assert_eq!(d.submit_write(q, 4).block_ordinal, 7);
    }

    #[test]
    fn issue_on_empty_rr_is_not_a_stall() {
        let mut d = dss(DsaPolicy::OldestFirst);
        assert!(d.issue(0).is_none());
        assert_eq!(d.stats().stalls, 0);
        assert_eq!(d.stats().mean_delay_slots(), 0.0);
        assert!(d.locked_banks().is_empty());
        assert_eq!(d.policy_name(), "oldest-first");
        assert!(format!("{d:?}").contains("oldest-first"));
    }

    #[test]
    fn delay_statistics_accumulate() {
        let mut d = dss(DsaPolicy::OldestFirst);
        let q = PhysicalQueueId::new(3);
        d.submit_read(q, 0);
        d.submit_read(q, 0);
        d.issue(8).unwrap();
        d.issue(12).unwrap();
        assert_eq!(d.stats().issued, 2);
        assert_eq!(d.stats().max_delay_slots, 12);
        assert!((d.stats().mean_delay_slots() - 10.0).abs() < 1e-12);
        assert_eq!(d.peak_rr_occupancy(), 2);
    }
}
