//! The Ongoing Requests Register (ORR).

use dram_sim::BankId;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// The Ongoing Requests Register: a shift register holding the identifiers of
/// the banks whose accesses are still in flight (§5.3).
///
/// An access occupies its bank for a fixed number of issue opportunities, so
/// the register shifts by one position at *every* opportunity — recording the
/// issued bank, or an empty slot when nothing was issued — and a bank is
/// locked while its identifier is anywhere in the register.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct OngoingRequestsRegister {
    slots: VecDeque<Option<BankId>>,
    capacity: usize,
    /// In-window issue count per bank index (lazily grown), so `is_locked` —
    /// called once per pending request per issue opportunity by the DSA — is
    /// an O(1) lookup instead of a scan over the shift register.
    lock_counts: Vec<u8>,
}

// The lock-count cache is derived state and grows lazily, so two registers
// with identical shift-register contents must compare equal regardless of
// how far their caches have grown.
impl PartialEq for OngoingRequestsRegister {
    fn eq(&self, other: &Self) -> bool {
        self.slots == other.slots && self.capacity == other.capacity
    }
}

impl Eq for OngoingRequestsRegister {}

impl OngoingRequestsRegister {
    /// Creates a register that remembers the last `capacity` issue
    /// opportunities (`capacity` = lock window − 1, e.g. `B/b − 1` when one
    /// request is issued per `b` slots). A capacity of zero (the `b = B`
    /// degenerate case) locks nothing.
    pub fn new(capacity: usize) -> Self {
        OngoingRequestsRegister {
            slots: VecDeque::with_capacity(capacity + 1),
            capacity,
            lock_counts: Vec::new(),
        }
    }

    /// Number of issue opportunities the register remembers.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Whether `bank` is currently locked.
    pub fn is_locked(&self, bank: BankId) -> bool {
        self.lock_counts
            .get(bank.index())
            .is_some_and(|count| *count > 0)
    }

    fn shift(&mut self, entry: Option<BankId>) {
        if self.capacity == 0 {
            return;
        }
        if let Some(bank) = entry {
            let idx = bank.index();
            if idx >= self.lock_counts.len() {
                self.lock_counts.resize(idx + 1, 0);
            }
            self.lock_counts[idx] += 1;
        }
        self.slots.push_back(entry);
        if self.slots.len() > self.capacity {
            if let Some(Some(expired)) = self.slots.pop_front() {
                self.lock_counts[expired.index()] -= 1;
            }
        }
    }

    /// Records that an access to `bank` was issued at this opportunity.
    pub fn record_issue(&mut self, bank: BankId) {
        self.shift(Some(bank));
    }

    /// Records an issue opportunity in which nothing was issued. Existing
    /// locks still age by one position.
    pub fn record_idle(&mut self) {
        self.shift(None);
    }

    /// Records `opportunities` consecutive idle issue opportunities at once:
    /// exactly equivalent to that many [`OngoingRequestsRegister::record_idle`]
    /// calls. After `capacity` idle opportunities the register is a fixed
    /// point (all positions empty), so at most `capacity` shifts are applied
    /// — O(window), independent of `opportunities`.
    pub fn advance_idle(&mut self, opportunities: u64) {
        for _ in 0..opportunities.min(self.capacity as u64) {
            self.record_idle();
        }
    }

    /// Banks currently locked, oldest first.
    pub fn locked_banks(&self) -> Vec<BankId> {
        self.slots.iter().copied().flatten().collect() // analyze: allow(hotpath-alloc) — diagnostic accessor for tests, never called from the slot loop
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn locks_last_n_banks() {
        let mut orr = OngoingRequestsRegister::new(3);
        for i in 0..5u32 {
            orr.record_issue(BankId::new(i));
        }
        assert!(!orr.is_locked(BankId::new(0)));
        assert!(!orr.is_locked(BankId::new(1)));
        assert!(orr.is_locked(BankId::new(2)));
        assert!(orr.is_locked(BankId::new(3)));
        assert!(orr.is_locked(BankId::new(4)));
        assert_eq!(orr.locked_banks().len(), 3);
        assert_eq!(orr.capacity(), 3);
    }

    #[test]
    fn idle_opportunities_age_but_do_not_erase_fresh_locks() {
        let mut orr = OngoingRequestsRegister::new(3);
        orr.record_issue(BankId::new(7));
        // One idle opportunity: the lock on bank 7 is only 1 of 3 positions
        // old and must still hold.
        orr.record_idle();
        assert!(orr.is_locked(BankId::new(7)));
        orr.record_idle();
        assert!(orr.is_locked(BankId::new(7)));
        // After three further opportunities the access has completed.
        orr.record_idle();
        assert!(!orr.is_locked(BankId::new(7)));
        assert!(orr.locked_banks().is_empty());
    }

    #[test]
    fn mixed_issues_and_idles_expire_in_order() {
        let mut orr = OngoingRequestsRegister::new(2);
        orr.record_issue(BankId::new(1));
        orr.record_idle();
        orr.record_issue(BankId::new(2));
        // Bank 1 was issued 2 opportunities ago and has now expired; bank 2 is
        // fresh.
        assert!(!orr.is_locked(BankId::new(1)));
        assert!(orr.is_locked(BankId::new(2)));
        assert_eq!(orr.locked_banks(), vec![BankId::new(2)]);
    }

    #[test]
    fn zero_capacity_never_locks() {
        let mut orr = OngoingRequestsRegister::new(0);
        orr.record_issue(BankId::new(1));
        assert!(!orr.is_locked(BankId::new(1)));
        assert!(orr.locked_banks().is_empty());
        orr.record_idle();
    }
}
