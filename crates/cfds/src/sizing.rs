//! CFDS dimensioning formulas (equations (1)–(4) of §5, reconstructed).
//!
//! The scanned equations are partly garbled; the reconstructions below follow
//! the surrounding prose and are cross-checked against Table 2 (the `table2`
//! binary in the `bench` crate prints the reproduced column next to the
//! paper's, including the residual discrepancies at `b = B/2` and `b = B`)
//! and against the empirical maxima measured by the slot-level simulator.

use mma::sizing::rads_sram_size_cells;
use pktbuf_model::CfdsConfig;

/// Requests Register size (equation (1)): the DSS manages reads and writes of
/// `Q` logical queues (hence `2Q` request streams) spread over `G` groups of
/// `B/b` banks; the bound is `(2Q/G) · (B/b) = 2·Q·(B/b)²/M` entries.
///
/// The degenerate `b = B` configuration needs no reordering at all (every
/// group is a single bank and the MMA already spaces accesses by `B` slots),
/// so its RR size is zero.
pub fn rr_size(cfg: &CfdsConfig) -> usize {
    let bpg = cfg.banks_per_group();
    if bpg <= 1 {
        return 0;
    }
    let two_q = 2 * cfg.num_queues;
    let per_group = two_q.div_ceil(cfg.num_groups());
    per_group * bpg
}

/// Maximum number of times a request can be passed over by younger requests
/// (equation (2)): every older request to the same bank locks it for
/// `B/b − 1` further issue opportunities, and at most `2Q/G` requests can be
/// heading to any one bank.
pub fn max_skips(cfg: &CfdsConfig) -> usize {
    let bpg = cfg.banks_per_group();
    if bpg <= 1 {
        return 0;
    }
    let per_group = (2 * cfg.num_queues).div_ceil(cfg.num_groups());
    per_group * (bpg - 1)
}

/// Extra delay of the latency register in slots (equation (3)): the time to
/// drain the RR in FIFO order plus the worst-case skipping, with one issue
/// opportunity every `b` slots, plus the difference between the real DRAM
/// access time (`B` slots) and the `b` slots the MMA already accounts for.
pub fn latency_slots(cfg: &CfdsConfig) -> usize {
    if cfg.banks_per_group() <= 1 {
        return 0;
    }
    (rr_size(cfg) + max_skips(cfg)) * cfg.granularity + (cfg.rads_granularity - cfg.granularity)
}

/// Head-SRAM size in cells (equation (4)): the RADS requirement at granularity
/// `b` plus one cell per slot of reorder latency (cells delivered to the SRAM
/// before the latency register lets the arbiter consume them).
pub fn sram_cells(cfg: &CfdsConfig, lookahead: usize) -> usize {
    rads_sram_size_cells(lookahead, cfg.num_queues, cfg.granularity) + latency_slots(cfg)
}

/// Total scheduler-visible delay in slots: the MMA lookahead plus the latency
/// register.
pub fn total_delay_slots(cfg: &CfdsConfig, lookahead: usize) -> usize {
    lookahead + latency_slots(cfg)
}

/// Total scheduler-visible delay in seconds.
pub fn total_delay_seconds(cfg: &CfdsConfig, lookahead: usize) -> f64 {
    total_delay_slots(cfg, lookahead) as f64 * cfg.line_rate.slot_duration().as_ns() * 1e-9
}

/// Time available to the RR scheduling logic to select one request, in
/// nanoseconds (Table 2): one selection every `b` slots.
pub fn scheduling_time_ns(cfg: &CfdsConfig) -> f64 {
    cfg.granularity as f64 * cfg.line_rate.slot_duration().as_ns()
}

/// A row of Table 2 for a given configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Table2Row {
    /// CFDS granularity `b`.
    pub granularity: usize,
    /// Requests Register size (entries).
    pub rr_size: usize,
    /// Time available to schedule one request (ns).
    pub scheduling_time_ns: f64,
}

/// Computes the Table 2 row for `cfg`.
pub fn table2_row(cfg: &CfdsConfig) -> Table2Row {
    Table2Row {
        granularity: cfg.granularity,
        rr_size: rr_size(cfg),
        scheduling_time_ns: scheduling_time_ns(cfg),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pktbuf_model::LineRate;

    fn oc3072(b: usize) -> CfdsConfig {
        CfdsConfig::builder()
            .line_rate(LineRate::Oc3072)
            .num_queues(512)
            .granularity(b)
            .rads_granularity(32)
            .num_banks(256)
            .build()
            .unwrap()
    }

    fn oc768(b: usize) -> CfdsConfig {
        CfdsConfig::builder()
            .line_rate(LineRate::Oc768)
            .num_queues(128)
            .granularity(b)
            .rads_granularity(8)
            .num_banks(256)
            .build()
            .unwrap()
    }

    #[test]
    fn table2_oc3072_rr_sizes() {
        // Paper Table 2 (OC-3072, Q=512, B=32, M=256): 64, 256, 1024, 4096
        // for b = 8, 4, 2, 1; 0 for b = 32.
        assert_eq!(rr_size(&oc3072(32)), 0);
        assert_eq!(rr_size(&oc3072(8)), 64);
        assert_eq!(rr_size(&oc3072(4)), 256);
        assert_eq!(rr_size(&oc3072(2)), 1024);
        assert_eq!(rr_size(&oc3072(1)), 4096);
    }

    #[test]
    fn table2_oc3072_scheduling_times() {
        // One selection every b slots of 3.2 ns.
        assert!((scheduling_time_ns(&oc3072(16)) - 51.2).abs() < 1e-9);
        assert!((scheduling_time_ns(&oc3072(8)) - 25.6).abs() < 1e-9);
        assert!((scheduling_time_ns(&oc3072(4)) - 12.8).abs() < 1e-9);
        assert!((scheduling_time_ns(&oc3072(1)) - 3.2).abs() < 1e-9);
    }

    #[test]
    fn table2_oc768_rr_sizes() {
        // Paper Table 2 (OC-768, Q=128, B=8, M=256): 16 and 64 for b = 2, 1.
        assert_eq!(rr_size(&oc768(2)), 16);
        assert_eq!(rr_size(&oc768(1)), 64);
        assert_eq!(rr_size(&oc768(8)), 0);
        assert!((scheduling_time_ns(&oc768(1)) - 12.8).abs() < 1e-9);
    }

    #[test]
    fn latency_and_sram_grow_as_b_shrinks_past_the_optimum() {
        // Reorder-related terms grow as b shrinks…
        assert!(latency_slots(&oc3072(1)) > latency_slots(&oc3072(4)));
        assert!(max_skips(&oc3072(1)) > max_skips(&oc3072(8)));
        // …while the lookahead-related SRAM term shrinks, creating the
        // optimum the paper discusses in §8.3.
        let full = |b: usize| {
            let cfg = oc3072(b);
            sram_cells(&cfg, cfg.min_lookahead())
        };
        let s32 = full(32);
        let s4 = full(4);
        let s1 = full(1);
        assert!(s4 < s32, "CFDS (b=4) must need less SRAM than RADS (b=32)");
        assert!(s1 > s4, "too small a granularity pays for reordering");
    }

    #[test]
    fn cfds_delay_is_an_order_of_magnitude_below_rads() {
        // §10: CFDS meets OC-3072 with ~10 µs delay, RADS needs > 50 µs.
        let cfds = oc3072(4);
        let cfds_delay = total_delay_seconds(&cfds, cfds.min_lookahead());
        let rads = oc3072(32);
        let rads_delay = total_delay_seconds(&rads, rads.min_lookahead());
        assert!(cfds_delay < 1.5e-5, "CFDS delay {cfds_delay}");
        assert!(rads_delay > 4.0e-5, "RADS delay {rads_delay}");
        assert!(rads_delay / cfds_delay > 3.0);
    }

    #[test]
    fn table2_row_bundles_fields() {
        let row = table2_row(&oc3072(4));
        assert_eq!(row.granularity, 4);
        assert_eq!(row.rr_size, 256);
        assert!((row.scheduling_time_ns - 12.8).abs() < 1e-9);
    }

    #[test]
    fn degenerate_single_bank_group() {
        let cfg = oc3072(32);
        assert_eq!(max_skips(&cfg), 0);
        assert_eq!(latency_slots(&cfg), 0);
        assert_eq!(total_delay_slots(&cfg, 100), 100);
    }
}
