//! DRAM Scheduler Algorithms (the selection policy of the DSS).

use crate::orr::OngoingRequestsRegister;
use crate::rr::RequestsRegister;
use serde::{Deserialize, Serialize};

/// A DRAM Scheduler Algorithm selects which pending request of the Requests
/// Register to issue next, subject to the locked banks in the Ongoing
/// Requests Register.
pub trait DramSchedulerAlgorithm {
    /// Returns the position (0 = oldest) of the entry to issue, or `None` when
    /// no pending request targets an unlocked bank (or the RR is empty).
    fn choose(&mut self, rr: &RequestsRegister, orr: &OngoingRequestsRegister) -> Option<usize>;

    /// Policy name for reports and ablations.
    fn name(&self) -> &'static str;
}

/// Enumerates the available DSA policies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DsaPolicy {
    /// The paper's policy: the *oldest* request addressed to an unlocked bank
    /// (wake-up/select, like a superscalar issue queue).
    OldestFirst,
    /// Strict FIFO: only the oldest request may issue; if its bank is locked
    /// the opportunity is wasted. This is the no-reordering ablation baseline.
    FifoOnly,
    /// Any eligible request, chosen pseudo-randomly (ablation: shows that age
    /// ordering, not just eligibility, is what bounds the delay).
    RandomEligible {
        /// Seed of the small xorshift generator used for the choice.
        seed: u64,
    },
}

impl DsaPolicy {
    /// Instantiates the policy behind a box (legacy form; the DSS itself
    /// dispatches through [`DsaPolicy::instantiate_dispatch`]).
    pub fn instantiate(self) -> Box<dyn DramSchedulerAlgorithm + Send> {
        match self {
            DsaPolicy::OldestFirst => Box::new(OldestFirstDsa),
            DsaPolicy::FifoOnly => Box::new(FifoOnlyDsa),
            DsaPolicy::RandomEligible { seed } => Box::new(RandomEligibleDsa::new(seed)),
        }
    }

    /// Instantiates the enum-dispatched form used on the DSS issue path.
    pub fn instantiate_dispatch(self) -> DsaDispatch {
        match self {
            DsaPolicy::OldestFirst => DsaDispatch::OldestFirst(OldestFirstDsa),
            DsaPolicy::FifoOnly => DsaDispatch::FifoOnly(FifoOnlyDsa),
            DsaPolicy::RandomEligible { seed } => {
                DsaDispatch::RandomEligible(RandomEligibleDsa::new(seed))
            }
        }
    }
}

/// The DSA policies as a closed enum: `choose` runs twice per granularity
/// period on the DSS issue path, where a three-way predicted branch beats a
/// `Box<dyn>` vtable call.
#[derive(Debug, Clone)]
pub enum DsaDispatch {
    /// See [`OldestFirstDsa`].
    OldestFirst(OldestFirstDsa),
    /// See [`FifoOnlyDsa`].
    FifoOnly(FifoOnlyDsa),
    /// See [`RandomEligibleDsa`].
    RandomEligible(RandomEligibleDsa),
}

impl DramSchedulerAlgorithm for DsaDispatch {
    #[inline]
    fn choose(&mut self, rr: &RequestsRegister, orr: &OngoingRequestsRegister) -> Option<usize> {
        match self {
            DsaDispatch::OldestFirst(d) => d.choose(rr, orr),
            DsaDispatch::FifoOnly(d) => d.choose(rr, orr),
            DsaDispatch::RandomEligible(d) => d.choose(rr, orr),
        }
    }

    fn name(&self) -> &'static str {
        match self {
            DsaDispatch::OldestFirst(d) => d.name(),
            DsaDispatch::FifoOnly(d) => d.name(),
            DsaDispatch::RandomEligible(d) => d.name(),
        }
    }
}

/// Oldest-ready-first selection (the paper's DSA).
#[derive(Debug, Clone, Copy, Default)]
pub struct OldestFirstDsa;

impl DramSchedulerAlgorithm for OldestFirstDsa {
    fn choose(&mut self, rr: &RequestsRegister, orr: &OngoingRequestsRegister) -> Option<usize> {
        rr.iter().position(|e| !orr.is_locked(e.bank))
    }

    fn name(&self) -> &'static str {
        "oldest-first"
    }
}

/// Strict-FIFO selection (no reordering).
#[derive(Debug, Clone, Copy, Default)]
pub struct FifoOnlyDsa;

impl DramSchedulerAlgorithm for FifoOnlyDsa {
    fn choose(&mut self, rr: &RequestsRegister, orr: &OngoingRequestsRegister) -> Option<usize> {
        let oldest = rr.iter().next()?;
        if orr.is_locked(oldest.bank) {
            None
        } else {
            Some(0)
        }
    }

    fn name(&self) -> &'static str {
        "fifo-only"
    }
}

/// Uniform choice among eligible requests.
#[derive(Debug, Clone)]
pub struct RandomEligibleDsa {
    state: u64,
}

impl RandomEligibleDsa {
    /// Creates the policy with a non-zero seed.
    pub fn new(seed: u64) -> Self {
        RandomEligibleDsa { state: seed.max(1) }
    }

    fn next_u64(&mut self) -> u64 {
        // xorshift64*: cheap, deterministic, no external dependency.
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }
}

impl DramSchedulerAlgorithm for RandomEligibleDsa {
    fn choose(&mut self, rr: &RequestsRegister, orr: &OngoingRequestsRegister) -> Option<usize> {
        // Two passes instead of materialising the eligible set: count, then
        // walk to the chosen one. Same pick as indexing the collected list
        // (the RNG is only advanced when at least one entry is eligible).
        let eligible = rr.iter().filter(|e| !orr.is_locked(e.bank)).count();
        if eligible == 0 {
            return None;
        }
        let pick = (self.next_u64() % eligible as u64) as usize;
        rr.iter()
            .enumerate()
            .filter(|(_, e)| !orr.is_locked(e.bank))
            .nth(pick)
            .map(|(i, _)| i)
    }

    fn name(&self) -> &'static str {
        "random-eligible"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dram_sim::{BankId, DramRequest};
    use pktbuf_model::PhysicalQueueId;

    fn rr_with(banks: &[u32]) -> RequestsRegister {
        let mut rr = RequestsRegister::new();
        for (i, b) in banks.iter().enumerate() {
            rr.push(
                DramRequest::read(PhysicalQueueId::new(i as u32), 0, 0),
                BankId::new(*b),
                i as u64,
            );
        }
        rr
    }

    #[test]
    fn oldest_first_skips_locked_banks() {
        let rr = rr_with(&[3, 5, 7]);
        let mut orr = OngoingRequestsRegister::new(2);
        orr.record_issue(BankId::new(3));
        let mut dsa = OldestFirstDsa;
        assert_eq!(dsa.choose(&rr, &orr), Some(1));
        orr.record_issue(BankId::new(5));
        assert_eq!(dsa.choose(&rr, &orr), Some(2));
        assert_eq!(dsa.name(), "oldest-first");
    }

    #[test]
    fn oldest_first_returns_none_when_all_locked() {
        let rr = rr_with(&[1, 1]);
        let mut orr = OngoingRequestsRegister::new(1);
        orr.record_issue(BankId::new(1));
        let mut dsa = OldestFirstDsa;
        assert_eq!(dsa.choose(&rr, &orr), None);
        assert_eq!(dsa.choose(&RequestsRegister::new(), &orr), None);
    }

    #[test]
    fn fifo_only_wastes_opportunity_on_conflict() {
        let rr = rr_with(&[4, 9]);
        let mut orr = OngoingRequestsRegister::new(1);
        orr.record_issue(BankId::new(4));
        let mut dsa = FifoOnlyDsa;
        // Bank 9 is free, but FIFO refuses to reorder.
        assert_eq!(dsa.choose(&rr, &orr), None);
        let empty_orr = OngoingRequestsRegister::new(1);
        assert_eq!(dsa.choose(&rr, &empty_orr), Some(0));
        assert_eq!(dsa.name(), "fifo-only");
    }

    #[test]
    fn random_eligible_only_picks_unlocked() {
        let rr = rr_with(&[2, 6, 2, 6, 8]);
        let mut orr = OngoingRequestsRegister::new(1);
        orr.record_issue(BankId::new(2));
        let mut dsa = RandomEligibleDsa::new(42);
        for _ in 0..50 {
            let pos = dsa.choose(&rr, &orr).unwrap();
            assert!(
                pos == 1 || pos == 3 || pos == 4,
                "picked locked entry {pos}"
            );
        }
        assert_eq!(dsa.name(), "random-eligible");
    }

    #[test]
    fn policies_instantiate() {
        for p in [
            DsaPolicy::OldestFirst,
            DsaPolicy::FifoOnly,
            DsaPolicy::RandomEligible { seed: 7 },
        ] {
            assert!(!p.instantiate().name().is_empty());
        }
    }
}
