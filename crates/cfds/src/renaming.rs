//! Queue renaming: sharing the DRAM among groups (§6).
//!
//! The static queue → group assignment fragments the DRAM: a logical queue can
//! only ever use the capacity of its own group. Renaming fixes this by mapping
//! each *logical* queue onto a chain of *physical* queues, possibly living in
//! different groups, recorded in a circular renaming register per logical
//! queue. Writes extend the chain at its tail (allocating a new physical queue
//! from a group that still has room when the current one fills up); reads
//! consume from its head (releasing the physical queue when its last block has
//! been read).

use dram_sim::GroupId;
use pktbuf_model::{LogicalQueueId, PhysicalQueueId};
use std::collections::VecDeque;
use std::error::Error;
use std::fmt;

/// Errors raised by the renaming layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RenamingError {
    /// Every group that still has DRAM space has run out of free physical
    /// queue names (the residual fragmentation case discussed in §6).
    NoUsablePhysicalQueue,
    /// The logical queue index is out of range.
    LogicalOutOfRange {
        /// Offending queue.
        queue: LogicalQueueId,
        /// Configured number of logical queues.
        num_queues: usize,
    },
}

impl fmt::Display for RenamingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RenamingError::NoUsablePhysicalQueue => {
                write!(f, "no free physical queue in any group with DRAM space")
            }
            RenamingError::LogicalOutOfRange { queue, num_queues } => {
                write!(f, "{queue} out of range ({num_queues} logical queues)")
            }
        }
    }
}

impl Error for RenamingError {}

/// One element of a circular renaming register: a physical queue and the
/// number of blocks of the logical queue stored under that name.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct RenameEntry {
    physical: PhysicalQueueId,
    blocks: u64,
}

/// The renaming table: one circular renaming register per logical queue plus
/// per-group free lists of physical queue names.
#[derive(Debug, Clone)]
pub struct RenamingTable {
    /// Chain of (physical queue, block count) per logical queue; the front is
    /// the read head, the back is the write tail.
    registers: Vec<VecDeque<RenameEntry>>,
    /// Free physical queue names, per group.
    free: Vec<Vec<PhysicalQueueId>>,
    num_groups: usize,
    allocations: u64,
    releases: u64,
}

impl RenamingTable {
    /// Creates a table for `num_logical` logical queues over a pool of
    /// `num_physical` physical queue names spread over `num_groups` groups
    /// (physical queue `p` belongs to group `p mod num_groups`).
    pub fn new(num_logical: usize, num_physical: usize, num_groups: usize) -> Self {
        let num_groups = num_groups.max(1);
        let mut free = vec![Vec::new(); num_groups];
        // Hand out names from the highest index down so that pops (from the
        // back) return the lowest-numbered free name first — stable and easy
        // to reason about in tests.
        for p in (0..num_physical).rev() {
            free[p % num_groups].push(PhysicalQueueId::new(p as u32));
        }
        RenamingTable {
            registers: vec![VecDeque::new(); num_logical],
            free,
            num_groups,
            allocations: 0,
            releases: 0,
        }
    }

    fn check(&self, queue: LogicalQueueId) -> Result<usize, RenamingError> {
        let idx = queue.as_usize();
        if idx >= self.registers.len() {
            return Err(RenamingError::LogicalOutOfRange {
                queue,
                num_queues: self.registers.len(),
            });
        }
        Ok(idx)
    }

    /// Group a physical queue name belongs to.
    pub fn group_of(&self, physical: PhysicalQueueId) -> GroupId {
        GroupId::new((physical.as_usize() % self.num_groups) as u32)
    }

    fn allocate_in(&mut self, group: GroupId) -> Option<PhysicalQueueId> {
        let name = self.free[group.index()].pop()?;
        self.allocations += 1;
        Some(name)
    }

    /// Chooses the physical queue that the next written block of `logical`
    /// should go to.
    ///
    /// `group_has_room` reports whether a group still has free DRAM blocks;
    /// `preferred_groups` is the caller's preference order for *new*
    /// allocations (typically emptiest group first).
    ///
    /// # Errors
    ///
    /// [`RenamingError::NoUsablePhysicalQueue`] when the current tail's group
    /// is full and no group with room has a free physical name.
    pub fn physical_for_write(
        &mut self,
        logical: LogicalQueueId,
        group_has_room: impl Fn(GroupId) -> bool,
        preferred_groups: &[GroupId],
    ) -> Result<PhysicalQueueId, RenamingError> {
        self.physical_for_write_avoiding(logical, None, group_has_room, preferred_groups)
    }

    /// Like [`RenamingTable::physical_for_write`] but, when possible, avoids
    /// placing the written block in `avoid_group`.
    ///
    /// The CFDS buffer uses this to keep a queue's *write* stream out of the
    /// group its *read* stream is currently draining: a bank group sustains at
    /// most one access per `b` slots, so a backlogged queue that both fills
    /// and drains at the line rate needs its two streams in different groups.
    /// The avoidance is best-effort — if no other group has room and a free
    /// physical name, the avoided group is used after all.
    ///
    /// # Errors
    ///
    /// [`RenamingError::NoUsablePhysicalQueue`] when no group with room has a
    /// free physical name.
    pub fn physical_for_write_avoiding(
        &mut self,
        logical: LogicalQueueId,
        avoid_group: Option<GroupId>,
        group_has_room: impl Fn(GroupId) -> bool,
        preferred_groups: &[GroupId],
    ) -> Result<PhysicalQueueId, RenamingError> {
        let idx = self.check(logical)?;
        // Fast path: the current tail still has room in its group and does not
        // collide with the group we are asked to avoid.
        if let Some(tail) = self.registers[idx].back() {
            let group = self.group_of(tail.physical);
            if group_has_room(group) && Some(group) != avoid_group {
                return Ok(tail.physical);
            }
        }
        // Allocate a new physical queue in a group with room (in the caller's
        // preference order), avoided group last. The candidates are consumed
        // directly from `preferred_groups` — this runs every granularity
        // period and must not build an intermediate list.
        let mut allocated = None;
        let mut any_candidate = false;
        for group in preferred_groups.iter().copied() {
            if !group_has_room(group) || Some(group) == avoid_group {
                continue;
            }
            any_candidate = true;
            if let Some(name) = self.allocate_in(group) {
                allocated = Some(name);
                break;
            }
        }
        if allocated.is_none() && !any_candidate {
            if let Some(avoid) = avoid_group {
                // Fall back to the current tail (even in the avoided group)
                // before burning a fresh name on it.
                if let Some(tail) = self.registers[idx].back() {
                    if group_has_room(self.group_of(tail.physical)) {
                        return Ok(tail.physical);
                    }
                }
                if group_has_room(avoid) {
                    allocated = self.allocate_in(avoid);
                }
            }
        }
        match allocated {
            Some(name) => {
                self.registers[idx].push_back(RenameEntry {
                    physical: name,
                    blocks: 0,
                });
                Ok(name)
            }
            None => Err(RenamingError::NoUsablePhysicalQueue),
        }
    }

    /// Like [`RenamingTable::physical_for_write_avoiding`] with the preferred
    /// groups given *implicitly*: every group satisfying `group_has_room`,
    /// ordered by ascending `(rank, group index)`.
    ///
    /// Trying groups in that order and allocating from the first one with a
    /// free name is the same as allocating from the minimum-ranked group with
    /// room and a free name — which this computes in one pass, so the
    /// per-period writeback path neither sorts nor materialises a group list.
    ///
    /// # Errors
    ///
    /// [`RenamingError::NoUsablePhysicalQueue`] when no group with room has a
    /// free physical name.
    pub fn physical_for_write_ranked(
        &mut self,
        logical: LogicalQueueId,
        avoid_group: Option<GroupId>,
        group_has_room: impl Fn(GroupId) -> bool,
        rank: impl Fn(GroupId) -> usize,
    ) -> Result<PhysicalQueueId, RenamingError> {
        let idx = self.check(logical)?;
        // Fast path: identical to `physical_for_write_avoiding`.
        if let Some(tail) = self.registers[idx].back() {
            let group = self.group_of(tail.physical);
            if group_has_room(group) && Some(group) != avoid_group {
                return Ok(tail.physical);
            }
        }
        let mut best: Option<(usize, usize)> = None;
        let mut any_candidate = false;
        for g in 0..self.num_groups {
            let group = GroupId::new(g as u32);
            if !group_has_room(group) || Some(group) == avoid_group {
                continue;
            }
            any_candidate = true;
            if self.free[g].is_empty() {
                continue;
            }
            let r = rank(group);
            if best.is_none_or(|(br, bg)| (r, g) < (br, bg)) {
                best = Some((r, g));
            }
        }
        let mut allocated = best.and_then(|(_, g)| self.allocate_in(GroupId::new(g as u32)));
        if allocated.is_none() && !any_candidate {
            if let Some(avoid) = avoid_group {
                // Fall back to the current tail (even in the avoided group)
                // before burning a fresh name on it.
                if let Some(tail) = self.registers[idx].back() {
                    if group_has_room(self.group_of(tail.physical)) {
                        return Ok(tail.physical);
                    }
                }
                if group_has_room(avoid) {
                    allocated = self.allocate_in(avoid);
                }
            }
        }
        match allocated {
            Some(name) => {
                self.registers[idx].push_back(RenameEntry {
                    physical: name,
                    blocks: 0,
                });
                Ok(name)
            }
            None => Err(RenamingError::NoUsablePhysicalQueue),
        }
    }

    /// Records that one block was written to DRAM under the current tail name
    /// of `logical` (which must have been obtained via
    /// [`RenamingTable::physical_for_write`]).
    ///
    /// # Panics
    ///
    /// Panics if `logical` has no physical queue assigned.
    pub fn note_block_written(&mut self, logical: LogicalQueueId) {
        let idx = logical.as_usize();
        let tail = self.registers[idx]
            .back_mut()
            .expect("note_block_written without an assigned physical queue"); // analyze: allow(panic-freedom) — documented # Panics contract: callers write only to queues with an assigned physical chain
        tail.blocks += 1;
    }

    /// Physical queue holding the *oldest* blocks of `logical` (the one reads
    /// must use), or `None` if the logical queue has nothing in DRAM.
    pub fn physical_for_read(&self, logical: LogicalQueueId) -> Option<PhysicalQueueId> {
        self.registers[logical.as_usize()]
            .front()
            .filter(|e| e.blocks > 0)
            .map(|e| e.physical)
    }

    /// Physical queue at the *write tail* of `logical`'s chain, if any.
    ///
    /// This is the name [`RenamingTable::physical_for_write_avoiding`] will
    /// return on its fast path (tail group has room and is not avoided);
    /// callers can probe it first and skip preparing the preferred-group
    /// list — an allocation-order-preserving shortcut for the hot path.
    pub fn write_tail(&self, logical: LogicalQueueId) -> Option<PhysicalQueueId> {
        self.registers[logical.as_usize()]
            .back()
            .map(|e| e.physical)
    }

    /// Records that one block was read from DRAM for `logical`. When the head
    /// physical queue runs out of blocks it is released back to the free pool
    /// and returned.
    ///
    /// # Panics
    ///
    /// Panics if `logical` has no blocks recorded in DRAM.
    pub fn note_block_read(&mut self, logical: LogicalQueueId) -> Option<PhysicalQueueId> {
        let idx = logical.as_usize();
        let head = self.registers[idx]
            .front_mut()
            .expect("note_block_read on a logical queue with no DRAM blocks"); // analyze: allow(panic-freedom) — documented # Panics contract: callers read only queues with recorded DRAM blocks
        assert!(head.blocks > 0, "note_block_read with zero recorded blocks");
        head.blocks -= 1;
        if head.blocks == 0 {
            let released = self.registers[idx]
                .pop_front()
                .expect("head exists") // analyze: allow(panic-freedom) — the front_mut above proved the chain non-empty
                .physical;
            let group = self.group_of(released);
            self.free[group.index()].push(released);
            self.releases += 1;
            Some(released)
        } else {
            None
        }
    }

    /// Total blocks of `logical` recorded in DRAM (across all its physical
    /// queues).
    pub fn blocks_in_dram(&self, logical: LogicalQueueId) -> u64 {
        self.registers[logical.as_usize()]
            .iter()
            .map(|e| e.blocks)
            .sum()
    }

    /// Number of physical queues currently assigned to `logical`.
    pub fn chain_length(&self, logical: LogicalQueueId) -> usize {
        self.registers[logical.as_usize()].len()
    }

    /// Free physical queue names remaining in `group`.
    pub fn free_in_group(&self, group: GroupId) -> usize {
        self.free[group.index()].len()
    }

    /// Total allocations performed.
    pub fn allocations(&self) -> u64 {
        self.allocations
    }

    /// Total physical queues released back to the pool.
    pub fn releases(&self) -> u64 {
        self.releases
    }

    /// Number of groups.
    pub fn num_groups(&self) -> usize {
        self.num_groups
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lq(i: u32) -> LogicalQueueId {
        LogicalQueueId::new(i)
    }
    fn g(i: u32) -> GroupId {
        GroupId::new(i)
    }

    fn table() -> RenamingTable {
        // 4 logical queues, 8 physical names, 4 groups (2 names per group).
        RenamingTable::new(4, 8, 4)
    }

    #[test]
    fn first_write_allocates_preferred_group() {
        let mut t = table();
        let p = t
            .physical_for_write(lq(0), |_| true, &[g(2), g(0), g(1), g(3)])
            .unwrap();
        assert_eq!(t.group_of(p), g(2));
        t.note_block_written(lq(0));
        assert_eq!(t.blocks_in_dram(lq(0)), 1);
        assert_eq!(t.chain_length(lq(0)), 1);
        assert_eq!(t.allocations(), 1);
        // Subsequent writes reuse the same physical queue while its group has
        // room.
        let p2 = t
            .physical_for_write(lq(0), |_| true, &[g(0), g(1), g(2), g(3)])
            .unwrap();
        assert_eq!(p2, p);
    }

    #[test]
    fn full_group_spills_to_another_group() {
        let mut t = table();
        let order = [g(0), g(1), g(2), g(3)];
        let p0 = t.physical_for_write(lq(1), |_| true, &order).unwrap();
        t.note_block_written(lq(1));
        // Now pretend p0's group is full: the next write must allocate a new
        // physical queue elsewhere.
        let full = t.group_of(p0);
        let p1 = t
            .physical_for_write(lq(1), move |grp| grp != full, &order)
            .unwrap();
        assert_ne!(t.group_of(p1), full);
        t.note_block_written(lq(1));
        assert_eq!(t.chain_length(lq(1)), 2);
        assert_eq!(t.blocks_in_dram(lq(1)), 2);
        // Reads drain the chain head first and release the first name.
        assert_eq!(t.physical_for_read(lq(1)), Some(p0));
        assert_eq!(t.note_block_read(lq(1)), Some(p0));
        assert_eq!(t.physical_for_read(lq(1)), Some(p1));
        assert_eq!(t.note_block_read(lq(1)), Some(p1));
        assert_eq!(t.physical_for_read(lq(1)), None);
        assert_eq!(t.releases(), 2);
    }

    #[test]
    fn exhaustion_of_physical_names_is_reported() {
        // 1 logical queue, 2 physical names, 2 groups: one name per group.
        let mut t = RenamingTable::new(1, 2, 2);
        let order = [g(0), g(1)];
        let p0 = t.physical_for_write(lq(0), |_| true, &order).unwrap();
        t.note_block_written(lq(0));
        let full0 = t.group_of(p0);
        let p1 = t
            .physical_for_write(lq(0), move |grp| grp != full0, &order)
            .unwrap();
        t.note_block_written(lq(0));
        let full1 = t.group_of(p1);
        // Both groups' names are in use and we pretend both previous groups
        // are out of DRAM space.
        let err = t
            .physical_for_write(lq(0), move |grp| grp != full0 && grp != full1, &order)
            .unwrap_err();
        assert_eq!(err, RenamingError::NoUsablePhysicalQueue);
        assert!(err.to_string().contains("physical queue"));
    }

    #[test]
    fn reads_follow_fifo_order_across_physical_queues() {
        let mut t = table();
        let order = [g(0), g(1), g(2), g(3)];
        // Three blocks under name A, then the group "fills" and two more go
        // under name B.
        let pa = t.physical_for_write(lq(2), |_| true, &order).unwrap();
        for _ in 0..3 {
            t.note_block_written(lq(2));
        }
        let ga = t.group_of(pa);
        let pb = t
            .physical_for_write(lq(2), move |grp| grp != ga, &order)
            .unwrap();
        for _ in 0..2 {
            t.note_block_written(lq(2));
        }
        assert_eq!(t.blocks_in_dram(lq(2)), 5);
        // First three reads come from A, the rest from B.
        for i in 0..5u32 {
            let expect = if i < 3 { pa } else { pb };
            assert_eq!(t.physical_for_read(lq(2)), Some(expect), "read {i}");
            t.note_block_read(lq(2));
        }
        assert_eq!(t.blocks_in_dram(lq(2)), 0);
        // Released names are reusable.
        assert_eq!(t.free_in_group(t.group_of(pa)), 2);
        let _ = pb;
    }

    #[test]
    fn out_of_range_logical_queue() {
        let mut t = table();
        assert!(matches!(
            t.physical_for_write(lq(99), |_| true, &[g(0)]),
            Err(RenamingError::LogicalOutOfRange { .. })
        ));
    }

    #[test]
    #[should_panic(expected = "no DRAM blocks")]
    fn read_without_blocks_panics() {
        let mut t = table();
        t.note_block_read(lq(0));
    }

    #[test]
    fn num_groups_accessor() {
        assert_eq!(table().num_groups(), 4);
    }
}
